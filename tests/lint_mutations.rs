//! Mutation-based self-test of the static linter: seed one bug class at a
//! time into a known-clean model and require the linter to catch each with
//! its distinct diagnostic code.
//!
//! The linter's job is to catch exactly these regressions before they
//! corrupt simulations, so each mutation is the *minimal* edit a model
//! author could plausibly make: dropping a place from a declared read set,
//! pointing a reward at the wrong activity, leaving an orphaned place
//! behind after a refactor. The baseline model lints clean at deny level
//! Warning, which pins the linter's false-positive behaviour at the same
//! time.
//!
//! The second half runs the full built-in registry through
//! `cfs_model::lint_all` at the CI deny level — the in-tree twin of the CI
//! `sanlint --deny warning` gate.

use petascale_cfs::probdist::{Dist, Exponential};
use petascale_cfs::sanet::lint::{codes, LintConfig, Severity};
use petascale_cfs::sanet::{ActivityId, Marking, Model, ModelBuilder, RewardSpec, SanError};

/// The baseline: a repairable component exercising every declaration kind
/// (marking-dependent timing with `timing_reads`, a gate predicate with
/// `enabling_reads`), optionally seeded with one mutation.
#[derive(Clone, Copy, PartialEq)]
enum Mutation {
    None,
    /// `repair`'s predicate also reads `up`, but keeps declaring `[down]`.
    DropGateRead,
    /// `fail`'s rate reads `up`, but the declaration says `[down]`.
    DropTimingRead,
    /// A place is added and never referenced again.
    OrphanPlace,
}

fn build(mutation: Mutation) -> Result<Model, SanError> {
    let mut b = ModelBuilder::new("mutant");
    let up = b.add_place("up", 2)?;
    let down = b.add_place("down", 0)?;
    if mutation == Mutation::OrphanPlace {
        b.add_place("orphan", 3)?;
    }

    let fail_rate = 1e-3;
    let mut fail = b.timed_activity_fn("fail", move |m: &Marking| {
        let n = m.tokens(up).max(1) as f64;
        Dist::Exponential(Exponential::new(n * fail_rate).expect("positive rate"))
    })?;
    fail = match mutation {
        Mutation::DropTimingRead => fail.timing_reads(&[down]),
        _ => fail.timing_reads(&[up]),
    };
    fail.input_arc(up, 1).output_arc(down, 1).build()?;

    let mut repair =
        b.timed_activity("repair", Exponential::from_mean(10.0).expect("positive mean"))?;
    repair = match mutation {
        Mutation::DropGateRead => repair
            .enabling_predicate(move |m: &Marking| m.tokens(down) > 0 && m.tokens(up) < 2)
            .enabling_reads(&[down]),
        _ => {
            repair.enabling_predicate(move |m: &Marking| m.tokens(down) > 0).enabling_reads(&[down])
        }
    };
    repair.input_arc(down, 1).output_arc(up, 1).build()?;

    b.build()
}

fn lint(mutation: Mutation) -> petascale_cfs::sanet::LintReport {
    build(mutation).unwrap().lint()
}

#[test]
fn the_baseline_model_lints_clean() {
    let report = lint(Mutation::None);
    report.deny(Severity::Warning).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn dropping_a_declared_gate_read_is_caught_as_san001() {
    let report = lint(Mutation::DropGateRead);
    assert!(report.has_code(codes::UNDECLARED_ENABLING_READ), "{report}");
    assert!(report.deny(Severity::Error).is_err());
}

#[test]
fn dropping_a_declared_timing_read_is_caught_as_san002() {
    let report = lint(Mutation::DropTimingRead);
    assert!(report.has_code(codes::UNDECLARED_TIMING_READ), "{report}");
    assert!(report.deny(Severity::Error).is_err());
}

#[test]
fn an_orphaned_place_is_caught_as_san011() {
    let report = lint(Mutation::OrphanPlace);
    assert!(report.has_code(codes::DISCONNECTED_PLACE), "{report}");
    // A warning, not an error: the simulation stays correct.
    assert!(report.deny(Severity::Error).is_ok());
    assert!(report.deny(Severity::Warning).is_err());
}

#[test]
fn a_dangling_reward_target_is_caught_as_san020() {
    // `ActivityId` is deliberately opaque outside `sanet`, so forge an
    // out-of-range target the way a real bug would: carry an id from a
    // larger model into a smaller one (the mutant has only two activities,
    // so the third id of the big model dangles there).
    let dangling: ActivityId = {
        let mut big = ModelBuilder::new("big");
        let p = big.add_place("p", 1).unwrap();
        let mut last = None;
        for i in 0..3 {
            let id = big
                .timed_activity(&format!("a{i}"), Exponential::from_mean(1.0).unwrap())
                .unwrap()
                .input_arc(p, 1)
                .output_arc(p, 1)
                .build()
                .unwrap();
            last = Some(id);
        }
        big.build().unwrap();
        last.unwrap()
    };

    let model = build(Mutation::None).unwrap();
    let rewards = vec![RewardSpec::impulse_total("dangling", dangling, 1.0)];
    let report = model.lint_with(&LintConfig::default(), &rewards);
    assert!(report.has_code(codes::UNKNOWN_REWARD_TARGET), "{report}");
    assert!(report.deny(Severity::Error).is_err());
}

#[test]
fn each_mutation_is_caught_by_a_distinct_code() {
    let codes_for = |mutation| {
        let report = lint(mutation);
        let mut codes: Vec<&str> = report
            .diagnostics()
            .iter()
            .filter(|d| d.severity() >= Severity::Warning)
            .map(petascale_cfs::sanet::Diagnostic::code)
            .collect();
        codes.dedup();
        codes
    };
    assert_eq!(codes_for(Mutation::DropGateRead), [codes::UNDECLARED_ENABLING_READ]);
    assert_eq!(codes_for(Mutation::DropTimingRead), [codes::UNDECLARED_TIMING_READ]);
    assert_eq!(codes_for(Mutation::OrphanPlace), [codes::DISCONNECTED_PLACE]);
}

/// The in-tree twin of the CI `sanlint --deny warning` step: every shipped
/// model is free of warnings and errors.
#[test]
fn every_built_in_model_lints_clean_at_the_ci_deny_level() {
    let config = LintConfig { probes: 64, ..LintConfig::default() };
    let summary = cfs_model::lint_all(&config, Severity::Warning).unwrap();
    summary.deny().unwrap_or_else(|e| panic!("{e}"));
    assert!(summary.is_clean());
    assert_eq!(summary.reports().len(), cfs_model::BUILT_IN_MODELS.len());
}
