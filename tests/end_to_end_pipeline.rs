//! Integration test: the full log → estimate → model → prediction pipeline
//! across `faultlog`, `probdist`, and `cfs_model`.

use petascale_cfs::faultlog::parser;
use petascale_cfs::prelude::*;

#[test]
fn log_roundtrip_feeds_parameter_estimation_and_simulation() {
    // Generate the calibrated synthetic ABE log and round-trip it through
    // the text serialisation.
    let config = LogGenConfig::abe_calibrated();
    let disks = config.disks;
    let log = LogGenerator::new(config).generate(1234).expect("log generation succeeds");
    let parsed = parser::from_text(&parser::to_text(&log)).expect("round-trip parse succeeds");
    assert_eq!(parsed.len(), log.len());

    // Estimate parameters from the parsed log.
    let outages = OutageAnalysis::from_log(&parsed).expect("outage analysis");
    let jobs = JobAnalysis::from_log(&parsed).expect("job analysis");
    let replacements = DiskReplacementAnalysis::from_log(&parsed, disks).expect("disk analysis");
    assert!(outages.availability() > 0.9);
    assert!(jobs.transient_to_other_ratio() > 1.0);
    assert!(replacements.mean_per_week() < 5.0);

    // Feed the estimates into the model and check that the prediction lands
    // near the measured SAN availability (both should be in the mid-to-high
    // 0.9x band).
    let mut abe = ClusterConfig::abe();
    abe.params.job_rate_per_hour = jobs.jobs_per_hour().clamp(12.0, 15.0);
    abe.params.validate().expect("estimated parameters stay within Table 5 ranges");
    let predicted = evaluate(
        &abe,
        &RunSpec::new().with_horizon_hours(8760.0).with_replications(16).with_base_seed(5),
    )
    .expect("simulation succeeds");
    let gap = (predicted.cfs_availability.point - outages.availability()).abs();
    assert!(
        gap < 0.05,
        "model prediction {} vs log-measured {}",
        predicted.cfs_availability.point,
        outages.availability()
    );
}

#[test]
fn weibull_estimate_from_large_synthetic_population_matches_generator() {
    // A larger disk population gives the survival analysis enough observed
    // failures to pin the shape parameter near the generator's 0.7.
    let mut config = LogGenConfig::abe_calibrated();
    config.disks = 10_000;
    config.window_hours = 2000.0;
    let disks = config.disks;
    let log = LogGenerator::new(config).generate(7).expect("log generation succeeds");
    let analysis = DiskReplacementAnalysis::from_log(&log, disks).expect("disk analysis");
    let fit = analysis.weibull_fit(&log).expect("weibull fit");
    assert!((fit.shape - 0.7).abs() < 0.15, "estimated shape {}", fit.shape);
    assert!(fit.censored > fit.failures, "most disks never fail inside the window");
}
