//! Integration tests for the resilience layer: panic containment at the
//! scenario boundary, checkpoint/resume bit-identity at several worker
//! counts, deadline-driven graceful degradation, and the failure policies
//! that govern them.
//!
//! The central guarantees pinned here:
//!
//! * a panicking scenario never takes down the process, the global worker
//!   pool, or its sibling scenarios — it becomes a typed
//!   `CfsError::ScenarioPanic` (abort policy) or a `ScenarioFailure`
//!   record (continue policy);
//! * a run killed after `k` replications and resumed from its checkpoint
//!   produces byte-identical reports to an uninterrupted run, at any
//!   worker count, because replication `i` is a pure function of
//!   `(base seed, i)` and the stored f64s round-trip exactly;
//! * when a deadline expires, completed replications still yield valid
//!   statistics and the report flags the truncation.

use std::time::Duration;

use petascale_cfs::prelude::*;

fn temp_file(tag: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("cfs-resilience-{}-{tag}.json", std::process::id()));
    path
}

fn quick_spec() -> RunSpec {
    RunSpec::new().with_horizon_hours(2000.0).with_replications(4).with_base_seed(31)
}

struct Panicking;
impl Scenario for Panicking {
    fn name(&self) -> &str {
        "poison"
    }
    fn evaluate(&self, _: &RunSpec) -> Result<ScenarioOutput, CfsError> {
        panic!("injected poison");
    }
}

/// A poisoned fan-out must leave `Pool::global` fully usable: after a
/// study aborts on a contained panic, subsequent studies on the same
/// process-wide pool complete normally at every worker count.
#[test]
fn global_pool_survives_poisoned_scenarios() {
    for workers in [1, 2, 8] {
        let spec = quick_spec().with_workers(workers);
        let err = Study::new().with(Panicking).with(ClusterConfig::abe()).run(&spec).unwrap_err();
        assert!(
            matches!(err, CfsError::ScenarioPanic { .. }),
            "worker count {workers}: expected ScenarioPanic, got {err}"
        );
        // The pool the panic crossed is the one this study reuses.
        let report = Study::new().with(ClusterConfig::abe()).run(&spec).unwrap();
        assert_eq!(report.outputs.len(), 1, "worker count {workers}");
        assert!(report.failures.is_empty());
    }
}

/// Under `ContinueAndReport` the poisoned scenario is a report record and
/// every sibling still contributes its output — rendered identically at
/// any worker count.
#[test]
fn continue_and_report_is_deterministic_across_worker_counts() {
    let render = |workers: usize| {
        let spec = quick_spec()
            .with_workers(workers)
            .with_failure_policy(FailurePolicy::ContinueAndReport);
        let report = Study::new()
            .with(Panicking)
            .with(ClusterConfig::abe())
            .with(ClusterConfig::petascale())
            .run(&spec)
            .unwrap();
        assert_eq!(report.outputs.len(), 2);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].scenario, "poison");
        // Elapsed time is wall-clock noise, and the spec embeds the worker
        // count: zero the former and re-wrap under a common spec before
        // comparing renders across worker counts.
        let mut failures = report.failures;
        failures[0].elapsed_seconds = 0.0;
        let stable =
            Report::new(quick_spec(), report.outputs).with_failures(failures).without_wall_clock();
        (stable.to_text(), stable.to_csv(), stable.to_json())
    };
    let serial = render(1);
    assert_eq!(serial, render(2));
    assert_eq!(serial, render(8));
}

/// Checkpoint kill-at-k/resume determinism: run the first `k`
/// replications into a checkpoint (simulating a run killed at `k`), then
/// resume the full budget from that file. The resumed report must be
/// byte-identical to an uninterrupted run — at workers 1, 2, and 8.
#[test]
fn killed_and_resumed_runs_render_byte_identical_reports() {
    let scenario = || ClusterConfig::petascale();
    let common = RunSpec::new().with_horizon_hours(1500.0).with_replications(8).with_base_seed(77);

    for workers in [1usize, 2, 8] {
        let path = temp_file(&format!("resume-w{workers}"));
        let _ = std::fs::remove_file(&path);
        let base = common.clone().with_workers(workers);

        // The uninterrupted reference run (no checkpoint at all). Strip the
        // wall-clock timings: they are the one legitimately nondeterministic
        // part of a report.
        let fresh = Study::new().with(scenario()).run(&base).unwrap().without_wall_clock();

        // "Kill at k": a run with the same seed but only k replications,
        // checkpointing every 2 — the file now holds the k-replication
        // prefix an interrupted full run would have persisted.
        let k = 5;
        let killed = base.clone().with_replications(k).with_checkpoint(path.to_str().unwrap(), 2);
        Study::new().with(scenario()).run(&killed).unwrap();

        // Resume the full budget from the checkpoint.
        let resumed_spec = base.clone().with_checkpoint(path.to_str().unwrap(), 2);
        let resumed =
            Study::new().with(scenario()).run(&resumed_spec).unwrap().without_wall_clock();

        // The spec differs only by the checkpoint policy, which is not a
        // statistic: compare the outputs re-wrapped under a common spec.
        assert_eq!(fresh.outputs, resumed.outputs, "workers {workers}");
        let fresh_report = Report::new(common.clone(), fresh.outputs);
        let resumed_report = Report::new(common.clone(), resumed.outputs);
        assert_eq!(fresh_report.to_text(), resumed_report.to_text(), "workers {workers}");
        assert_eq!(fresh_report.to_csv(), resumed_report.to_csv(), "workers {workers}");
        assert_eq!(fresh_report.to_json(), resumed_report.to_json(), "workers {workers}");

        std::fs::remove_file(&path).unwrap();
    }
}

/// The stored values are actually *used* on resume (not silently
/// re-simulated): tampering with one persisted reward changes the resumed
/// result.
#[test]
fn resume_reads_the_stored_values_not_the_simulator() {
    use petascale_cfs::cfs_model::checkpoint;

    let path = temp_file("tamper");
    let _ = std::fs::remove_file(&path);
    let spec = RunSpec::new()
        .with_horizon_hours(1000.0)
        .with_replications(4)
        .with_base_seed(5)
        .with_checkpoint(path.to_str().unwrap(), 4);
    let abe = ClusterConfig::abe();
    let honest = evaluate(&abe, &spec).unwrap();

    // Rewrite replication 0's rewards through the checkpoint API (keeping
    // the checksum valid) and re-evaluate.
    let mut data = checkpoint::load(&path).unwrap();
    let key = checkpoint::entry_key("ABE", 5);
    let mut runs = data.entry(&key).unwrap().to_vec();
    for (_, value) in &mut runs[0].rewards {
        *value *= 0.5;
    }
    data.set_entry(&key, runs);
    checkpoint::store(&path, &data).unwrap();

    let tampered = evaluate(&abe, &spec).unwrap();
    assert_ne!(honest, tampered, "resume must consume the stored prefix");
    std::fs::remove_file(&path).unwrap();
}

/// A corrupt checkpoint file is a typed error, not a panic and not a
/// silent restart.
#[test]
fn corrupt_checkpoint_is_a_typed_error() {
    let path = temp_file("corrupt");
    std::fs::write(&path, "{\"format\": \"cfs-study-chec").unwrap();
    let spec = quick_spec().with_checkpoint(path.to_str().unwrap(), 2);
    let err = evaluate(&ClusterConfig::abe(), &spec).unwrap_err();
    assert!(matches!(err, CfsError::Checkpoint { .. }), "{err}");
    std::fs::remove_file(&path).unwrap();
}

/// Deadline-driven graceful degradation: an expired deadline mid-run
/// yields valid statistics over the completed prefix, with the report
/// flagging the truncation and the replication count actually used.
#[test]
fn expired_deadline_truncates_to_a_valid_prefix() {
    // A deadline that can fit a handful of replications but not 10 000 of
    // them. In-flight batches finish, so the evaluation returns whatever
    // contiguous prefix completed before the clock ran out.
    let spec = RunSpec::new()
        .with_horizon_hours(8760.0)
        .with_replications(10_000)
        .with_base_seed(13)
        .with_workers(2)
        .with_deadline(Duration::from_millis(300));
    match evaluate(&ClusterConfig::abe(), &spec) {
        Ok(result) => {
            assert!(result.truncated, "10k replications cannot finish in 300 ms");
            assert!(result.replications >= 2);
            assert!(result.replications < 10_000);
            assert!(result.cfs_availability.point > 0.9);

            // The scenario layer propagates the flag into the report.
            let output = ClusterConfig::abe().evaluate(&spec).unwrap();
            assert!(output.truncated);
            let report = Report::new(spec.clone(), vec![output]);
            assert!(report.to_text().contains("TRUNCATED"));
            assert!(report.to_csv().contains("truncated,true"));
        }
        // On a pathologically slow machine fewer than two replications
        // may finish: that is the typed starvation error, not a panic.
        Err(err) => assert!(matches!(err, CfsError::DeadlineExpired { .. }), "{err}"),
    }
}

/// A study whose deadline starves some scenario still reports the healthy
/// ones: starvation is a recorded failure even under the abort policy.
#[test]
fn deadline_starved_study_still_reports_completed_scenarios() {
    let spec = quick_spec()
        .with_workers(2)
        .with_replications(10_000)
        .with_horizon_hours(8760.0)
        .with_deadline(Duration::from_millis(200));
    let report = Study::new()
        .with(ClusterConfig::abe())
        .with(ClusterConfig::petascale())
        .run(&spec)
        .unwrap();
    // Every scenario either produced a (possibly truncated) output or a
    // DeadlineExpired failure — never an abort, never a panic.
    assert_eq!(report.outputs.len() + report.failures.len(), 2);
    for failure in &report.failures {
        assert!(failure.message.contains("deadline expired"), "{}", failure.message);
    }
    for output in &report.outputs {
        assert!(output.replications_used.is_some());
    }
}
