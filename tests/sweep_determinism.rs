//! Integration tests for the design-space sweep subsystem: the
//! `ReplicationVsRaid` and Beowulf performability sweeps must run as
//! ordinary `Scenario`s under a `Study` with `with_precision_target`,
//! render in all three report formats, and produce bit-identical sweep
//! statistics at any worker count.

use petascale_cfs::prelude::*;

/// A small but real two-workload sweep study: 2 redundancy schemes × 1 AFR
/// plus a 2×2 Beowulf grid, all under one adaptive spec.
fn sweep_study() -> Study {
    Study::new()
        .with(ReplicationVsRaid {
            usable_capacity_tb: 24.0,
            schemes: vec![
                RedundancyScheme::Raid(RaidGeometry::raid6_8p2()),
                RedundancyScheme::Replication { replicas: 3 },
            ],
            afr_percents: vec![8.76],
        })
        .with(BeowulfPerformabilitySweep {
            worker_counts: vec![16, 64],
            repair_crews: vec![1, 4],
            base: BeowulfConfig {
                worker_mtbf_hours: 1_000.0,
                worker_repair_hours: 12.0,
                ..BeowulfConfig::default()
            },
        })
}

fn adaptive_spec(workers: usize) -> RunSpec {
    RunSpec::new()
        .with_horizon_hours(4380.0)
        .with_base_seed(20_080_625)
        .with_workers(workers)
        .with_precision_target(0.25, 4, 24)
}

/// The acceptance property: sweep statistics are bit-identical at workers
/// 1, 2, and 8, under adaptive precision-targeted stopping, in every
/// report format.
#[test]
fn sweep_stats_are_bit_identical_at_any_worker_count() {
    // Wall-clock timings are stripped — only the statistics must match.
    let serial = sweep_study().run(&adaptive_spec(1)).unwrap().without_wall_clock();
    for workers in [2, 8] {
        let parallel = sweep_study().run(&adaptive_spec(workers)).unwrap().without_wall_clock();
        assert_eq!(serial.outputs, parallel.outputs, "workers = {workers}");
        assert_eq!(serial.to_csv(), parallel.to_csv(), "workers = {workers}");
        // The rendered report embeds the spec, whose worker count
        // legitimately differs — re-wrap the parallel outputs with the
        // serial spec and the text/JSON must match bit for bit.
        let rewrapped = Report::new(adaptive_spec(1), parallel.outputs);
        assert_eq!(serial.to_text(), rewrapped.to_text(), "workers = {workers}");
        assert_eq!(serial.to_json(), rewrapped.to_json(), "workers = {workers}");
    }
}

/// Both sweeps honour the adaptive stopping bounds and surface the
/// replication count actually used in every format.
#[test]
fn sweeps_record_adaptive_replications_in_every_format() {
    let report = sweep_study().run(&adaptive_spec(2)).unwrap();
    assert_eq!(report.outputs.len(), 2);
    for scenario in ["replication_vs_raid", "beowulf_performability"] {
        let output = report.output(scenario).unwrap();
        let used = output.replications_used.expect("sweeps are Monte-Carlo");
        assert!((4..=24).contains(&(used as usize)), "{scenario} used {used}");
        assert!(!output.tables.is_empty(), "{scenario} renders a sweep table");
        assert!(output.metric("winner_index").is_some(), "{scenario} selects a winner");
    }

    let text = report.render(ReportFormat::Text);
    assert!(text.contains("Design-space sweep: replication_vs_raid"), "{text}");
    assert!(text.contains("Design-space sweep: beowulf_performability"), "{text}");
    assert!(text.contains("replications used:"), "{text}");
    let csv = report.render(ReportFormat::Csv);
    assert!(csv.contains("replication_vs_raid,winner_index"), "{csv}");
    assert!(csv.contains("beowulf_performability,replications_used"), "{csv}");
    let json = report.render(ReportFormat::Json);
    assert!(json.contains("\"replication_vs_raid\""), "{json}");
    assert!(json.contains("replications_used"), "{json}");
}

/// The sweep seed derivation is a pure function of the study's base seed:
/// distinct base seeds explore distinct sample paths, the same seed
/// reproduces the report exactly.
#[test]
fn sweep_seeds_derive_from_the_study_base_seed() {
    let study = || {
        Study::new().with(BeowulfPerformabilitySweep {
            worker_counts: vec![32],
            repair_crews: vec![1],
            base: BeowulfConfig {
                worker_mtbf_hours: 500.0,
                worker_repair_hours: 24.0,
                ..BeowulfConfig::default()
            },
        })
    };
    let spec = |seed: u64| {
        RunSpec::new().with_horizon_hours(4380.0).with_replications(6).with_base_seed(seed)
    };
    let a = study().run(&spec(1)).unwrap();
    let b = study().run(&spec(2)).unwrap();
    let a_again = study().run(&spec(1)).unwrap();
    let perf = |report: &Report| {
        report.output("beowulf_performability").unwrap().metric("winner_performability").unwrap()
    };
    assert_ne!(perf(&a), perf(&b), "different seeds must explore different sample paths");
    assert_eq!(
        a.without_wall_clock().outputs,
        a_again.without_wall_clock().outputs,
        "same seed must reproduce the report exactly"
    );
}
