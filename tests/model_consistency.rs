//! Integration test: cross-crate consistency between the analytic RAID
//! model, the Monte-Carlo storage simulator, the SAN-engine cluster model,
//! and the statistics layer.

use petascale_cfs::prelude::*;
use petascale_cfs::raidsim::analytic::{system_data_loss_probability, tier_mttdl};
use petascale_cfs::raidsim::replacement::{
    expected_replacements_per_week, steady_state_replacements_per_week,
};
use petascale_cfs::sanet::reward::RewardSpec;
use petascale_cfs::sanet::Experiment;

/// The SAN engine and a hand-built analytic result must agree: a single
/// repairable component with exponential failure/repair has availability
/// μ/(λ+μ).
#[test]
fn san_engine_matches_birth_death_availability() {
    let mut builder = ModelBuilder::new("unit");
    let up = builder.add_place("up", 1).unwrap();
    let down = builder.add_place("down", 0).unwrap();
    builder
        .timed_activity("fail", Exponential::from_mean(500.0).unwrap())
        .unwrap()
        .input_arc(up, 1)
        .output_arc(down, 1)
        .build()
        .unwrap();
    builder
        .timed_activity("repair", Exponential::from_mean(20.0).unwrap())
        .unwrap()
        .input_arc(down, 1)
        .output_arc(up, 1)
        .build()
        .unwrap();
    let model = builder.build().unwrap();

    let mut experiment = Experiment::new(model, 200_000.0);
    experiment.add_reward(RewardSpec::time_averaged_rate("avail", move |m| {
        if m.tokens(up) > 0 {
            1.0
        } else {
            0.0
        }
    }));
    let summary = experiment.run(32, 99).unwrap();
    let expected = 500.0 / 520.0;
    let estimate = summary.reward("avail").unwrap();
    assert!(
        (estimate.interval.point - expected).abs() < 0.005,
        "simulated {} vs analytic {expected}",
        estimate.interval.point
    );
}

/// The Monte-Carlo storage simulator and the closed-form MTTDL agree on the
/// probability of any data loss for exponential disks.
#[test]
fn storage_monte_carlo_matches_analytic_data_loss_probability() {
    let geometry = RaidGeometry { data_disks: 4, parity_disks: 1 };
    let mtbf = 5_000.0;
    let repair = 48.0;
    let tiers = 200;
    let mission = 8760.0;

    let config = StorageConfig {
        ddn_units: 1,
        tiers,
        geometry,
        disk: DiskModel { weibull_shape: 1.0, mtbf_hours: mtbf, capacity_gb: 250.0 },
        replacement_hours: repair,
        rebuild_hours: 0.0,
        data_loss_recovery_hours: 24.0,
        controllers: None,
    };
    let summary = StorageSimulator::new(config).unwrap().run(mission, 48, 7).unwrap();
    let analytic = system_data_loss_probability(tiers, geometry, mtbf, repair, mission).unwrap();
    assert!(
        (summary.prob_any_data_loss - analytic).abs() < 0.15,
        "monte carlo {} vs analytic {analytic}",
        summary.prob_any_data_loss
    );
    // And the per-tier MTTDL must be far larger than a tier's disk MTBF.
    assert!(tier_mttdl(geometry, mtbf, repair).unwrap() > mtbf);
}

/// The analytic replacement-rate model, the storage Monte-Carlo, and the
/// long-run renewal rate all tell the same story for the ABE configuration.
#[test]
fn replacement_rate_models_agree_for_abe() {
    let config = StorageConfig::abe_scratch();
    let disk = config.disk;
    let disks = config.total_disks();
    let mission = 8760.0;

    let simulated = StorageSimulator::new(config).unwrap().run(mission, 24, 13).unwrap();
    let analytic = expected_replacements_per_week(disks, &disk, mission).unwrap();
    let steady = steady_state_replacements_per_week(disks, &disk).unwrap();

    // Renewal analysis sits above the long-run rate (infant mortality) and
    // close to the Monte-Carlo estimate.
    assert!(analytic >= steady);
    assert!(
        (simulated.replacements_per_week.point - analytic).abs() < 0.6,
        "monte carlo {} vs renewal {analytic}",
        simulated.replacements_per_week.point
    );
}

/// The composed cluster model's storage-availability reward agrees with the
/// dedicated storage simulator for the ABE configuration (both ≈ 1).
#[test]
fn cluster_model_and_raidsim_agree_on_abe_storage_availability() {
    let cluster = evaluate(
        &ClusterConfig::abe(),
        &RunSpec::new().with_horizon_hours(8760.0).with_replications(12).with_base_seed(31),
    )
    .unwrap();
    let storage =
        StorageSimulator::new(StorageConfig::abe_scratch()).unwrap().run(8760.0, 12, 31).unwrap();
    assert!(cluster.storage_availability.point > 0.9999);
    assert!(storage.availability.point > 0.9999);
    assert!((cluster.storage_availability.point - storage.availability.point).abs() < 1e-3);
}
