//! Chaos-harness integration tests (`cargo test --features chaos`):
//! deterministic, seeded fault injection driven through the full
//! study/report stack.
//!
//! Every scenario here runs with injected panics, stalls, or corrupted
//! (non-finite) rewards, and the suite pins the resilience contract:
//! under `ContinueAndReport` the study always completes, every injected
//! failure surfaces as a *typed* record — never an unwound process, never
//! a wedged worker pool — and a run killed by an injected panic at
//! replication `k` resumes from its checkpoint bit-identically.

#![cfg(feature = "chaos")]

use petascale_cfs::prelude::*;
use petascale_cfs::probdist::chaos;

fn temp_file(tag: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("cfs-chaos-{}-{tag}.json", std::process::id()));
    path
}

/// Kill-at-k via injected panic, then resume: the checkpoint holds only
/// fully persisted chunks below `k`, and the resumed run renders byte-
/// identical reports to an uninterrupted one, at workers 1, 2, and 8.
#[test]
fn injected_kill_at_k_resumes_bit_identically() {
    let common = RunSpec::new().with_horizon_hours(1200.0).with_replications(8).with_base_seed(41);

    for workers in [1usize, 2, 8] {
        let path = temp_file(&format!("kill-w{workers}"));
        let _ = std::fs::remove_file(&path);
        let base = common.clone().with_workers(workers);
        let checkpointed = base.clone().with_checkpoint(path.to_str().unwrap(), 2);

        // Uninterrupted reference, no chaos, no checkpoint. Wall-clock
        // timings are stripped — they are nondeterministic by nature.
        let fresh =
            Study::new().with(ClusterConfig::abe()).run(&base).unwrap().without_wall_clock();

        // The "kill": replication 5 panics by injection. The study
        // contains it as a typed error carrying the replication index;
        // the checkpoint keeps the complete chunks persisted before the
        // poisoned one.
        {
            let _chaos = chaos::scoped(chaos::ChaosConfig::new(99).with_panic_on_index(5));
            let err = Study::new().with(ClusterConfig::abe()).run(&checkpointed).unwrap_err();
            match &err {
                CfsError::ScenarioPanic { replication, .. } => {
                    assert_eq!(*replication, Some(5), "workers {workers}");
                }
                other => panic!("expected ScenarioPanic, got {other}"),
            }
        }
        let stored = petascale_cfs::cfs_model::checkpoint::load(&path).unwrap();
        let key = petascale_cfs::cfs_model::checkpoint::entry_key("ABE", 41);
        let prefix = stored.entry(&key).map_or(0, <[_]>::len);
        assert!(prefix < 8, "the poisoned run must not have finished");

        // Resume with chaos off: the stored prefix is served verbatim,
        // the rest simulates, and the report matches the fresh run byte
        // for byte.
        let resumed = Study::new()
            .with(ClusterConfig::abe())
            .run(&checkpointed)
            .unwrap()
            .without_wall_clock();
        assert_eq!(fresh.outputs, resumed.outputs, "workers {workers}");
        let fresh_report = Report::new(common.clone(), fresh.outputs);
        let resumed_report = Report::new(common.clone(), resumed.outputs);
        assert_eq!(fresh_report.to_json(), resumed_report.to_json(), "workers {workers}");
        assert_eq!(fresh_report.to_text(), resumed_report.to_text(), "workers {workers}");
        assert_eq!(fresh_report.to_csv(), resumed_report.to_csv(), "workers {workers}");

        std::fs::remove_file(&path).unwrap();
    }
}

/// Under `ContinueAndReport`, a study riddled with injected panics and
/// stalls still completes: every scenario either reports an output or a
/// typed failure, and the worker pool stays usable afterwards.
#[test]
fn continue_and_report_completes_under_injected_faults() {
    let spec = RunSpec::new()
        .with_horizon_hours(1500.0)
        .with_replications(6)
        .with_base_seed(17)
        .with_workers(4)
        .with_failure_policy(FailurePolicy::ContinueAndReport);
    let scenario_count = 3;
    let report = {
        let _chaos = chaos::scoped(
            chaos::ChaosConfig::new(7)
                .with_panic_probability(0.25)
                .with_stall(0.1, std::time::Duration::from_millis(1)),
        );
        Study::new()
            .with(ClusterConfig::abe())
            .with(ClusterConfig::petascale())
            .with(ClusterConfig::scaled_to_capacity(500.0).unwrap())
            .run(&spec)
            .unwrap()
    };
    assert_eq!(report.outputs.len() + report.failures.len(), scenario_count);
    for failure in &report.failures {
        assert!(!failure.message.is_empty());
        assert!(failure.replication.is_some(), "injected panics carry their index");
    }
    // The chaos decisions are a pure function of (seed, site, index), so
    // the same scoped config reproduces the same failure set.
    let replay = {
        let _chaos = chaos::scoped(
            chaos::ChaosConfig::new(7)
                .with_panic_probability(0.25)
                .with_stall(0.1, std::time::Duration::from_millis(1)),
        );
        Study::new()
            .with(ClusterConfig::abe())
            .with(ClusterConfig::petascale())
            .with(ClusterConfig::scaled_to_capacity(500.0).unwrap())
            .run(&spec)
            .unwrap()
    };
    assert_eq!(
        report.clone().without_wall_clock().outputs,
        replay.clone().without_wall_clock().outputs
    );
    assert_eq!(
        report.failures.iter().map(|f| (&f.scenario, f.replication)).collect::<Vec<_>>(),
        replay.failures.iter().map(|f| (&f.scenario, f.replication)).collect::<Vec<_>>()
    );
    // Pool still healthy with chaos off.
    let clean = Study::new().with(ClusterConfig::abe()).run(&spec).unwrap();
    assert_eq!(clean.outputs.len(), 1);
    assert!(clean.failures.is_empty());
}

/// Injected non-finite rewards surface as a typed failure naming the
/// poisoned reward — the statistics layer refuses to average NaNs into a
/// silently-wrong report.
#[test]
fn corrupted_rewards_become_typed_failures() {
    let spec = RunSpec::new()
        .with_horizon_hours(1000.0)
        .with_replications(4)
        .with_base_seed(23)
        .with_failure_policy(FailurePolicy::ContinueAndReport);
    let report = {
        let _chaos = chaos::scoped(chaos::ChaosConfig::new(3).with_nan_probability(1.0));
        Study::new().with(ClusterConfig::abe()).run(&spec).unwrap()
    };
    assert!(report.outputs.is_empty());
    assert_eq!(report.failures.len(), 1);
    let failure = &report.failures[0];
    assert!(failure.message.contains("non-finite"), "{}", failure.message);
    // And the report sinks render the failure without choking on it.
    assert!(report.to_json().contains("non-finite"));
    assert!(report.to_csv().contains("non-finite"));
}
