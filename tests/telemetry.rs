//! Integration tests for the telemetry layer: deterministic counters are
//! worker-count-invariant, statistics are bit-identical with telemetry on
//! or off, the report carries and renders the snapshot in every sink, and
//! (in release builds) the enabled-telemetry kernel throughput stays
//! within 2 % of the uninstrumented baseline.

use std::sync::{Mutex, MutexGuard, PoisonError};

use petascale_cfs::cfs_model::{ClusterConfig, Report, RunSpec, Study, TelemetryConfig};
use petascale_cfs::probdist::telemetry;

/// Telemetry state is process-global: every test that enables it (directly
/// or through a spec's [`TelemetryConfig`]) serialises on this lock so
/// concurrent test threads cannot bleed counters into each other's deltas.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn telemetry_lock() -> MutexGuard<'static, ()> {
    TELEMETRY_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn spec(workers: usize) -> RunSpec {
    RunSpec::new()
        .with_horizon_hours(2000.0)
        .with_replications(6)
        .with_base_seed(20_080_625)
        .with_workers(workers)
        .with_telemetry(TelemetryConfig::new())
}

/// The deterministic subset of a report's telemetry attachment: every
/// sample whose schema tags it `deterministic`, in registry order.
fn deterministic_samples(report: &Report) -> Vec<(String, f64)> {
    report
        .telemetry
        .as_ref()
        .expect("telemetry-enabled run attaches a snapshot")
        .samples
        .iter()
        .filter(|sample| sample.determinism == "deterministic")
        .map(|sample| (sample.name.clone(), sample.value))
        .collect()
}

/// The acceptance property: counters tagged deterministic — events fired,
/// re-examinations, restarts, missions, replication counts — are
/// bit-identical at workers 1, 2, and 8, because replication `i` is a pure
/// function of `(seed, i)` no matter which worker claims it.
#[test]
fn deterministic_counters_are_worker_count_invariant() {
    let _guard = telemetry_lock();
    let run = |workers| Study::new().with(ClusterConfig::abe()).run(&spec(workers)).unwrap();
    let serial = run(1);
    let reference = deterministic_samples(&serial);
    assert!(!reference.is_empty());
    let snapshot = serial.telemetry.as_ref().unwrap();
    let events = snapshot.get("san_events_fired_total").unwrap().value;
    assert!(events > 0.0, "the kernel must have recorded fired events");
    let completed = snapshot.get("replications_completed_total").unwrap().value;
    assert!(completed >= 6.0, "all replications must be counted, got {completed}");
    for workers in [2, 8] {
        let parallel = run(workers);
        assert_eq!(reference, deterministic_samples(&parallel), "workers {workers}");
    }
}

/// Telemetry never touches the statistics: the same study produces
/// bit-identical outputs with the instrumentation enabled or disabled, at
/// every worker count.
#[test]
fn statistics_are_bit_identical_with_telemetry_on_or_off() {
    let _guard = telemetry_lock();
    for workers in [1, 2, 8] {
        let on = Study::new().with(ClusterConfig::abe()).run(&spec(workers)).unwrap();
        let off = Study::new()
            .with(ClusterConfig::abe())
            .run(&spec(workers).without_telemetry())
            .unwrap();
        assert!(on.telemetry.is_some());
        assert!(off.telemetry.is_none());
        assert_eq!(
            on.without_wall_clock().outputs,
            off.without_wall_clock().outputs,
            "workers {workers}"
        );
    }
}

/// The snapshot rides the report through all three sinks, and the
/// per-scenario elapsed time renders alongside it.
#[test]
fn report_renders_telemetry_and_elapsed_in_every_sink() {
    let _guard = telemetry_lock();
    let report = Study::new().with(ClusterConfig::abe()).run(&spec(2)).unwrap();

    let text = report.to_text();
    assert!(text.contains("==== telemetry ===="), "{text}");
    assert!(text.contains("san_events_fired_total"), "{text}");
    assert!(text.contains("elapsed: "), "{text}");

    let csv = report.to_csv();
    assert!(csv.contains("_telemetry,san_events_fired_total"), "{csv}");
    assert!(csv.contains(",elapsed_seconds,"), "{csv}");

    let json = report.to_json();
    assert!(json.contains("\"telemetry\""), "missing telemetry key");
    assert!(json.contains("san_events_fired_total"), "missing samples");
    assert!(json.contains("\"elapsed_seconds\""), "missing elapsed field");

    // Stripping the wall-clock artefacts removes all of it.
    let stripped = report.without_wall_clock();
    assert!(stripped.telemetry.is_none());
    assert!(stripped.outputs.iter().all(|o| o.elapsed_seconds.is_none()));
}

/// `exposition_path` writes a Prometheus-style text file atomically at the
/// end of the run.
#[test]
fn exposition_path_writes_a_prometheus_file() {
    let _guard = telemetry_lock();
    let mut path = std::env::temp_dir();
    path.push(format!("cfs-telemetry-expo-{}.prom", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let config = TelemetryConfig::new().with_exposition_path(path.to_str().unwrap());
    let report =
        Study::new().with(ClusterConfig::abe()).run(&spec(2).with_telemetry(config)).unwrap();
    assert!(report.telemetry.is_some());
    let body = std::fs::read_to_string(&path).unwrap();
    assert!(body.contains("# TYPE"), "{body}");
    assert!(body.contains("replications_completed_total"), "{body}");
    std::fs::remove_file(&path).unwrap();
}

/// Without a spec-level config the instrumentation is a functional no-op:
/// a full study run moves no counter at all.
#[test]
fn disabled_telemetry_records_nothing() {
    let _guard = telemetry_lock();
    let before = telemetry::counter_value(telemetry::MetricId::SanEventsFired);
    let report = Study::new().with(ClusterConfig::abe()).run(&spec(2).without_telemetry()).unwrap();
    assert!(report.telemetry.is_none());
    let after = telemetry::counter_value(telemetry::MetricId::SanEventsFired);
    assert_eq!(before, after, "disabled telemetry must record nothing");
}

/// Best-of-N kernel throughput (events simulated per second) for one fixed
/// workload, with the telemetry accumulators enabled or disabled.
#[cfg(not(debug_assertions))]
fn kernel_events_per_sec(telemetry_on: bool, trials: usize) -> f64 {
    use petascale_cfs::sanet::Experiment;

    let built = petascale_cfs::cfs_model::build_built_in("abe").unwrap();
    let experiment = Experiment::new(built.model, 4000.0);
    let guard = telemetry_on.then(telemetry::enable_scoped);
    let mut best = 0.0f64;
    for _ in 0..trials {
        let start = std::time::Instant::now();
        let runs = experiment.run_raw_range(0..16, 11).unwrap();
        let events: u64 = runs.iter().map(|r| r.events).sum();
        best = best.max(events as f64 / start.elapsed().as_secs_f64());
    }
    drop(guard);
    best
}

/// The release-mode overhead gate: with telemetry enabled, the kernel's
/// best-of-N events/s stays within 2 % of the uninstrumented baseline.
/// (Debug builds skip the gate — unoptimised counters are not the shipped
/// configuration.)
#[cfg(not(debug_assertions))]
#[test]
fn enabled_telemetry_overhead_stays_under_two_percent() {
    let _guard = telemetry_lock();
    // Warm both paths first so neither side pays one-time costs (thread
    // shard registration, page faults) inside the measured window.
    kernel_events_per_sec(true, 1);
    kernel_events_per_sec(false, 1);
    let off = kernel_events_per_sec(false, 5);
    let on = kernel_events_per_sec(true, 5);
    assert!(
        on >= off * 0.98,
        "telemetry overhead exceeds 2%: {off:.0} events/s disabled vs {on:.0} enabled"
    );
}
