//! Integration test: the paper's headline quantitative claims, checked
//! end-to-end through the public API of the umbrella crate.
//!
//! These are *shape* checks (who wins, in which direction, by roughly what
//! factor), not exact number matches — the substrate is a reimplemented
//! simulator, not the authors' Möbius models or the NCSA testbed.

use petascale_cfs::cfs_model::experiments::{
    figure2_storage_availability_with, figure4_cfs_availability_with,
};
use petascale_cfs::prelude::*;

const YEAR_HOURS: f64 = 8760.0;

fn spec(replications: usize, seed: u64) -> RunSpec {
    RunSpec::new()
        .with_horizon_hours(YEAR_HOURS)
        .with_replications(replications)
        .with_base_seed(seed)
}

/// Section 5.1 / Figure 2: at ABE scale every disk configuration yields
/// essentially 100 % storage availability, and RAID6 keeps the ABE
/// configuration near-perfect even at petascale.
#[test]
fn figure2_shape_raid6_masks_disk_failures() {
    let result = figure2_storage_availability_with(&[96.0, 12_288.0], &spec(10, 11))
        .expect("figure 2 sweep runs");
    for series in &result.series {
        assert!(
            series.points[0].availability.point > 0.999,
            "ABE-scale availability must be ~1 for {}",
            series.label
        );
    }
    // The ABE configuration (0.7, 2.92 %) stays above the pessimistic
    // (0.6, 8.76 %) configuration at petascale.
    let abe = result.series.iter().find(|s| s.label.contains("2.92")).unwrap();
    let pessimistic = result.series.iter().find(|s| s.label == "(0.6,8.76,8+2,4)").unwrap();
    assert!(
        abe.points[1].availability.point >= pessimistic.points[1].availability.point,
        "better disks must not be worse at petascale"
    );
}

/// Section 5.1: the (8+3) Blue Waters geometry loses no more data than
/// (8+2) under identical pessimistic disks at petascale.
#[test]
fn eight_plus_three_is_at_least_as_good_as_eight_plus_two() {
    let disk = DiskModel { weibull_shape: 0.6, mtbf_hours: 60_000.0, capacity_gb: 250.0 };
    let mut base = StorageConfig::abe_scratch();
    base.tiers = 960;
    base.ddn_units = 20;
    base.disk = disk;
    base.replacement_hours = 12.0;
    let mut plus3 = base.clone();
    plus3.geometry = RaidGeometry::raid_8p3();

    let a2 = StorageSimulator::new(base).unwrap().run(YEAR_HOURS, 12, 3).unwrap();
    let a3 = StorageSimulator::new(plus3).unwrap().run(YEAR_HOURS, 12, 3).unwrap();
    assert!(a3.data_loss_events.point <= a2.data_loss_events.point);
    assert!(a3.availability.point >= a2.availability.point - 1e-6);
}

/// Section 5.2 / Figure 4: CFS availability declines as the system scales
/// (0.972 → 0.909 in the paper), storage availability stays ≈ 1, CU sits
/// below CFS availability, and a standby spare OSS recovers part of the
/// loss.
#[test]
fn figure4_shape_cfs_availability_declines_with_scale() {
    let result = figure4_cfs_availability_with(&[96.0, 12_288.0], &spec(12, 19))
        .expect("figure 4 sweep runs");
    let abe = &result.points[0];
    let peta = &result.points[1];

    assert!(abe.cfs_availability.point > 0.95 && abe.cfs_availability.point < 0.995);
    assert!(peta.cfs_availability.point < abe.cfs_availability.point - 0.03);
    assert!(peta.cfs_availability.point > 0.85);
    assert!(abe.storage_availability.point > 0.999 && peta.storage_availability.point > 0.999);
    assert!(abe.cluster_utility.point <= abe.cfs_availability.point);
    assert!(peta.cluster_utility.point < peta.cfs_availability.point);
    assert!(peta.cfs_availability_spare_oss.point > peta.cfs_availability.point + 0.005);
}

/// Table 1 + Section 5.2: the simulated ABE CFS availability matches the
/// availability measured from the (synthetic) outage log within a couple of
/// percentage points — the calibration argument the paper uses to trust its
/// petascale extrapolation.
#[test]
fn simulated_abe_availability_matches_log_measurement() {
    let log = LogGenerator::new(LogGenConfig::abe_calibrated()).generate(3).unwrap();
    let measured = OutageAnalysis::from_log(&log).unwrap().availability();
    let simulated = evaluate(&ClusterConfig::abe(), &spec(16, 23)).unwrap();
    assert!(
        (simulated.cfs_availability.point - measured).abs() < 0.03,
        "simulated {} vs measured {}",
        simulated.cfs_availability.point,
        measured
    );
}

/// Table 4 / Section 5.1: the ABE configuration replaces 0–2 disks per week,
/// and the replacement rate grows roughly linearly when the system is scaled
/// up (the cost argument of Figure 3).
#[test]
fn disk_replacement_rate_is_small_at_abe_and_grows_linearly() {
    let abe = StorageSimulator::new(StorageConfig::abe_scratch())
        .unwrap()
        .run(YEAR_HOURS, 16, 29)
        .unwrap();
    assert!(abe.replacements_per_week.point > 0.2 && abe.replacements_per_week.point < 3.0);

    let mut ten_times = StorageConfig::abe_scratch();
    ten_times.tiers = 480;
    ten_times.ddn_units = 20;
    let big = StorageSimulator::new(ten_times).unwrap().run(YEAR_HOURS, 16, 29).unwrap();
    let ratio = big.replacements_per_week.point / abe.replacements_per_week.point;
    assert!(ratio > 6.0 && ratio < 14.0, "10x disks should give ~10x replacements, got {ratio}");
}
