//! Integration tests for the `RunSpec`/`Study` execution guarantees under
//! the work-stealing engine: scheduling every scenario×replication work
//! unit onto one global pool must not change any statistic (bit-for-bit)
//! at any worker count, distinct base seeds must give distinct estimates,
//! adaptive precision-targeted runs must stop within their bounds and be
//! bit-identical to fixed runs of the same length, and the unified report
//! sink must render the same study identically regardless of parallelism.

use petascale_cfs::prelude::*;

fn spec(workers: usize) -> RunSpec {
    RunSpec::new()
        .with_horizon_hours(4380.0)
        .with_replications(12)
        .with_base_seed(20_080_625)
        .with_workers(workers)
}

/// The acceptance property of the API redesign: a `Study` run with one
/// worker and with several workers reproduces identical
/// `ClusterDependability` values for the same base seed.
#[test]
fn serial_and_parallel_evaluation_are_bit_identical() {
    let abe = ClusterConfig::abe();
    let serial = evaluate(&abe, &spec(1)).unwrap();
    let parallel = evaluate(&abe, &spec(4)).unwrap();
    assert_eq!(serial, parallel, "worker count must not perturb any statistic");

    let more_workers = evaluate(&abe, &spec(8)).unwrap();
    assert_eq!(serial, more_workers);
}

/// The same property through the full `Study` pipeline, across scenario
/// kinds (raw config, a figure sweep, an ablation): the rendered reports —
/// text, CSV, and JSON — must match bit for bit.
#[test]
fn study_reports_are_identical_for_any_worker_count() {
    let study = || {
        Study::new()
            .with(ClusterConfig::abe())
            .with(cfs_model::scenario::Figure3DiskReplacements { disk_counts: vec![480] })
            .with(cfs_model::scenario::SpareOssAblation)
    };
    // Per-scenario elapsed timings are wall-clock noise — strip them before
    // comparing the deterministic statistics bit for bit.
    let serial = study().run(&spec(1)).unwrap().without_wall_clock();
    let parallel = study().run(&spec(4)).unwrap().without_wall_clock();

    assert_eq!(serial.outputs, parallel.outputs);
    assert_eq!(serial.to_csv(), parallel.to_csv());
    // The rendered report embeds the spec, whose worker count legitimately
    // differs — re-wrap the parallel outputs with the serial spec and the
    // JSON must match bit for bit.
    let parallel_rewrapped = Report::new(spec(1), parallel.outputs);
    assert_eq!(serial.to_json(), parallel_rewrapped.to_json());
    assert_eq!(serial.to_text(), parallel_rewrapped.to_text());
}

/// Distinct base seeds must produce distinct point estimates (the streams
/// really are seed-derived, not time- or order-derived).
#[test]
fn distinct_seeds_give_distinct_estimates() {
    let abe = ClusterConfig::abe();
    let a = evaluate(&abe, &spec(0).with_base_seed(1)).unwrap();
    let b = evaluate(&abe, &spec(0).with_base_seed(2)).unwrap();
    assert_ne!(
        a.cfs_availability.point, b.cfs_availability.point,
        "different seeds must explore different sample paths"
    );

    // And the same seed reproduces the same estimate exactly.
    let a_again = evaluate(&abe, &spec(0).with_base_seed(1)).unwrap();
    assert_eq!(a.cfs_availability.point, a_again.cfs_availability.point);
}

/// The storage Monte-Carlo engine honours the same guarantee through
/// `run_with`.
#[test]
fn storage_simulator_is_worker_count_invariant() {
    let sim = StorageSimulator::new(StorageConfig::abe_scratch()).unwrap();
    let serial = sim.run_with(8760.0, 16, 7, 0.95, 1).unwrap();
    let parallel = sim.run_with(8760.0, 16, 7, 0.95, 4).unwrap();
    assert_eq!(serial, parallel);
}

/// The work-stealing scheduler under stress: a study whose *first*
/// scenario is the slowest (the petascale model) mixed with cheap
/// scenarios, so fast workers finish their claims early and steal from the
/// slow scenario's replications. The rendered statistics must be
/// bit-identical at every worker count.
#[test]
fn slow_first_scenario_mix_is_bit_identical_across_worker_counts() {
    let study = || {
        Study::new()
            .with(ClusterConfig::petascale()) // slowest first
            .with(ClusterConfig::abe())
            .with(cfs_model::scenario::Figure3DiskReplacements { disk_counts: vec![480] })
            .with(cfs_model::scenario::Table5Parameters)
    };
    let base =
        RunSpec::new().with_horizon_hours(2000.0).with_replications(6).with_base_seed(20_080_625);
    let serial = study().run(&base.clone().with_workers(1)).unwrap().without_wall_clock();
    for workers in [2, 8] {
        let parallel =
            study().run(&base.clone().with_workers(workers)).unwrap().without_wall_clock();
        assert_eq!(serial.outputs, parallel.outputs, "workers = {workers}");
        assert_eq!(serial.to_csv(), parallel.to_csv(), "workers = {workers}");
    }
}

/// Adaptive stopping through the full pipeline: a spec with a loose
/// precision target stops within `[min, max]`, records the replication
/// count actually used, and surfaces it in the text, CSV, and JSON
/// renderings of the report.
#[test]
fn adaptive_stopping_is_recorded_in_every_report_format() {
    let spec = RunSpec::new()
        .with_horizon_hours(2000.0)
        .with_base_seed(11)
        .with_workers(2)
        .with_precision_target(0.5, 4, 64);
    let report = Study::new().with(ClusterConfig::abe()).run(&spec).unwrap();
    let output = report.output("ABE").unwrap();
    let used = output.replications_used.expect("Monte-Carlo scenario records its replications");
    assert!((4..=64).contains(&(used as usize)), "used {used} replications");

    let text = report.to_text();
    assert!(text.contains(&format!("replications used: {used}")), "{text}");
    assert!(text.contains("precision ±50.00% (4..64 replications)"), "{text}");
    let csv = report.to_csv();
    assert!(csv.contains(&format!("ABE,replications_used,{used},")), "{csv}");
    let json = report.to_json();
    assert!(json.contains("replications_used"), "{json}");
    assert!(json.contains("precision"), "{json}");
}

/// A high-variance scenario with an unreachable target runs to the cap —
/// the other side of the stopping-rule contract.
#[test]
fn unreachable_precision_target_runs_to_the_cap() {
    let spec = RunSpec::new()
        .with_horizon_hours(2000.0)
        .with_base_seed(3)
        .with_precision_target(1e-9, 4, 8);
    let report = Study::new().with(ClusterConfig::abe()).run(&spec).unwrap();
    assert_eq!(report.output("ABE").unwrap().replications_used, Some(8));
}

/// Determinism across replication policies: an adaptive run that stops at
/// `n` replications is bit-identical to a fixed run of `n` replications
/// with the same base seed — and stays so at any worker count.
#[test]
fn adaptive_and_fixed_runs_of_equal_length_are_bit_identical() {
    let abe = ClusterConfig::abe();
    let adaptive_spec = RunSpec::new()
        .with_horizon_hours(2000.0)
        .with_base_seed(9)
        .with_workers(2)
        .with_precision_target(0.5, 4, 64);
    let adaptive = evaluate(&abe, &adaptive_spec).unwrap();
    let fixed_spec = RunSpec::new()
        .with_horizon_hours(2000.0)
        .with_base_seed(9)
        .with_replications(adaptive.replications);
    for workers in [1, 4] {
        let fixed = evaluate(&abe, &fixed_spec.clone().with_workers(workers)).unwrap();
        assert_eq!(adaptive, fixed, "workers = {workers}");
    }
}

/// The batched-claiming determinism gate at scale: one million replications
/// of the 2-activity repairable unit through `sanet::Experiment` (the
/// `RunSpec` surface caps replications at 100 000, so the experiment API is
/// the only road to this count), pinned bit-identical at workers 1, 2, and
/// 8. A million indices exercise thousands of adaptively-sized claim
/// batches per worker, so any ordering or stream-assignment bug in the
/// persistent pool shows up here even when the small suites stay green.
/// Debug builds skip it (tens of seconds there, ~a second per worker count
/// in release).
#[test]
#[cfg_attr(debug_assertions, ignore = "million-replication smoke is a release-build test")]
fn million_replication_experiment_is_bit_identical_across_worker_counts() {
    let build_experiment =
        || {
            let mut builder = ModelBuilder::new("unit");
            let up = builder.add_place("up", 1).unwrap();
            let down = builder.add_place("down", 0).unwrap();
            builder
                .timed_activity("fail", Exponential::from_mean(1_000.0).unwrap())
                .unwrap()
                .input_arc(up, 1)
                .output_arc(down, 1)
                .build()
                .unwrap();
            builder
                .timed_activity("repair", Exponential::from_mean(10.0).unwrap())
                .unwrap()
                .input_arc(down, 1)
                .output_arc(up, 1)
                .build()
                .unwrap();
            let mut experiment = Experiment::new(builder.build().unwrap(), 10_000.0);
            experiment.add_reward(sanet::reward::RewardSpec::time_averaged_rate(
                "avail",
                move |m| if m.tokens(up) > 0 { 1.0 } else { 0.0 },
            ));
            experiment
        };

    let mut serial = build_experiment();
    serial.set_workers(1);
    let baseline = serial.run(1_000_000, 20_080_625).unwrap();
    let estimate = baseline.reward("avail").unwrap();
    assert!(estimate.interval.point > 0.98, "unit is mostly up: {}", estimate.interval.point);

    for workers in [2, 8] {
        let mut parallel = build_experiment();
        parallel.set_workers(workers);
        let summary = parallel.run(1_000_000, 20_080_625).unwrap();
        assert_eq!(baseline, summary, "workers = {workers}");
    }
}

/// The adaptive replication count itself must be worker-count invariant:
/// the stopping decision reduces from index-ordered statistics, so the
/// engine may not stop at different counts under different scheduling.
#[test]
fn adaptive_replication_count_is_worker_count_invariant() {
    let spec = |workers: usize| {
        RunSpec::new()
            .with_horizon_hours(2000.0)
            .with_base_seed(17)
            .with_workers(workers)
            .with_precision_target(0.05, 4, 32)
    };
    let serial = evaluate(&ClusterConfig::abe(), &spec(1)).unwrap();
    for workers in [2, 8] {
        let parallel = evaluate(&ClusterConfig::abe(), &spec(workers)).unwrap();
        assert_eq!(serial, parallel, "workers = {workers}");
    }
}
