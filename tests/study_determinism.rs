//! Integration tests for the `RunSpec`/`Study` execution guarantees:
//! replication fan-out across worker threads must not change any statistic
//! (bit-for-bit), distinct base seeds must give distinct estimates, and the
//! unified report sink must render the same study identically regardless of
//! parallelism.

use petascale_cfs::prelude::*;

fn spec(workers: usize) -> RunSpec {
    RunSpec::new()
        .with_horizon_hours(4380.0)
        .with_replications(12)
        .with_base_seed(20_080_625)
        .with_workers(workers)
}

/// The acceptance property of the API redesign: a `Study` run with one
/// worker and with several workers reproduces identical
/// `ClusterDependability` values for the same base seed.
#[test]
fn serial_and_parallel_evaluation_are_bit_identical() {
    let abe = ClusterConfig::abe();
    let serial = evaluate(&abe, &spec(1)).unwrap();
    let parallel = evaluate(&abe, &spec(4)).unwrap();
    assert_eq!(serial, parallel, "worker count must not perturb any statistic");

    let more_workers = evaluate(&abe, &spec(8)).unwrap();
    assert_eq!(serial, more_workers);
}

/// The same property through the full `Study` pipeline, across scenario
/// kinds (raw config, a figure sweep, an ablation): the rendered reports —
/// text, CSV, and JSON — must match bit for bit.
#[test]
fn study_reports_are_identical_for_any_worker_count() {
    let study = || {
        Study::new()
            .with(ClusterConfig::abe())
            .with(cfs_model::scenario::Figure3DiskReplacements { disk_counts: vec![480] })
            .with(cfs_model::scenario::SpareOssAblation)
    };
    let serial = study().run(&spec(1)).unwrap();
    let parallel = study().run(&spec(4)).unwrap();

    assert_eq!(serial.outputs, parallel.outputs);
    assert_eq!(serial.to_csv(), parallel.to_csv());
    // The rendered report embeds the spec, whose worker count legitimately
    // differs — re-wrap the parallel outputs with the serial spec and the
    // JSON must match bit for bit.
    let parallel_rewrapped = Report::new(spec(1), parallel.outputs);
    assert_eq!(serial.to_json(), parallel_rewrapped.to_json());
    assert_eq!(serial.to_text(), parallel_rewrapped.to_text());
}

/// Distinct base seeds must produce distinct point estimates (the streams
/// really are seed-derived, not time- or order-derived).
#[test]
fn distinct_seeds_give_distinct_estimates() {
    let abe = ClusterConfig::abe();
    let a = evaluate(&abe, &spec(0).with_base_seed(1)).unwrap();
    let b = evaluate(&abe, &spec(0).with_base_seed(2)).unwrap();
    assert_ne!(
        a.cfs_availability.point, b.cfs_availability.point,
        "different seeds must explore different sample paths"
    );

    // And the same seed reproduces the same estimate exactly.
    let a_again = evaluate(&abe, &spec(0).with_base_seed(1)).unwrap();
    assert_eq!(a.cfs_availability.point, a_again.cfs_availability.point);
}

/// The storage Monte-Carlo engine honours the same guarantee through
/// `run_with`.
#[test]
fn storage_simulator_is_worker_count_invariant() {
    let sim = StorageSimulator::new(StorageConfig::abe_scratch()).unwrap();
    let serial = sim.run_with(8760.0, 16, 7, 0.95, 1).unwrap();
    let parallel = sim.run_with(8760.0, 16, 7, 0.95, 4).unwrap();
    assert_eq!(serial, parallel);
}
