//! Differential test of the event-calendar kernel on the paper's composed
//! cluster models.
//!
//! The small random-SAN differentials live in
//! `crates/sanet/tests/calendar_differential.rs`; this test pins the engines
//! against each other on the *real* workload — the full ABE and petascale
//! cluster models with their standard reward set — which also proves the
//! `enabling_reads` declarations in `cfs_model::model` sound: the reference
//! kernel ignores declarations, so an under-declared gate read would
//! desynchronise the RNG stream and show up as a diverging trace.

use petascale_cfs::prelude::*;
use petascale_cfs::sanet::Simulator;

use cfs_model::model::build_cluster_model;
use cfs_model::rewards::standard_rewards;

fn assert_engines_agree_on(config: &ClusterConfig, horizon: f64, seeds: std::ops::Range<u64>) {
    let cluster = build_cluster_model(config).unwrap();
    let rewards = standard_rewards(&cluster);
    let sim = Simulator::new(&cluster.model);
    for seed in seeds {
        let (cal, cal_trace) =
            sim.run_traced(&rewards, horizon, 0.0, &mut SimRng::seed_from_u64(seed)).unwrap();
        let (reference, ref_trace) = sim
            .run_reference_traced(&rewards, horizon, 0.0, &mut SimRng::seed_from_u64(seed))
            .unwrap();
        assert_eq!(
            cal, reference,
            "calendar and reference kernels diverged on '{}' (seed {seed})",
            config.name
        );
        assert_eq!(cal_trace, ref_trace, "traces diverged on '{}' (seed {seed})", config.name);
        assert!(cal.events > 0, "the horizon must be long enough to exercise the model");
    }
}

#[test]
fn abe_model_is_bit_identical_across_kernels() {
    assert_engines_agree_on(&ClusterConfig::abe(), 4_380.0, 0..6);
}

#[test]
fn abe_with_spare_oss_is_bit_identical_across_kernels() {
    assert_engines_agree_on(&ClusterConfig::abe().with_spare_oss(), 4_380.0, 0..4);
}

#[test]
fn petascale_model_is_bit_identical_across_kernels() {
    assert_engines_agree_on(&ClusterConfig::petascale(), 1_500.0, 0..3);
}

#[test]
fn petascale_with_mitigations_is_bit_identical_across_kernels() {
    let config = ClusterConfig::petascale().with_spare_oss().with_multipath_network();
    assert_engines_agree_on(&config, 1_000.0, 0..3);
}
