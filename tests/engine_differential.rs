//! Declaration soundness of the paper's composed cluster models.
//!
//! The `enabling_reads` / `timing_reads` declarations in `cfs_model::model`
//! are scheduling contracts: an under-declared gate read makes the
//! event-calendar kernel skip re-examining an activity whose enabling just
//! changed, silently corrupting results. Two independent instruments pin
//! them sound:
//!
//! * The **differential oracle** — the full ABE model traced step by step
//!   on both kernels. The reference kernel ignores declarations, so an
//!   under-declared read desynchronises the RNG stream and shows up as a
//!   diverging trace. This is also the oracle *for the linter itself*: a
//!   model the differential proves sound must lint clean, so a lint
//!   failure here while the differential passes means the linter (not the
//!   model) regressed.
//! * The **static linter** — `Model::lint` probes every gate and timing
//!   closure over a fuzzed marking corpus and flags undeclared reads
//!   directly (`SAN001`/`SAN002`). The remaining configurations ride this
//!   much cheaper check; the small random-SAN differentials in
//!   `crates/sanet/tests/calendar_differential.rs` keep cross-checking the
//!   kernels themselves.

use petascale_cfs::prelude::*;
use petascale_cfs::sanet::lint::{codes, LintConfig, Severity};
use petascale_cfs::sanet::Simulator;

use cfs_model::model::build_cluster_model;
use cfs_model::rewards::standard_rewards;

fn assert_engines_agree_on(config: &ClusterConfig, horizon: f64, seeds: std::ops::Range<u64>) {
    let cluster = build_cluster_model(config).unwrap();
    let rewards = standard_rewards(&cluster);
    let sim = Simulator::new(&cluster.model);
    for seed in seeds {
        let (cal, cal_trace) =
            sim.run_traced(&rewards, horizon, 0.0, &mut SimRng::seed_from_u64(seed)).unwrap();
        let (reference, ref_trace) = sim
            .run_reference_traced(&rewards, horizon, 0.0, &mut SimRng::seed_from_u64(seed))
            .unwrap();
        assert_eq!(
            cal, reference,
            "calendar and reference kernels diverged on '{}' (seed {seed})",
            config.name
        );
        assert_eq!(cal_trace, ref_trace, "traces diverged on '{}' (seed {seed})", config.name);
        assert!(cal.events > 0, "the horizon must be long enough to exercise the model");
    }
}

/// Lints a configuration with its standard rewards and denies at Warning:
/// no undeclared reads, no dead activities, no dangling rewards.
fn assert_lints_clean(config: &ClusterConfig) {
    let cluster = build_cluster_model(config).unwrap();
    let rewards = standard_rewards(&cluster);
    let report = cluster.model.lint_with(&LintConfig::default(), &rewards);
    report
        .deny(Severity::Warning)
        .unwrap_or_else(|e| panic!("'{}' must lint clean: {e}", config.name));
    // The linter must specifically certify the declarations: no undeclared
    // enabling or timing reads anywhere in the composed model.
    for code in [codes::UNDECLARED_ENABLING_READ, codes::UNDECLARED_TIMING_READ] {
        assert!(!report.has_code(code), "'{}' has {code}", config.name);
    }
}

#[test]
fn abe_model_is_bit_identical_across_kernels() {
    assert_engines_agree_on(&ClusterConfig::abe(), 4_380.0, 0..6);
}

/// The linter's oracle: the configuration the differential above proves
/// sound must also lint clean.
#[test]
fn abe_model_lints_clean_matching_the_differential_oracle() {
    assert_lints_clean(&ClusterConfig::abe());
}

#[test]
fn abe_with_spare_oss_lints_clean() {
    assert_lints_clean(&ClusterConfig::abe().with_spare_oss());
}

#[test]
fn petascale_model_lints_clean() {
    assert_lints_clean(&ClusterConfig::petascale());
}

#[test]
fn petascale_with_mitigations_lints_clean() {
    assert_lints_clean(&ClusterConfig::petascale().with_spare_oss().with_multipath_network());
}
