//! Integration tests for the rare-event estimation subsystem: importance
//! sampling (`sanet::rare`) and multilevel splitting
//! (`raidsim::splitting`) running as ordinary study scenarios must produce
//! bit-identical statistics at workers 1, 2, and 8, surface the rare-event
//! columns in every report format, and cross-validate against the analytic
//! CTMC solution.

use petascale_cfs::prelude::*;
use sanet::rare::{failover_pair, failover_pair_hitting_oracle};

/// A small but real rare-event sweep study: two redundancy schemes whose
/// loss probabilities only splitting can resolve at this effort.
fn rare_study() -> Study {
    Study::new().with(UltraReliableSweep {
        usable_capacity_tb: 1.0,
        schemes: vec![
            RedundancyScheme::Raid(RaidGeometry::raid6_8p2()),
            RedundancyScheme::Replication { replicas: 2 },
        ],
        mtbf_khours: vec![5.0],
    })
}

fn splitting_spec(workers: usize) -> RunSpec {
    RunSpec::new()
        .with_horizon_hours(4380.0)
        .with_base_seed(20_080_625)
        .with_workers(workers)
        .with_rare_event(RareEventPolicy::MultilevelSplitting { trials_per_level: 300 })
}

/// The acceptance property: rare-event studies are bit-identical at
/// workers 1, 2, and 8, in every report format.
#[test]
fn rare_event_studies_are_bit_identical_at_any_worker_count() {
    // Wall-clock timings are stripped — only the statistics must match.
    let serial = rare_study().run(&splitting_spec(1)).unwrap().without_wall_clock();
    for workers in [2, 8] {
        let parallel = rare_study().run(&splitting_spec(workers)).unwrap().without_wall_clock();
        assert_eq!(serial.outputs, parallel.outputs, "workers = {workers}");
        assert_eq!(serial.to_csv(), parallel.to_csv(), "workers = {workers}");
        // The rendered report embeds the spec, whose worker count
        // legitimately differs — re-wrap the parallel outputs with the
        // serial spec and the text/JSON must match bit for bit.
        let rewrapped = Report::new(splitting_spec(1), parallel.outputs);
        assert_eq!(serial.to_text(), rewrapped.to_text(), "workers = {workers}");
        assert_eq!(serial.to_json(), rewrapped.to_json(), "workers = {workers}");
    }
}

/// Adaptive splitting under a precision target is also worker-invariant,
/// and the spent trials are surfaced like any replication count.
#[test]
fn adaptive_rare_event_studies_are_worker_invariant() {
    let spec = |workers: usize| {
        RunSpec::new()
            .with_horizon_hours(4380.0)
            .with_base_seed(7)
            .with_workers(workers)
            .with_precision_target(0.5, 100, 800)
    };
    let study = || {
        Study::new().with(UltraReliableSweep {
            usable_capacity_tb: 1.0,
            schemes: vec![RedundancyScheme::Replication { replicas: 2 }],
            mtbf_khours: vec![5.0],
        })
    };
    let serial = study().run(&spec(1)).unwrap().without_wall_clock();
    for workers in [2, 8] {
        let parallel = study().run(&spec(workers)).unwrap().without_wall_clock();
        assert_eq!(serial.outputs, parallel.outputs, "workers = {workers}");
    }
    let used = serial.outputs[0].replications_used.expect("splitting records trials");
    assert!(used >= 100, "at least the minimum effort is spent, used {used}");
}

/// The report carries the full rare-event vocabulary: estimated
/// probability, relative error, effective sample size, and
/// variance-reduction factor, in all three formats.
#[test]
fn reports_surface_rare_event_statistics() {
    let report = rare_study().run(&splitting_spec(2)).unwrap();
    let output = report.output("ultra_reliable_sweep").unwrap();
    assert!(output.metric("winner_loss_probability_upper").is_some());
    assert!(output.metric("winner_storage_overhead").is_some());

    let text = report.render(ReportFormat::Text);
    for column in
        ["loss_probability", "relative_error", "effective_sample_size", "variance_reduction"]
    {
        assert!(text.contains(column), "text report must mention {column}: {text}");
    }
    let csv = report.render(ReportFormat::Csv);
    assert!(csv.contains("ultra_reliable_sweep,winner_loss_probability_upper"), "{csv}");
    let json = report.render(ReportFormat::Json);
    assert!(json.contains("\"ultra_reliable_sweep\""), "{json}");
    assert!(json.contains("loss_probability"), "{json}");
}

/// End-to-end cross-validation of the importance-sampling path at the
/// workspace level: the biased fail-over-pair estimate agrees with the
/// exact CTMC transient hitting probability within its reported interval,
/// and is worker-invariant.
#[test]
fn importance_sampling_cross_validates_against_the_ctmc() {
    let (lambda, mu, horizon) = (1e-3, 1.0, 10.0);

    // The shared fixture: the fail-over-pair SAN with its latch, and the
    // matching absorbing CTMC solved by uniformization.
    let pair = failover_pair(lambda, mu).unwrap();
    let exact = failover_pair_hitting_oracle(lambda, mu, horizon).unwrap();

    let run = |workers: usize| {
        let bias = FailureBias::new(60.0, ["fail"]).unwrap();
        let mut experiment = BiasedExperiment::new(&pair.model, bias, horizon).unwrap();
        experiment.add_reward(pair.hit_reward());
        experiment.set_workers(workers);
        experiment.run(4000, 2024).unwrap()
    };
    let serial = run(1);
    let estimate = serial.reward("hit").unwrap();
    assert!(
        estimate.interval.contains(exact),
        "interval {} must contain the CTMC value {exact}",
        estimate.interval
    );

    let parallel = run(8);
    assert_eq!(
        estimate.stats,
        parallel.reward("hit").unwrap().stats,
        "weighted statistics must be bit-identical at any worker count"
    );

    // And naive Monte Carlo at the same effort would project to orders of
    // magnitude more replications for the precision actually achieved.
    let naive =
        naive_replications_for(exact, estimate.interval.relative_half_width(), 0.95).unwrap();
    assert!(
        naive / serial.replications as f64 > 10.0,
        "IS spent {} replications where naive projects {naive:.0}",
        serial.replications
    );
}
