//! Differential validation of the reachability explorer against the
//! simulation engine, over the full built-in registry: every marking a
//! traced run visits must lie inside the statically computed reachable
//! set. The explorer over-approximates single runs by expanding every
//! enabled activity (ignoring the timing race), so containment is the
//! soundness direction — a marking the simulator can reach but the
//! explorer misses would silently corrupt boundedness and admissibility
//! verdicts.
//!
//! The bounded models are checked against a *complete* exploration; the
//! unbounded cluster models (abe, petascale) are checked against a
//! budget-limited exploration plus the `SAN040` unboundedness report the
//! CI gate relies on.

use petascale_cfs::cfs_model::lint::{build_built_in, BUILT_IN_MODELS};
use petascale_cfs::probdist::SimRng;
use petascale_cfs::sanet::lint::codes;
use petascale_cfs::sanet::reach::replay_markings;
use petascale_cfs::sanet::{ReachConfig, Simulator};

#[test]
fn bounded_built_ins_contain_every_traced_marking() {
    for name in ["beowulf", "failover-pair"] {
        let built = build_built_in(name).unwrap();
        let report = built.model.analyze();
        assert!(report.complete(), "{name} must explore completely");

        let sim = Simulator::new(&built.model);
        for seed in 0..4u64 {
            let mut rng = SimRng::seed_from_u64(0xACE0 + seed);
            let (_, trace) = sim.run_traced(&[], 20_000.0, 0.0, &mut rng).unwrap();
            for tokens in replay_markings(&built.model, &trace) {
                assert!(
                    report.contains_tokens(&tokens),
                    "{name} seed {seed}: visited {tokens:?} outside the computed set"
                );
            }
        }
    }
}

#[test]
fn unbounded_built_ins_report_exhaustion_and_contain_the_prefix() {
    // A small budget keeps the test quick; the point is the verdict, not
    // the frontier size.
    let config = ReachConfig { max_states: 2_000, max_transitions: 40_000, ..Default::default() };
    for name in ["abe", "abe-spare", "petascale", "petascale-mitigated"] {
        let built = build_built_in(name).unwrap();
        let report = built.model.analyze_with(&config);
        assert!(!report.complete(), "{name} is unbounded and must exhaust the budget");
        assert!(!report.admissibility().is_analytic());
        let lint = report.to_lint_report();
        assert!(lint.has_code(codes::UNBOUNDED_SUSPECT), "{name}: {lint}");
        // The initial marking is always interned first.
        let initial = built.model.initial_marking();
        assert!(report.contains(&initial), "{name}: initial marking must be in the set");
    }
}

#[test]
fn every_built_in_registry_entry_analyzes() {
    let config = ReachConfig { max_states: 500, max_transitions: 10_000, ..Default::default() };
    for name in BUILT_IN_MODELS {
        let built = build_built_in(name).unwrap();
        let report = built.model.analyze_with(&config);
        assert!(report.num_states() > 0, "{name} must intern at least the initial marking");
        assert_eq!(report.model(), built.model.name(), "{name}: report names its model");
    }
}
