//! Checkpoint/resume and graceful degradation: run a study with a
//! checkpoint file, simulate a mid-run kill, resume bit-identically, and
//! show a deadline truncating a run to a valid prefix.
//!
//! Run with `cargo run --release --example checkpoint_resume`.

use std::time::Duration;

use petascale_cfs::cfs_model::checkpoint;
use petascale_cfs::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut path = std::env::temp_dir();
    path.push(format!("petascale-cfs-example-{}.ckpt.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let checkpoint_path = path.to_str().expect("temp path is valid UTF-8");

    // A spec that persists every 4 completed replications to a versioned,
    // checksummed checkpoint file.
    let spec = RunSpec::new()
        .with_horizon_hours(4380.0)
        .with_replications(16)
        .with_base_seed(42)
        .with_workers(4)
        .with_checkpoint(checkpoint_path, 4);

    // Simulate a run killed at k=10: same seed, smaller budget. The file
    // now holds the prefix an interrupted full run would have persisted.
    let killed = spec.clone().with_replications(10);
    Study::new().with(ClusterConfig::abe()).run(&killed)?;
    let stored = checkpoint::load(checkpoint_path)?;
    let key = checkpoint::entry_key("ABE", 42);
    println!(
        "after the simulated kill, the checkpoint holds {} replication(s)",
        stored.entry(&key).map_or(0, <[_]>::len)
    );

    // Resume the full 16-replication budget: the stored prefix is served
    // from the file (bit-identically — replication i is a pure function of
    // the base seed and i), only the remainder simulates.
    let resumed = Study::new().with(ClusterConfig::abe()).run(&spec)?.without_wall_clock();
    let fresh = Study::new()
        .with(ClusterConfig::abe())
        .run(&spec.clone().without_checkpoint())?
        .without_wall_clock();
    assert_eq!(resumed.outputs, fresh.outputs, "resume must be bit-identical");
    println!("resumed run matches an uninterrupted run bit for bit");

    // Graceful degradation: a deadline far too tight for 10 000
    // replications truncates the run to the completed prefix instead of
    // failing — the report flags it.
    let deadline_spec = RunSpec::new()
        .with_horizon_hours(8760.0)
        .with_replications(10_000)
        .with_base_seed(7)
        .with_workers(4)
        .with_deadline(Duration::from_millis(250))
        .with_failure_policy(FailurePolicy::ContinueAndReport);
    let report = Study::new().with(ClusterConfig::petascale()).run(&deadline_spec)?;
    for output in &report.outputs {
        println!(
            "{}: {} replication(s) before the deadline{}",
            output.scenario,
            output.replications_used.unwrap_or(0),
            if output.truncated { " (truncated)" } else { "" }
        );
    }
    for failure in &report.failures {
        println!("{}: {}", failure.scenario, failure.message);
    }

    std::fs::remove_file(&path)?;
    Ok(())
}
