//! ABE baseline study: regenerate the paper's log-analysis tables
//! (Tables 1–4) from the calibrated synthetic failure log, estimate the
//! model parameters from them, and validate the estimates against Table 5.
//!
//! Run with `cargo run --release --example abe_baseline`.

use petascale_cfs::cfs_model::experiments::{
    table1_outages, table2_mount_failures, table3_jobs, table4_disk_failures, table5_parameters,
};
use petascale_cfs::cfs_model::ModelParameters;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 2007;

    let t1 = table1_outages(seed)?;
    println!("{}", t1.to_table().render());
    println!("SAN availability from the outage log: {:.4} (paper: 0.97-0.98)\n", t1.availability);

    let t2 = table2_mount_failures(seed)?;
    println!("{}", t2.to_table().render());
    println!(
        "Mount-failure storm days: {} (peak {} nodes; paper peak: 591)\n",
        t2.analysis.days().len(),
        t2.analysis.peak_day_nodes()
    );

    let t3 = table3_jobs(seed)?;
    println!("{}", t3.to_table().render());
    println!(
        "Transient network errors are {:.1}x more likely to kill a job than other errors (paper: ~5x)\n",
        t3.analysis.transient_to_other_ratio()
    );

    let t4 = table4_disk_failures(seed)?;
    println!("{}", t4.to_table().render());
    println!(
        "Weibull survival fit: shape {:.3} +/- {:.3} (paper: 0.696 +/- 0.192), {:.2} replacements/week\n",
        t4.weibull.shape, t4.weibull.shape_std_error, t4.mean_per_week
    );

    // The parameters those analyses feed into (Table 5).
    let params = ModelParameters::abe();
    params.validate()?;
    println!("{}", table5_parameters(&params).render());
    Ok(())
}
