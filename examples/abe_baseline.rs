//! ABE baseline study: regenerate the paper's log-analysis tables
//! (Tables 1–5) through the `Study` API, then validate the headline
//! estimates against the paper's published values.
//!
//! Run with `cargo run --release --example abe_baseline`.

use petascale_cfs::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Tables 1–4 are log analyses: only the base seed matters, and the same
    // seed regenerates the same synthetic ABE failure log for every table.
    let spec = RunSpec::new().with_base_seed(2007);

    let report = Study::tables().run(&spec)?;
    println!("{}", report.to_text());

    let outages = report.output("table1_outages").expect("table 1 ran");
    println!(
        "SAN availability from the outage log: {:.4} (paper: 0.97-0.98)",
        outages.metric("san_availability").expect("availability metric")
    );

    let jobs = report.output("table3_jobs").expect("table 3 ran");
    println!(
        "Transient network errors are {:.1}x more likely to kill a job than other errors (paper: ~5x)",
        jobs.metric("transient_to_other_ratio").expect("ratio metric")
    );

    let disks = report.output("table4_disk_weibull").expect("table 4 ran");
    println!(
        "Weibull survival fit: shape {:.3} (paper: 0.696 +/- 0.192), {:.2} replacements/week",
        disks.metric("weibull_shape").expect("shape metric"),
        disks.metric("mean_replacements_per_week").expect("rate metric"),
    );

    // The parameters those analyses feed into (Table 5) stay within range.
    let params = ModelParameters::abe();
    params.validate()?;
    Ok(())
}
