//! Quickstart: build the ABE cluster-file-system dependability model,
//! simulate one year, and print the paper's reward measures.
//!
//! Run with `cargo run --release --example quickstart`.

use petascale_cfs::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The ABE baseline: 1200 compute nodes, 8 OSS fail-over pairs plus one
    // metadata pair, two DDN S2A9550 units with 480 disks in RAID6 (8+2).
    let abe = ClusterConfig::abe();
    println!(
        "ABE configuration: {} nodes, {} OSS pairs, {} DDN units, {:.0} TB scratch ({} disks)",
        abe.compute_nodes,
        abe.total_oss_pairs(),
        abe.storage.ddn_units,
        abe.capacity_tb(),
        abe.storage.total_disks()
    );

    // Simulate one year of operation, 32 independent replications.
    let result = evaluate_cluster(&abe, 8760.0, 32, 42)?;
    println!("CFS availability:        {}", result.cfs_availability);
    println!("Storage availability:    {}", result.storage_availability);
    println!("Cluster utility (CU):    {}", result.cluster_utility);
    println!("Disk replacements/week:  {}", result.disk_replacements_per_week);

    // Scale the same design to a petaflop-petabyte system and compare.
    let peta = ClusterConfig::petascale();
    let peta_result = evaluate_cluster(&peta, 8760.0, 32, 42)?;
    println!();
    println!(
        "Petascale ({} nodes, {} OSS pairs, {:.0} TB):",
        peta.compute_nodes,
        peta.total_oss_pairs(),
        peta.capacity_tb()
    );
    println!("CFS availability:        {}", peta_result.cfs_availability);
    println!("Cluster utility (CU):    {}", peta_result.cluster_utility);
    println!(
        "Availability lost by scaling: {:.3}",
        result.cfs_availability.point - peta_result.cfs_availability.point
    );

    // The paper's mitigation: a standby spare OSS.
    let spared = evaluate_cluster(&peta.with_spare_oss(), 8760.0, 32, 42)?;
    println!(
        "With a standby spare OSS:     {} ({:+.3} vs. no spare)",
        spared.cfs_availability,
        spared.cfs_availability.point - peta_result.cfs_availability.point
    );
    Ok(())
}
