//! Quickstart: build the ABE cluster-file-system dependability model,
//! simulate one year under a `RunSpec`, and compare design points by
//! running them as one `Study`.
//!
//! Run with `cargo run --release --example quickstart`.

use petascale_cfs::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The ABE baseline: 1200 compute nodes, 8 OSS fail-over pairs plus one
    // metadata pair, two DDN S2A9550 units with 480 disks in RAID6 (8+2).
    let abe = ClusterConfig::abe();
    println!(
        "ABE configuration: {} nodes, {} OSS pairs, {} DDN units, {:.0} TB scratch ({} disks)",
        abe.compute_nodes,
        abe.total_oss_pairs(),
        abe.storage.ddn_units,
        abe.capacity_tb(),
        abe.storage.total_disks()
    );

    // One simulated year, 32 independent replications, fanned out across 4
    // worker threads. Replication i always draws from the RNG stream derived
    // from (base seed, i), so this spec produces bit-identical statistics
    // whether it runs serially or in parallel.
    let spec = RunSpec::new()
        .with_horizon_hours(8760.0)
        .with_replications(32)
        .with_base_seed(42)
        .with_workers(4);

    let result = evaluate(&abe, &spec)?;
    println!("CFS availability:        {}", result.cfs_availability);
    println!("Storage availability:    {}", result.storage_availability);
    println!("Cluster utility (CU):    {}", result.cluster_utility);
    println!("Disk replacements/week:  {}", result.disk_replacements_per_week);

    // Any `ClusterConfig` is itself a `Scenario`, so design points compare
    // through one `Study` entry point and render through one report sink.
    let report = Study::new()
        .with(ClusterConfig::abe())
        .with(ClusterConfig::petascale())
        .with(ClusterConfig::petascale().with_spare_oss())
        .run(&spec)?;
    println!("\n{}", report.to_text());

    let abe_availability = report.output("ABE").and_then(|o| o.metric("cfs_availability"));
    let peta_availability = report.output("12288TB").and_then(|o| o.metric("cfs_availability"));
    if let (Some(abe_a), Some(peta_a)) = (abe_availability, peta_availability) {
        println!("Availability lost by scaling: {:.3}", abe_a - peta_a);
    }

    // The same report is exportable as machine-readable CSV or JSON.
    println!("\nMetrics CSV:\n{}", report.to_csv());
    Ok(())
}
