//! RAID design-space exploration (the Figure 2 / Figure 3 experiments):
//! storage availability and disk-replacement cost across RAID geometries,
//! disk AFRs, and system scale — the data a storage architect needs to pick
//! between (8+2), (8+3), and better disks.
//!
//! Run with `cargo run --release --example raid_design_space`.

use petascale_cfs::cfs_model::experiments::{
    figure2_storage_availability_with, figure3_disk_replacements_with,
};
use petascale_cfs::prelude::*;
use petascale_cfs::raidsim::analytic::tier_mttdl;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = RunSpec::new().with_horizon_hours(8760.0).with_replications(16);

    // Figure 2: storage availability from ABE scale to petascale for the
    // paper's configuration tuples (reduced capacity sweep for a quick run).
    let fig2 = figure2_storage_availability_with(
        &[96.0, 768.0, 3072.0, 12_288.0],
        &spec.clone().with_base_seed(3),
    )?;
    println!("{}", fig2.to_table().render());

    // Figure 3: the operational cost side — disks replaced per week.
    let fig3 = figure3_disk_replacements_with(&[480, 1440, 2880, 4800], &spec.with_base_seed(5))?;
    println!("{}", fig3.to_table().render());

    // Analytic cross-check: mean time to data loss per tier for the two
    // geometries the paper compares, with ABE's disks.
    let disk = DiskModel::abe_sata_250gb();
    for geometry in [RaidGeometry::raid6_8p2(), RaidGeometry::raid_8p3()] {
        let mttdl = tier_mttdl(geometry, disk.mtbf_hours, 10.0)?;
        println!(
            "Analytic MTTDL of one {} tier with {:.0}h-MTBF disks: {:.2e} hours",
            geometry.label(),
            disk.mtbf_hours,
            mttdl
        );
    }
    Ok(())
}
