//! Rare-event estimation end to end: the two variance-reduction families
//! resolving measures plain Monte Carlo cannot see.
//!
//! * **Multilevel splitting** — the `UltraReliableSweep` workload compares
//!   RAID `n+k` widths against `r`-way replication in the regime where
//!   data-loss probabilities live at 10⁻⁶ and below, estimated by
//!   fixed-effort RESTART-style splitting over exposure depth
//!   (`raidsim::splitting`) under a `RareEventPolicy` carried by the
//!   `RunSpec`.
//! * **Importance sampling with failure biasing** — a fail-over pair's
//!   probability of total failure within a maintenance window, estimated
//!   by exponential rate tilting with likelihood-ratio weights
//!   (`sanet::rare`) and cross-checked against the exact CTMC transient
//!   solution (`sanet::ctmc`, uniformization).
//!
//! Run with `cargo run --release --example rare_event_loss`.

use petascale_cfs::prelude::*;
use sanet::rare::{failover_pair, failover_pair_hitting_oracle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Multilevel splitting: the ultra-reliable design sweep. --------
    // 2000 trials per exposure level resolve every scheme's loss
    // probability — down to ~10⁻⁵, where ~500 naive year-long missions
    // would essentially never see a loss; every trial draws from a level-
    // and index-derived seed stream, so the report is bit-identical at any
    // worker count.
    let spec = RunSpec::new()
        .with_horizon_hours(8760.0)
        .with_base_seed(2008)
        .with_rare_event(RareEventPolicy::MultilevelSplitting { trials_per_level: 2000 });

    let report = Study::new()
        .with(UltraReliableSweep {
            usable_capacity_tb: 4.0,
            schemes: vec![
                RedundancyScheme::Raid(RaidGeometry::raid6_8p2()),
                RedundancyScheme::Raid(RaidGeometry::raid_8p3()),
                RedundancyScheme::Replication { replicas: 3 },
                RedundancyScheme::Replication { replicas: 4 },
            ],
            mtbf_khours: vec![10.0],
        })
        .run(&spec)?;
    println!("{}", report.to_text());

    // ---- Importance sampling: fail-over pair vs the exact CTMC. --------
    // A pair with 1000-hour member MTBF and 1-hour repairs: P(both down
    // within a 10-hour maintenance window) ≈ 2·(1e-3)²·10 ≈ 2e-5 — one
    // hit per ~50 000 naive replications.
    let (lambda, mu, horizon) = (1e-3, 1.0, 10.0);
    let pair = failover_pair(lambda, mu)?;

    // Tilt failures 60x and run adaptively to a ±10 % weighted interval.
    let bias = FailureBias::new(60.0, ["fail"])?;
    let mut experiment = BiasedExperiment::new(&pair.model, bias, horizon)?;
    experiment.add_reward(pair.hit_reward());
    let rule = StoppingRule::new(0.10, 1_000, 200_000)?;
    let summary = experiment.run_until(rule, 2008)?;
    let estimate = summary.reward("hit")?;

    // The analytic oracle: the matching absorbing 3-state CTMC solved by
    // uniformization.
    let exact = failover_pair_hitting_oracle(lambda, mu, horizon)?;

    let naive = naive_replications_for(exact, estimate.interval.relative_half_width(), 0.95)?;
    println!("==== importance-sampled fail-over pair ====");
    println!("P(total failure within {horizon} h):");
    println!("  importance sampled   {}", estimate.interval);
    println!("  exact (CTMC)         {exact:.6e}");
    println!("  effective samples    {:.0}", estimate.effective_sample_size());
    println!("  replications spent   {}", summary.replications);
    println!("  naive MC projection  {naive:.0} replications for the same precision");
    println!("  speedup              {:.0}x", naive / summary.replications as f64);
    assert!(
        estimate.interval.contains(exact),
        "importance-sampled estimate must cover the analytic value"
    );
    Ok(())
}
