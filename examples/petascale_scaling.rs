//! Petascale scaling study (the Figure 4 experiment): how CFS availability
//! and cluster utility degrade as the ABE design is scaled to a
//! petaflop-petabyte system, and how much the spare-OSS and multi-path
//! mitigations recover.
//!
//! Run with `cargo run --release --example petascale_scaling`.

use petascale_cfs::cfs_model::experiments::figure4_cfs_availability_with;
use petascale_cfs::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = RunSpec::new().with_horizon_hours(8760.0).with_replications(24).with_base_seed(7);

    // The Figure 4 sweep: ABE (96 TB) up to the 12 PB petascale target.
    let fig4 = figure4_cfs_availability_with(&[96.0, 768.0, 3072.0, 12_288.0], &spec)?;
    println!("{}", fig4.to_table().render());

    let abe = fig4.points.first().expect("sweep has points");
    let peta = fig4.points.last().expect("sweep has points");
    println!(
        "CFS availability declines from {:.3} to {:.3} (paper: 0.972 -> 0.909)",
        abe.cfs_availability.point, peta.cfs_availability.point
    );
    println!(
        "A standby spare OSS recovers {:+.3} at petascale (paper: ~+3%)",
        peta.cfs_availability_spare_oss.point - peta.cfs_availability.point
    );

    // The second mitigation discussed in Section 5.2: multiple network paths
    // between the compute nodes and the CFS to absorb transient errors.
    let mitigation_spec = spec.with_base_seed(11);
    let base = evaluate(&ClusterConfig::petascale(), &mitigation_spec)?;
    let multipath =
        evaluate(&ClusterConfig::petascale().with_multipath_network(), &mitigation_spec)?;
    println!();
    println!("Cluster utility at petascale:           {}", base.cluster_utility);
    println!("Cluster utility with multi-path fabric: {}", multipath.cluster_utility);
    Ok(())
}
