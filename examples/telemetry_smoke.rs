//! Telemetry smoke: the metrics layer enabled end to end at scale.
//!
//! Two arms, both asserted:
//!
//! 1. A **million-replication** repairable-unit experiment through
//!    [`sanet::Experiment`] with the sharded accumulators live — the
//!    deterministic counters must account for every replication.
//! 2. A full [`Study`] run with a spec-level [`TelemetryConfig`]: live
//!    progress on stderr, the snapshot attached to the report, and the
//!    Prometheus exposition file written at quiesce.
//!
//! Writes `telemetry.json` (snapshot document) and `telemetry.prom`
//! (exposition) into the working directory; CI archives both as the
//! telemetry artifact. `CFS_SMOKE_REPLICATIONS` scales the first arm down
//! for quick local runs.
//!
//! Run with `cargo run --release --example telemetry_smoke`.

use petascale_cfs::prelude::*;
use petascale_cfs::probdist::telemetry;
use petascale_cfs::sanet::RewardSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- arm 1: million-replication kernel smoke ---------------------
    let replications: usize = std::env::var("CFS_SMOKE_REPLICATIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(1_000_000);

    let mut builder = ModelBuilder::new("unit");
    let up = builder.add_place("up", 1)?;
    let down = builder.add_place("down", 0)?;
    builder
        .timed_activity("fail", Exponential::from_mean(1_000.0)?)?
        .input_arc(up, 1)
        .output_arc(down, 1)
        .build()?;
    builder
        .timed_activity("repair", Exponential::from_mean(10.0)?)?
        .input_arc(down, 1)
        .output_arc(up, 1)
        .build()?;
    let model = builder.build()?;

    let mut experiment = Experiment::new(model, 10_000.0);
    experiment.add_reward(RewardSpec::time_averaged_rate("avail", move |m| {
        if m.tokens(up) > 0 {
            1.0
        } else {
            0.0
        }
    }));
    experiment.set_workers(0); // ambient pool / available parallelism

    let guard = telemetry::enable_scoped();
    let baseline = telemetry::snapshot();
    let start = std::time::Instant::now();
    let summary = experiment.run(replications, 20_080_625)?;
    let elapsed = start.elapsed().as_secs_f64();
    let delta = telemetry::snapshot().delta_since(&baseline);
    drop(guard);

    assert_eq!(summary.replications, replications);
    let completed = delta.get("replications_completed_total").expect("counter registered").value;
    assert!(
        (completed - replications as f64).abs() < 0.5,
        "every replication must be counted: {completed} vs {replications}"
    );
    let events = delta.get("san_events_fired_total").expect("counter registered").value;
    assert!(events > 0.0, "the kernel must record fired events");
    println!(
        "telemetry smoke arm 1: {replications} replications in {elapsed:.2} s \
         ({:.0} replications/s), {events:.0} kernel events counted",
        replications as f64 / elapsed
    );

    // ---- arm 2: study pipeline with progress + exposition ------------
    let config = TelemetryConfig::new()
        .with_progress()
        .with_progress_interval_ms(250)
        .with_exposition_path("telemetry.prom");
    let spec = RunSpec::new()
        .with_horizon_hours(8760.0)
        .with_replications(2_000)
        .with_base_seed(42)
        .with_workers(4)
        .with_telemetry(config);
    let report = Study::new().with(ClusterConfig::abe()).run(&spec)?;
    let snapshot = report.telemetry.as_ref().expect("telemetry-enabled run attaches a snapshot");
    assert!(snapshot.get("replications_completed_total").is_some());

    std::fs::write("telemetry.json", snapshot.to_json())?;
    let exposition = std::fs::read_to_string("telemetry.prom")?;
    assert!(exposition.contains("# TYPE"), "exposition file must be Prometheus-style");
    println!(
        "telemetry smoke arm 2: study attached {} samples; wrote telemetry.json and \
         telemetry.prom",
        snapshot.samples.len()
    );
    Ok(())
}
