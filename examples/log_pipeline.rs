//! End-to-end log pipeline: generate a synthetic failure log, serialise it
//! to the text format, parse it back, estimate model parameters from it
//! (survival analysis, outage availability, job statistics), and feed those
//! estimates into the cluster model — the full
//! *log → filter → estimate → model → prediction* chain the paper follows.
//!
//! Run with `cargo run --release --example log_pipeline`.

use petascale_cfs::faultlog::parser;
use petascale_cfs::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate the calibrated synthetic ABE log (substitute for the real
    //    NCSA logs) and round-trip it through the text format.
    let config = LogGenConfig::abe_calibrated();
    let disks = config.disks;
    let log = LogGenerator::new(config).generate(99)?;
    let text = parser::to_text(&log);
    println!("Generated {} events ({} bytes of log text)", log.len(), text.len());
    let log = parser::from_text(&text)?;

    // 2. Analyse the log the way Section 3.3 does.
    let outages = OutageAnalysis::from_log(&log)?;
    let jobs = JobAnalysis::from_log(&log)?;
    let disks_analysis = DiskReplacementAnalysis::from_log(&log, disks)?;
    let weibull = disks_analysis.weibull_fit(&log)?;
    println!("SAN availability from the log:      {:.4}", outages.availability());
    println!("Transient:other job failure ratio:  {:.1}", jobs.transient_to_other_ratio());
    println!("Disk Weibull shape estimate:        {:.3}", weibull.shape);
    println!("Disk replacements per week:         {:.2}", disks_analysis.mean_per_week());

    // 3. Feed the estimates into the model parameters and simulate the ABE
    //    cluster with them.
    let mut abe = ClusterConfig::abe();
    abe.params.disk_weibull_shape = weibull.shape.clamp(0.6, 1.0);
    abe.params.job_rate_per_hour = jobs.jobs_per_hour().clamp(12.0, 15.0);
    abe.params.validate()?;

    let predicted = evaluate(
        &abe,
        &RunSpec::new().with_horizon_hours(8760.0).with_replications(24).with_base_seed(17),
    )?;
    println!();
    println!("Model prediction with log-estimated parameters:");
    println!("  CFS availability: {}", predicted.cfs_availability);
    println!("  Measured (log):   {:.4}", outages.availability());
    println!(
        "  Difference:       {:+.4}",
        predicted.cfs_availability.point - outages.availability()
    );
    Ok(())
}
