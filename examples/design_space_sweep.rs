//! Cross-workload design-space sweeps: the two non-paper workload families
//! that ride the generic `DesignSpace`/`SweepScenario` driver.
//!
//! * **Replication vs RAID** — at equal usable capacity and identical disk
//!   hardware, compare `n+k` RAID reconstruction against `r`-way object
//!   replication with background re-replication (the GFS/HDFS/MinIO
//!   design), across two disk-quality points.
//! * **Beowulf performability** — the Kirsal & Ever question: what
//!   fraction of a head-plus-workers cluster's nominal capacity is
//!   actually delivered, as the worker count and the repair-crew count
//!   scale.
//!
//! Both run as ordinary scenarios of one `Study` under a single adaptive
//! (precision-targeted) `RunSpec`, and render through the unified report
//! sink. Run with `cargo run --release --example design_space_sweep`.

use petascale_cfs::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One simulated year per replication; every sweep point runs its own
    // adaptive stopping loop targeting ±10 % relative CI half-width within
    // 8..64 replications. Each point draws from a well-separated seed
    // stream, so the whole report is reproducible bit for bit at any
    // worker count.
    let spec = RunSpec::new()
        .with_horizon_hours(8760.0)
        .with_base_seed(2008)
        .with_precision_target(0.10, 8, 64);

    let report = Study::new()
        .with(ReplicationVsRaid::default())
        .with(BeowulfPerformabilitySweep::default())
        .run(&spec)?;

    println!("{}", report.to_text());

    // The machine-readable companion: every sweep point's objective plus
    // the winner metrics, one tidy CSV.
    println!("{}", report.to_csv());
    Ok(())
}
