//! `petascale-cfs` — umbrella crate for the dependability analysis of
//! petascale cluster file systems.
//!
//! This crate re-exports the workspace's five libraries under one roof so
//! downstream users (and the bundled examples and integration tests) need a
//! single dependency:
//!
//! * [`probdist`] — lifetime distributions, statistics, and survival
//!   analysis.
//! * [`sanet`] — the stochastic activity network formalism and
//!   discrete-event simulation engine (a Möbius work-alike).
//! * [`faultlog`] — synthetic failure-log generation, parsing, filtering,
//!   and analysis calibrated to the published ABE statistics.
//! * [`raidsim`] — RAID tier / controller / DDN storage reliability models.
//! * [`cfs_model`] — the composed ABE cluster-file-system dependability
//!   model, its reward measures, and the `RunSpec`/`Scenario`/`Study` API
//!   that regenerates every table and figure of the paper.
//!
//! # Quickstart
//!
//! Describe *how* to run once with a [`cfs_model::RunSpec`], then evaluate
//! anything — a single configuration, or every paper artefact — through the
//! [`cfs_model::Study`] entry point:
//!
//! ```no_run
//! use petascale_cfs::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // One simulated year, 32 replications, fanned across 4 worker threads.
//! // Replication i always draws from the stream derived from (seed, i), so
//! // serial and parallel runs produce bit-identical statistics.
//! let spec = RunSpec::new()
//!     .with_horizon_hours(8760.0)
//!     .with_replications(32)
//!     .with_base_seed(42)
//!     .with_workers(4);
//!
//! // Evaluate the ABE baseline directly…
//! let result = evaluate(&ClusterConfig::abe(), &spec)?;
//! println!("CFS availability: {}", result.cfs_availability);
//!
//! // …compare design points by running them as one study…
//! let report = Study::new()
//!     .with(ClusterConfig::abe())
//!     .with(ClusterConfig::petascale())
//!     .with(ClusterConfig::petascale().with_spare_oss())
//!     .run(&spec)?;
//! println!("{}", report.to_text());
//!
//! // …or regenerate every paper artefact and export it as JSON/CSV.
//! let report = Study::paper_artefacts().run(&spec)?;
//! println!("{}", report.render(ReportFormat::Json));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cfs_model;
pub use faultlog;
pub use probdist;
pub use raidsim;
pub use sanet;

/// The most commonly used items, importable with
/// `use petascale_cfs::prelude::*`.
pub mod prelude {
    pub use cfs_model::analysis::evaluate;
    pub use cfs_model::config::ClusterConfig;
    pub use cfs_model::experiments;
    pub use cfs_model::scenario::{Metric, Scenario, ScenarioOutput};
    pub use cfs_model::sweep::{DesignPoint, DesignSpace, Objective, PointOutcome, SweepScenario};
    pub use cfs_model::workloads::{
        BeowulfPerformabilitySweep, RedundancyScheme, ReplicationVsRaid, UltraReliableSweep,
    };
    pub use cfs_model::{
        CfsError, CheckpointPolicy, FailurePolicy, ModelParameters, PrecisionTarget,
        RareEventPolicy, Report, ReportFormat, RunSpec, ScenarioFailure, Study, TelemetryConfig,
        TelemetrySnapshot,
    };
    pub use faultlog::analysis::{
        DiskReplacementAnalysis, JobAnalysis, MountFailureAnalysis, OutageAnalysis,
    };
    pub use faultlog::generator::{LogGenConfig, LogGenerator};
    pub use probdist::rare::{naive_replications_for, RareEventEstimate};
    pub use probdist::stats::{StoppingRule, WeightedRunning};
    pub use probdist::{Distribution, Exponential, SimRng, Weibull};
    pub use raidsim::{
        DiskModel, RaidGeometry, ReplicationConfig, ReplicationSimulator, StorageConfig,
        StorageSimulator,
    };
    pub use sanet::beowulf::BeowulfConfig;
    pub use sanet::rare::{BiasedExperiment, FailureBias};
    pub use sanet::{Experiment, ModelBuilder};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_entry_points() {
        use crate::prelude::*;
        let abe = ClusterConfig::abe();
        assert_eq!(abe.compute_nodes, 1200);
        let storage = StorageConfig::abe_scratch();
        assert_eq!(storage.total_disks(), 480);
        let _params = ModelParameters::abe();
        let spec = RunSpec::new().with_replications(4);
        assert!(spec.validate().is_ok());
        assert_eq!(Study::paper_artefacts().len(), 12);
    }
}
