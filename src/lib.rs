//! `petascale-cfs` — umbrella crate for the dependability analysis of
//! petascale cluster file systems.
//!
//! This crate re-exports the workspace's five libraries under one roof so
//! downstream users (and the bundled examples and integration tests) need a
//! single dependency:
//!
//! * [`probdist`] — lifetime distributions, statistics, and survival
//!   analysis.
//! * [`sanet`] — the stochastic activity network formalism and
//!   discrete-event simulation engine (a Möbius work-alike).
//! * [`faultlog`] — synthetic failure-log generation, parsing, filtering,
//!   and analysis calibrated to the published ABE statistics.
//! * [`raidsim`] — RAID tier / controller / DDN storage reliability models.
//! * [`cfs_model`] — the composed ABE cluster-file-system dependability
//!   model, its reward measures, and the drivers that regenerate every
//!   table and figure of the paper.
//!
//! # Quickstart
//!
//! ```no_run
//! use petascale_cfs::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Evaluate the ABE baseline for one simulated year, 32 replications.
//! let abe = ClusterConfig::abe();
//! let result = evaluate_cluster(&abe, 8760.0, 32, 42)?;
//! println!("CFS availability: {}", result.cfs_availability);
//!
//! // Scale to the petaflop-petabyte design point and compare.
//! let peta = ClusterConfig::petascale();
//! let result = evaluate_cluster(&peta, 8760.0, 32, 42)?;
//! println!("petascale CFS availability: {}", result.cfs_availability);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cfs_model;
pub use faultlog;
pub use probdist;
pub use raidsim;
pub use sanet;

/// The most commonly used items, importable with
/// `use petascale_cfs::prelude::*`.
pub mod prelude {
    pub use cfs_model::analysis::evaluate_cluster;
    pub use cfs_model::config::ClusterConfig;
    pub use cfs_model::experiments;
    pub use cfs_model::{CfsError, ModelParameters};
    pub use faultlog::analysis::{
        DiskReplacementAnalysis, JobAnalysis, MountFailureAnalysis, OutageAnalysis,
    };
    pub use faultlog::generator::{LogGenConfig, LogGenerator};
    pub use probdist::{Distribution, Exponential, SimRng, Weibull};
    pub use raidsim::{DiskModel, RaidGeometry, StorageConfig, StorageSimulator};
    pub use sanet::{Experiment, ModelBuilder};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_entry_points() {
        use crate::prelude::*;
        let abe = ClusterConfig::abe();
        assert_eq!(abe.compute_nodes, 1200);
        let storage = StorageConfig::abe_scratch();
        assert_eq!(storage.total_disks(), 480);
        let _params = ModelParameters::abe();
    }
}
