//! Prints the reproductions of Figures 2–4 and the ablation studies.
//!
//! Usage: `cargo run --release -p cfs-bench --bin abe-figures [fig2|fig3|fig4|ablations|all]`
//!
//! Replication counts and horizons honour the `CFS_BENCH_REPLICATIONS` and
//! `CFS_BENCH_HORIZON_HOURS` environment variables.

use cfs_bench::{horizon_hours, replications, run_and_print, DEFAULT_SEED};
use cfs_model::experiments::{
    ablation_correlation, ablation_raid_parity, ablation_repair_time, ablation_spare_oss,
    figure2_storage_availability, figure3_disk_replacements, figure4_cfs_availability,
};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let reps = replications();
    let horizon = horizon_hours();
    let seed = DEFAULT_SEED;

    if which == "fig2" || which == "all" {
        run_and_print(
            "Figure 2 - storage availability vs scale",
            || figure2_storage_availability(&[], horizon, reps, seed),
            |r| r.to_table().render(),
        );
    }
    if which == "fig3" || which == "all" {
        run_and_print(
            "Figure 3 - disk replacements per week",
            || figure3_disk_replacements(&[], horizon, reps, seed),
            |r| r.to_table().render(),
        );
    }
    if which == "fig4" || which == "all" {
        run_and_print(
            "Figure 4 - CFS availability and cluster utility vs scale",
            || figure4_cfs_availability(&[], horizon, reps, seed),
            |r| r.to_table().render(),
        );
    }
    if which == "ablations" || which == "all" {
        run_and_print(
            "Ablation - RAID parity",
            || ablation_raid_parity(horizon, reps, seed),
            |r| r.to_table().render(),
        );
        run_and_print(
            "Ablation - disk replacement time",
            || ablation_repair_time(horizon, reps, seed),
            |r| r.to_table().render(),
        );
        run_and_print(
            "Ablation - spare OSS",
            || ablation_spare_oss(horizon, reps, seed),
            |r| r.to_table().render(),
        );
        run_and_print(
            "Ablation - correlated failures",
            || ablation_correlation(horizon, reps, seed),
            |r| r.to_table().render(),
        );
    }
}
