//! Prints the reproductions of Figures 2–4 and the ablation studies,
//! through the unified `Study` API.
//!
//! Usage:
//! `cargo run --release -p cfs-bench --bin abe-figures [fig2|fig3|fig4|ablations|all] [text|csv|json]`
//!
//! Replication counts, horizons, and worker-thread counts honour the
//! `CFS_BENCH_REPLICATIONS`, `CFS_BENCH_HORIZON_HOURS`, and
//! `CFS_BENCH_WORKERS` environment variables.

use cfs_bench::{run_and_print, study_spec};
use cfs_model::scenario::{
    Figure2StorageAvailability, Figure3DiskReplacements, Figure4CfsAvailability,
};
use cfs_model::{ReportFormat, Study};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let format = std::env::args().nth(2).map_or(ReportFormat::Text, |name| {
        ReportFormat::parse(&name).expect("format must be text, csv, or json")
    });
    let spec = study_spec();

    let study = match which.as_str() {
        "fig2" => Study::new().with(Figure2StorageAvailability::default()),
        "fig3" => Study::new().with(Figure3DiskReplacements::default()),
        "fig4" => Study::new().with(Figure4CfsAvailability::default()),
        "ablations" => Study::ablations(),
        "all" => Study::figures().and(Study::ablations()),
        other => panic!("unknown selection '{other}': use fig2, fig3, fig4, ablations, or all"),
    };

    run_and_print(
        &format!("Figures and ablations ({which})"),
        || study.run(&spec),
        |r| r.render(format),
    );
}
