//! CI bench-regression guard.
//!
//! Usage: `bench_guard <baseline BENCH.json> <fresh BENCH.json>`
//!
//! Compares a freshly generated `BENCH.json` against the committed baseline
//! and exits non-zero if any guarded throughput metric regressed by more
//! than the tolerance (default 25 %). Only *horizon-independent* metrics
//! are guarded, so CI's shrunken smoke parameters (tiny replication counts
//! and horizons) still produce comparable numbers:
//!
//! * simulation-kernel rows (`san_*` with an `events/s` unit) by
//!   `events_per_sec` — per-event cost does not depend on how many events a
//!   smoke run processes;
//! * the pool row (`study_global_work_stealing_pool`) by `speedup` — a
//!   dimensionless serial-vs-pooled ratio.
//!
//! Wall-clock rows (`ns_per_iter` on horizon-scaled loops) and the
//! million-replication row (whose replication count the smoke run shrinks)
//! are deliberately not guarded.
//!
//! Records are matched by `(name, workers)`; rows present on only one side
//! are reported but do not fail the guard, so adding or retiring benches
//! does not require touching the guard.
//!
//! Knobs:
//!
//! * `CFS_BENCH_GUARD_SKIP=1` — skip the guard entirely (exit 0), the
//!   documented escape hatch for machines with known-noisy timing.
//! * `CFS_BENCH_GUARD_TOLERANCE=<fraction>` — override the allowed relative
//!   regression (default `0.25`).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::process::ExitCode;

/// A minimal JSON value — just enough for the flat `BENCH.json` schema.
/// The vendored `serde` shim only serialises, so parsing is hand-rolled.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Recursive-descent JSON parser over the raw bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn error(&self, message: &str) -> String {
        format!("{message} at byte {}", self.pos)
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.error("unexpected end of input"))? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Json::String(self.parse_string()?)),
            b't' => self.parse_literal("true", Json::Bool(true)),
            b'f' => self.parse_literal("false", Json::Bool(false)),
            b'n' => self.parse_literal("null", Json::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{literal}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid utf-8 in number"))?;
        text.parse::<f64>().map(Json::Number).map_err(|_| self.error("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(byte) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let len = match byte {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.error("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing garbage"));
    }
    Ok(value)
}

/// The guarded metric of one record, if the record is guarded at all.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Metric {
    /// Higher-is-better event throughput.
    EventsPerSec(f64),
    /// Higher-is-better dimensionless speedup.
    Speedup(f64),
}

impl Metric {
    fn value(self) -> f64 {
        match self {
            Metric::EventsPerSec(v) | Metric::Speedup(v) => v,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Metric::EventsPerSec(_) => "events/s",
            Metric::Speedup(_) => "speedup",
        }
    }
}

/// Extracts `(name, workers) -> guarded metric` from a parsed BENCH.json.
fn guarded_metrics(doc: &Json) -> Result<BTreeMap<(String, i64), Metric>, String> {
    let Json::Array(records) = doc else {
        return Err("BENCH.json root must be an array".to_string());
    };
    let mut metrics = BTreeMap::new();
    for record in records {
        let Some(name) = record.get("name").and_then(Json::as_str) else {
            return Err("record without a string 'name'".to_string());
        };
        let workers = record.get("workers").and_then(Json::as_f64).map_or(-1, |w| w as i64);
        let unit = record.get("unit").and_then(Json::as_str).unwrap_or("");
        let metric = if name == "study_global_work_stealing_pool" {
            record.get("speedup").and_then(Json::as_f64).map(Metric::Speedup)
        } else if name.starts_with("san_") && unit == "events/s" {
            record.get("events_per_sec").and_then(Json::as_f64).map(Metric::EventsPerSec)
        } else {
            None
        };
        if let Some(metric) = metric {
            metrics.insert((name.to_string(), workers), metric);
        }
    }
    Ok(metrics)
}

fn tolerance() -> f64 {
    std::env::var("CFS_BENCH_GUARD_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t: &f64| t > 0.0 && t < 1.0)
        .unwrap_or(0.25)
}

fn run(baseline_path: &str, fresh_path: &str) -> Result<bool, String> {
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let baseline = guarded_metrics(&parse_json(&read(baseline_path)?)?)?;
    let fresh = guarded_metrics(&parse_json(&read(fresh_path)?)?)?;
    let tolerance = tolerance();

    let mut ok = true;
    for ((name, workers), base) in &baseline {
        let key_label = if *workers >= 0 { format!("{name} [{workers}w]") } else { name.clone() };
        let Some(new) = fresh.get(&(name.clone(), *workers)) else {
            println!("guard: {key_label}: missing from fresh run (skipped)");
            continue;
        };
        let floor = base.value() * (1.0 - tolerance);
        if new.value() < floor {
            println!(
                "guard: FAIL {key_label}: {} fell {:.1}% ({:.4} -> {:.4}, tolerance {:.0}%)",
                new.label(),
                (1.0 - new.value() / base.value()) * 100.0,
                base.value(),
                new.value(),
                tolerance * 100.0
            );
            ok = false;
        } else {
            println!(
                "guard: ok   {key_label}: {} {:.4} vs baseline {:.4}",
                new.label(),
                new.value(),
                base.value()
            );
        }
    }
    for key in fresh.keys() {
        if !baseline.contains_key(key) {
            println!("guard: new bench {} [{}w] (no baseline yet)", key.0, key.1);
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    if std::env::var("CFS_BENCH_GUARD_SKIP").is_ok_and(|v| v == "1") {
        println!("guard: skipped (CFS_BENCH_GUARD_SKIP=1)");
        return ExitCode::SUCCESS;
    }
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline, fresh] = &args[..] else {
        eprintln!("usage: bench_guard <baseline BENCH.json> <fresh BENCH.json>");
        return ExitCode::from(2);
    };
    match run(baseline, fresh) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!(
                "bench guard failed: a guarded metric regressed more than {:.0}% \
                 (set CFS_BENCH_GUARD_SKIP=1 to bypass on known-noisy machines)",
                tolerance() * 100.0
            );
            ExitCode::FAILURE
        }
        Err(error) => {
            eprintln!("bench guard error: {error}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_schema() {
        let doc = parse_json(
            r#"[
                {"name": "san_abe_model_calendar", "unit": "events/s", "workers": null,
                 "ns_per_iter": 100.5, "events_per_sec": 6.5e6, "speedup": 1.8,
                 "replications_to_target": null},
                {"name": "study_global_work_stealing_pool", "unit": "ns/iter", "workers": 4,
                 "ns_per_iter": 7e8, "events_per_sec": null, "speedup": 1.4,
                 "replications_to_target": null}
            ]"#,
        )
        .unwrap();
        let metrics = guarded_metrics(&doc).unwrap();
        assert_eq!(
            metrics.get(&("san_abe_model_calendar".to_string(), -1)),
            Some(&Metric::EventsPerSec(6.5e6))
        );
        assert_eq!(
            metrics.get(&("study_global_work_stealing_pool".to_string(), 4)),
            Some(&Metric::Speedup(1.4))
        );
    }

    #[test]
    fn parses_strings_with_escapes() {
        let doc = parse_json(r#"{"a": "x\n\"y\" A ü"}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_str), Some("x\n\"y\" A ü"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("[] trailing").is_err());
        assert!(parse_json("nulL").is_err());
    }

    #[test]
    fn unguarded_rows_are_ignored() {
        let doc = parse_json(
            r#"[
                {"name": "weibull_sample", "unit": "ns/iter", "workers": null,
                 "ns_per_iter": 27.0, "events_per_sec": null, "speedup": null,
                 "replications_to_target": null},
                {"name": "study_million_replications", "unit": "replications/s",
                 "workers": 8, "ns_per_iter": 50.0, "events_per_sec": 2e7,
                 "speedup": null, "replications_to_target": null},
                {"name": "sweep_replication_vs_raid", "unit": "points/s", "workers": null,
                 "ns_per_iter": 1e9, "events_per_sec": 4.0, "speedup": null,
                 "replications_to_target": null}
            ]"#,
        )
        .unwrap();
        assert!(guarded_metrics(&doc).unwrap().is_empty());
    }
}
