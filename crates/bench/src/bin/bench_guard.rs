//! CI bench-regression guard.
//!
//! Usage: `bench_guard <baseline BENCH.json> <fresh BENCH.json>`
//!
//! Compares a freshly generated `BENCH.json` against the committed baseline
//! and exits non-zero if any guarded throughput metric regressed by more
//! than the tolerance (default 25 %). Only *horizon-independent* metrics
//! are guarded, so CI's shrunken smoke parameters (tiny replication counts
//! and horizons) still produce comparable numbers:
//!
//! * simulation-kernel rows (`san_*` with an `events/s` unit) by
//!   `events_per_sec` — per-event cost does not depend on how many events a
//!   smoke run processes;
//! * the pool row (`study_global_work_stealing_pool`) by `speedup` — a
//!   dimensionless serial-vs-pooled ratio;
//! * the telemetry overhead row (`telemetry_overhead_pct`, unit
//!   `"percent"`) absolutely: the fresh overhead may not exceed the
//!   committed baseline by more than 2 percentage points.
//!
//! Wall-clock rows (`ns_per_iter` on horizon-scaled loops) and the
//! million-replication row (whose replication count the smoke run shrinks)
//! are deliberately not guarded.
//!
//! Records are matched by `(name, workers)`; rows present on only one side
//! are reported but do not fail the guard, so adding or retiring benches
//! does not require touching the guard.
//!
//! Every failure mode — a missing or truncated `BENCH.fresh.json`, a
//! malformed document, a record without the expected fields — is a typed
//! [`GuardError`] with the offending path, never a panic, so a broken
//! bench run produces an actionable CI message instead of a backtrace.
//!
//! Knobs:
//!
//! * `CFS_BENCH_GUARD_SKIP=1` — skip the guard entirely (exit 0), the
//!   documented escape hatch for machines with known-noisy timing.
//! * `CFS_BENCH_GUARD_TOLERANCE=<fraction>` — override the allowed relative
//!   regression (default `0.25`).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::process::ExitCode;

use serde::{json, Value};

/// Everything that can go wrong before the guard has two comparable metric
/// sets: each variant names the offending file so CI output points straight
/// at the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
enum GuardError {
    /// The file could not be read (missing `BENCH.fresh.json` after a bench
    /// run that died, unreadable baseline, …).
    Io {
        /// Path that failed to read.
        path: String,
        /// The underlying I/O error as text.
        reason: String,
    },
    /// The file exists but is not valid JSON (typically truncated by a
    /// killed bench run).
    Parse {
        /// Path of the malformed document.
        path: String,
        /// Byte offset the parser stopped at.
        offset: usize,
        /// What the parser expected.
        message: String,
    },
    /// The document is valid JSON but not the BENCH.json shape.
    Schema {
        /// Path of the off-schema document.
        path: String,
        /// Which expectation the document broke.
        reason: String,
    },
}

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardError::Io { path, reason } => write!(f, "cannot read {path}: {reason}"),
            GuardError::Parse { path, offset, message } => write!(
                f,
                "{path} is not valid JSON (byte {offset}: {message}) — \
                 usually a bench run that died mid-write"
            ),
            GuardError::Schema { path, reason } => {
                write!(f, "{path} is not a BENCH.json document: {reason}")
            }
        }
    }
}

impl Error for GuardError {}

/// The guarded metric of one record, if the record is guarded at all.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Metric {
    /// Higher-is-better event throughput.
    EventsPerSec(f64),
    /// Higher-is-better dimensionless speedup.
    Speedup(f64),
    /// Lower-is-better overhead in percentage points (the telemetry row):
    /// gated absolutely, not relatively — the guard fails when the fresh
    /// overhead exceeds the baseline by more than
    /// [`OVERHEAD_HEADROOM_POINTS`].
    OverheadPct(f64),
}

/// Absolute headroom, in percentage points, allowed on [`Metric::OverheadPct`]
/// rows before the guard fails.
const OVERHEAD_HEADROOM_POINTS: f64 = 2.0;

impl Metric {
    fn value(self) -> f64 {
        match self {
            Metric::EventsPerSec(v) | Metric::Speedup(v) | Metric::OverheadPct(v) => v,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Metric::EventsPerSec(_) => "events/s",
            Metric::Speedup(_) => "speedup",
            Metric::OverheadPct(_) => "overhead %",
        }
    }

    /// Whether `fresh` regressed against `self`: a relative throughput /
    /// speedup drop beyond `tolerance`, or an absolute overhead growth
    /// beyond the headroom.
    fn regressed_by(self, fresh: Metric, tolerance: f64) -> bool {
        match (self, fresh) {
            (Metric::OverheadPct(base), Metric::OverheadPct(new)) => {
                new > base + OVERHEAD_HEADROOM_POINTS
            }
            _ => fresh.value() < self.value() * (1.0 - tolerance),
        }
    }
}

/// Reads and parses one BENCH.json, wrapping each failure mode in its
/// typed error.
fn load_document(path: &str) -> Result<Value, GuardError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| GuardError::Io { path: path.to_string(), reason: e.to_string() })?;
    json::parse(&text).map_err(|e| GuardError::Parse {
        path: path.to_string(),
        offset: e.offset,
        message: e.message,
    })
}

/// Extracts `(name, workers) -> guarded metric` from a parsed BENCH.json.
fn guarded_metrics(path: &str, doc: &Value) -> Result<BTreeMap<(String, i64), Metric>, GuardError> {
    let schema_error =
        |reason: &str| GuardError::Schema { path: path.to_string(), reason: reason.to_string() };
    let records = doc.as_array().ok_or_else(|| schema_error("root must be an array"))?;
    let mut metrics = BTreeMap::new();
    for record in records {
        let Some(name) = record.get("name").and_then(Value::as_str) else {
            return Err(schema_error("record without a string 'name'"));
        };
        let workers = record.get("workers").and_then(Value::as_f64).map_or(-1, |w| w as i64);
        let unit = record.get("unit").and_then(Value::as_str).unwrap_or("");
        let metric = if name == "study_global_work_stealing_pool" {
            record.get("speedup").and_then(Value::as_f64).map(Metric::Speedup)
        } else if (name.starts_with("san_") && unit == "events/s") || unit == "states/s" {
            // SAN engine throughput, plus the reachability explorer
            // (states interned per second; the throughput rides in the
            // same `events_per_sec` slot).
            record.get("events_per_sec").and_then(Value::as_f64).map(Metric::EventsPerSec)
        } else if unit == "percent" {
            // The telemetry overhead row: percentage points in the
            // `events_per_sec` slot, gated absolutely (+2 points).
            record.get("events_per_sec").and_then(Value::as_f64).map(Metric::OverheadPct)
        } else {
            None
        };
        if let Some(metric) = metric {
            metrics.insert((name.to_string(), workers), metric);
        }
    }
    Ok(metrics)
}

fn tolerance() -> f64 {
    std::env::var("CFS_BENCH_GUARD_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t: &f64| t > 0.0 && t < 1.0)
        .unwrap_or(0.25)
}

fn run(baseline_path: &str, fresh_path: &str) -> Result<bool, GuardError> {
    let baseline = guarded_metrics(baseline_path, &load_document(baseline_path)?)?;
    let fresh = guarded_metrics(fresh_path, &load_document(fresh_path)?)?;
    let tolerance = tolerance();

    let mut ok = true;
    for ((name, workers), base) in &baseline {
        let key_label = if *workers >= 0 { format!("{name} [{workers}w]") } else { name.clone() };
        let Some(new) = fresh.get(&(name.clone(), *workers)) else {
            println!("guard: {key_label}: missing from fresh run (skipped)");
            continue;
        };
        if base.regressed_by(*new, tolerance) {
            println!(
                "guard: FAIL {key_label}: {} regressed ({:.4} -> {:.4}, tolerance {})",
                new.label(),
                base.value(),
                new.value(),
                match base {
                    Metric::OverheadPct(_) => format!("+{OVERHEAD_HEADROOM_POINTS:.0} points"),
                    _ => format!("{:.0}%", tolerance * 100.0),
                }
            );
            ok = false;
        } else {
            println!(
                "guard: ok   {key_label}: {} {:.4} vs baseline {:.4}",
                new.label(),
                new.value(),
                base.value()
            );
        }
    }
    for key in fresh.keys() {
        if !baseline.contains_key(key) {
            println!("guard: new bench {} [{}w] (no baseline yet)", key.0, key.1);
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    if std::env::var("CFS_BENCH_GUARD_SKIP").is_ok_and(|v| v == "1") {
        println!("guard: skipped (CFS_BENCH_GUARD_SKIP=1)");
        return ExitCode::SUCCESS;
    }
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline, fresh] = &args[..] else {
        eprintln!("usage: bench_guard <baseline BENCH.json> <fresh BENCH.json>");
        return ExitCode::from(2);
    };
    match run(baseline, fresh) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!(
                "bench guard failed: a guarded metric regressed more than {:.0}% \
                 (set CFS_BENCH_GUARD_SKIP=1 to bypass on known-noisy machines)",
                tolerance() * 100.0
            );
            ExitCode::FAILURE
        }
        Err(error) => {
            eprintln!("bench guard error: {error}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_schema() {
        let doc = json::parse(
            r#"[
                {"name": "san_abe_model_calendar", "unit": "events/s", "workers": null,
                 "ns_per_iter": 100.5, "events_per_sec": 6.5e6, "speedup": 1.8,
                 "replications_to_target": null},
                {"name": "study_global_work_stealing_pool", "unit": "ns/iter", "workers": 4,
                 "ns_per_iter": 7e8, "events_per_sec": null, "speedup": 1.4,
                 "replications_to_target": null},
                {"name": "reach_states_per_sec", "unit": "states/s", "workers": null,
                 "ns_per_iter": 5e7, "events_per_sec": 4.0e4, "speedup": null,
                 "replications_to_target": null}
            ]"#,
        )
        .unwrap();
        let metrics = guarded_metrics("test.json", &doc).unwrap();
        assert_eq!(
            metrics.get(&("san_abe_model_calendar".to_string(), -1)),
            Some(&Metric::EventsPerSec(6.5e6))
        );
        assert_eq!(
            metrics.get(&("study_global_work_stealing_pool".to_string(), 4)),
            Some(&Metric::Speedup(1.4))
        );
        assert_eq!(
            metrics.get(&("reach_states_per_sec".to_string(), -1)),
            Some(&Metric::EventsPerSec(4.0e4))
        );
    }

    #[test]
    fn overhead_rows_are_guarded_absolutely() {
        let doc = json::parse(
            r#"[
                {"name": "telemetry_overhead_pct", "unit": "percent", "workers": null,
                 "ns_per_iter": 1e6, "events_per_sec": 0.8, "speedup": null,
                 "replications_to_target": null}
            ]"#,
        )
        .unwrap();
        let metrics = guarded_metrics("test.json", &doc).unwrap();
        let base = metrics.get(&("telemetry_overhead_pct".to_string(), -1)).copied().unwrap();
        assert_eq!(base, Metric::OverheadPct(0.8));
        // Inside the 2-point headroom — even with zero relative tolerance.
        assert!(!base.regressed_by(Metric::OverheadPct(2.7), 0.0));
        // Beyond it — regardless of how loose the relative tolerance is.
        assert!(base.regressed_by(Metric::OverheadPct(2.9), 0.9));
        // Improvements (less overhead, even negative) never fail.
        assert!(!base.regressed_by(Metric::OverheadPct(-1.0), 0.0));
    }

    #[test]
    fn unguarded_rows_are_ignored() {
        let doc = json::parse(
            r#"[
                {"name": "weibull_sample", "unit": "ns/iter", "workers": null,
                 "ns_per_iter": 27.0, "events_per_sec": null, "speedup": null,
                 "replications_to_target": null},
                {"name": "study_million_replications", "unit": "replications/s",
                 "workers": 8, "ns_per_iter": 50.0, "events_per_sec": 2e7,
                 "speedup": null, "replications_to_target": null},
                {"name": "sweep_replication_vs_raid", "unit": "points/s", "workers": null,
                 "ns_per_iter": 1e9, "events_per_sec": 4.0, "speedup": null,
                 "replications_to_target": null}
            ]"#,
        )
        .unwrap();
        assert!(guarded_metrics("test.json", &doc).unwrap().is_empty());
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let err = run("/nonexistent/baseline.json", "/nonexistent/fresh.json").unwrap_err();
        match &err {
            GuardError::Io { path, .. } => assert_eq!(path, "/nonexistent/baseline.json"),
            other => panic!("expected Io error, got {other}"),
        }
        assert!(err.to_string().contains("cannot read"), "{err}");
    }

    #[test]
    fn truncated_fresh_file_is_a_typed_parse_error() {
        let dir = std::env::temp_dir();
        let baseline = dir.join(format!("bench-guard-base-{}.json", std::process::id()));
        let fresh = dir.join(format!("bench-guard-fresh-{}.json", std::process::id()));
        std::fs::write(&baseline, "[]").unwrap();
        // A bench run killed mid-write leaves a truncated document.
        std::fs::write(&fresh, r#"[{"name": "san_abe_model_calendar", "unit": "ev"#).unwrap();
        let err = run(baseline.to_str().unwrap(), fresh.to_str().unwrap()).unwrap_err();
        match &err {
            GuardError::Parse { path, .. } => assert_eq!(path, fresh.to_str().unwrap()),
            other => panic!("expected Parse error, got {other}"),
        }
        assert!(err.to_string().contains("not valid JSON"), "{err}");
        std::fs::remove_file(&baseline).unwrap();
        std::fs::remove_file(&fresh).unwrap();
    }

    #[test]
    fn off_schema_documents_are_typed_schema_errors() {
        let doc = json::parse(r#"{"not": "an array"}"#).unwrap();
        let err = guarded_metrics("test.json", &doc).unwrap_err();
        assert!(matches!(err, GuardError::Schema { .. }), "{err}");

        let doc = json::parse(r#"[{"unit": "events/s"}]"#).unwrap();
        let err = guarded_metrics("test.json", &doc).unwrap_err();
        assert!(err.to_string().contains("'name'"), "{err}");
    }
}
