//! Prints the reproductions of Tables 1–5 of the paper from the calibrated
//! synthetic ABE failure log, through the unified `Study` API.
//!
//! Usage: `cargo run -p cfs-bench --bin abe-tables [seed] [text|csv|json]`

use cfs_bench::{run_and_print, study_spec};
use cfs_model::{ReportFormat, Study};

fn main() {
    // Both arguments are optional and distinguishable by shape, so accept
    // them in any order: a number is the seed, a known name is the format.
    let mut spec = study_spec();
    let mut format = ReportFormat::Text;
    for arg in std::env::args().skip(1) {
        if let Ok(seed) = arg.parse::<u64>() {
            spec = spec.with_base_seed(seed);
        } else if let Some(parsed) = ReportFormat::parse(&arg) {
            format = parsed;
        } else {
            panic!("unrecognised argument '{arg}': expected a numeric seed or text|csv|json");
        }
    }

    run_and_print(
        "Tables 1-5 (synthetic ABE failure log)",
        || Study::tables().run(&spec),
        |r| r.render(format),
    );
}
