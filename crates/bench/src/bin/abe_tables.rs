//! Prints the reproductions of Tables 1–5 of the paper from the calibrated
//! synthetic ABE failure log.
//!
//! Usage: `cargo run -p cfs-bench --bin abe-tables [seed]`

use cfs_bench::{run_and_print, DEFAULT_SEED};
use cfs_model::experiments::{
    table1_outages, table2_mount_failures, table3_jobs, table4_disk_failures, table5_parameters,
};
use cfs_model::ModelParameters;

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(DEFAULT_SEED);

    run_and_print("Table 1 - Lustre-FS outages", || table1_outages(seed), |r| r.to_table().render());
    run_and_print("Table 2 - mount failures", || table2_mount_failures(seed), |r| r.to_table().render());
    run_and_print("Table 3 - job statistics", || table3_jobs(seed), |r| r.to_table().render());
    run_and_print("Table 4 - disk failures", || table4_disk_failures(seed), |r| r.to_table().render());
    run_and_print(
        "Table 5 - model parameters",
        || Ok::<_, cfs_model::CfsError>(table5_parameters(&ModelParameters::abe())),
        |t| t.render(),
    );
}
