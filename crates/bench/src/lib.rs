//! Shared helpers for the benchmark harness that regenerates every table and
//! figure of the paper's evaluation.
//!
//! Each bench target (`cargo bench -p cfs-bench --bench <name>`) runs the
//! corresponding [`cfs_model::Scenario`] through the [`cfs_model::Study`]
//! API, prints the same rows/series the paper reports, and prints how long
//! the regeneration took. Replication counts default to values that finish
//! in seconds-to-minutes on a laptop and can be overridden with the
//! `CFS_BENCH_REPLICATIONS`, `CFS_BENCH_HORIZON_HOURS`, and
//! `CFS_BENCH_WORKERS` environment variables for higher-precision runs.

use std::time::Instant;

use cfs_model::RunSpec;

/// Default number of simulation replications per experiment point.
pub const DEFAULT_REPLICATIONS: usize = 16;

/// Default simulation horizon (hours) per replication: one year.
pub const DEFAULT_HORIZON_HOURS: f64 = 8760.0;

/// Default seed used by the harness, so published numbers are reproducible.
pub const DEFAULT_SEED: u64 = 20080625;

/// Replication count, overridable via `CFS_BENCH_REPLICATIONS`.
pub fn replications() -> usize {
    std::env::var("CFS_BENCH_REPLICATIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(DEFAULT_REPLICATIONS)
}

/// Simulation horizon in hours, overridable via `CFS_BENCH_HORIZON_HOURS`.
pub fn horizon_hours() -> f64 {
    std::env::var("CFS_BENCH_HORIZON_HOURS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&h: &f64| h > 0.0)
        .unwrap_or(DEFAULT_HORIZON_HOURS)
}

/// Worker-thread count, overridable via `CFS_BENCH_WORKERS` (`0` = auto).
pub fn workers() -> usize {
    std::env::var("CFS_BENCH_WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// The harness's run spec: the environment-variable overrides above applied
/// on top of the reproducible defaults.
pub fn study_spec() -> RunSpec {
    RunSpec::new()
        .with_horizon_hours(horizon_hours())
        .with_replications(replications())
        .with_base_seed(DEFAULT_SEED)
        .with_workers(workers())
}

/// Runs a closure, printing a banner, its result table, and the elapsed
/// time. Panics (failing the bench run) if the experiment errors, which is
/// the desired behaviour for a regression harness.
pub fn run_and_print<T, E: std::fmt::Display>(
    name: &str,
    run: impl FnOnce() -> Result<T, E>,
    render: impl FnOnce(&T) -> String,
) -> T {
    println!("==== {name} ====");
    let start = Instant::now();
    let result = match run() {
        Ok(r) => r,
        Err(e) => panic!("{name} failed: {e}"),
    };
    let elapsed = start.elapsed();
    println!("{}", render(&result));
    println!("[{name}] regenerated in {:.2} s\n", elapsed.as_secs_f64());
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        assert!(replications() >= 2);
        assert!(horizon_hours() > 0.0);
        let spec = study_spec();
        assert!(spec.validate().is_ok());
        assert_eq!(spec.base_seed(), DEFAULT_SEED);
    }

    #[test]
    fn run_and_print_returns_the_result() {
        let value = run_and_print("test", || Ok::<_, String>(41 + 1), |v| format!("value = {v}"));
        assert_eq!(value, 42);
    }

    #[test]
    #[should_panic(expected = "boom failed")]
    fn run_and_print_panics_on_error() {
        let _ = run_and_print("boom", || Err::<i32, _>("nope".to_string()), |v| v.to_string());
    }
}
