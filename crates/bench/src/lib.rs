//! Shared helpers for the benchmark harness that regenerates every table and
//! figure of the paper's evaluation.
//!
//! Each bench target (`cargo bench -p cfs-bench --bench <name>`) runs the
//! corresponding [`cfs_model::Scenario`] through the [`cfs_model::Study`]
//! API, prints the same rows/series the paper reports, and prints how long
//! the regeneration took. Replication counts default to values that finish
//! in seconds-to-minutes on a laptop and can be overridden with the
//! `CFS_BENCH_REPLICATIONS`, `CFS_BENCH_HORIZON_HOURS`, and
//! `CFS_BENCH_WORKERS` environment variables for higher-precision runs.

#![forbid(unsafe_code)]

use std::time::Instant;

use cfs_model::RunSpec;
use serde::Serialize;

/// One machine-readable microbenchmark result.
///
/// Serialised into `BENCH.json` (one JSON array of these rows) so CI can
/// record the performance trajectory across commits instead of scraping the
/// human-readable text lines.
#[derive(Debug, Clone, Serialize)]
pub struct BenchRecord {
    /// Benchmark name (matches the text output line). Bare — units belong
    /// in [`BenchRecord::unit`], not in the name.
    pub name: String,
    /// Unit of the record's primary metric: `"ns/iter"` for plain timing
    /// rows, or the throughput unit (`"events/s"`, `"points/s"`,
    /// `"replications/s"`, …) when `events_per_sec` carries the headline
    /// number.
    pub unit: String,
    /// Worker-thread count the row was measured with, for parallel benches
    /// that report one row per worker count.
    pub workers: Option<u64>,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Throughput in `unit`s per second, for benches that process events
    /// (or points, or replications — see `unit`).
    pub events_per_sec: Option<f64>,
    /// Speedup against the named baseline bench, for comparison rows. For
    /// the rare-event estimator rows this is the measured
    /// variance-reduction factor — the speedup against naive Monte Carlo.
    pub speedup: Option<f64>,
    /// Replications (or splitting trials) the estimator spent to reach its
    /// precision target, for the rare-event rows.
    pub replications_to_target: Option<f64>,
}

impl BenchRecord {
    /// A plain timing row.
    pub fn timing(name: impl Into<String>, ns_per_iter: f64) -> Self {
        BenchRecord {
            name: name.into(),
            unit: "ns/iter".to_string(),
            workers: None,
            ns_per_iter,
            events_per_sec: None,
            speedup: None,
            replications_to_target: None,
        }
    }

    /// A timing row with an events/sec throughput.
    pub fn with_events(name: impl Into<String>, ns_per_iter: f64, events_per_sec: f64) -> Self {
        BenchRecord {
            name: name.into(),
            unit: "events/s".to_string(),
            workers: None,
            ns_per_iter,
            events_per_sec: Some(events_per_sec),
            speedup: None,
            replications_to_target: None,
        }
    }

    /// Overrides the unit label (e.g. `"points/s"` for sweep rows whose
    /// `events_per_sec` counts design points).
    pub fn with_unit(mut self, unit: impl Into<String>) -> Self {
        self.unit = unit.into();
        self
    }

    /// Attaches the worker-thread count the row was measured with.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers as u64);
        self
    }

    /// Attaches a speedup-vs-baseline annotation.
    pub fn with_speedup(mut self, speedup: f64) -> Self {
        self.speedup = Some(speedup);
        self
    }

    /// Attaches a replications-to-target-precision annotation.
    pub fn with_replications_to_target(mut self, replications: f64) -> Self {
        self.replications_to_target = Some(replications);
        self
    }
}

/// Path the microbench writes its JSON results to: `CFS_BENCH_JSON` if set,
/// else `BENCH.json` at the workspace root.
///
/// Cargo runs bench binaries with the *crate* directory as working
/// directory, which would otherwise bury the artifact under
/// `crates/bench/` — so a **relative** `CFS_BENCH_JSON` is also anchored
/// at the workspace root, matching where `bench_guard` (invoked from the
/// root) looks for it. An absolute override is used verbatim.
pub fn bench_json_path() -> std::path::PathBuf {
    let workspace_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map_or_else(|| std::path::PathBuf::from("."), std::path::Path::to_path_buf);
    if let Some(path) = std::env::var_os("CFS_BENCH_JSON") {
        let path = std::path::PathBuf::from(path);
        return if path.is_absolute() { path } else { workspace_root.join(path) };
    }
    workspace_root.join("BENCH.json")
}

/// Writes the collected records as a JSON array to [`bench_json_path`] and
/// returns the path written.
///
/// # Errors
///
/// Propagates the I/O error if the file cannot be written.
pub fn write_bench_json(records: &[BenchRecord]) -> std::io::Result<std::path::PathBuf> {
    let path = bench_json_path();
    std::fs::write(&path, serde::to_json_pretty(records))?;
    Ok(path)
}

/// Default number of simulation replications per experiment point.
pub const DEFAULT_REPLICATIONS: usize = 16;

/// Default simulation horizon (hours) per replication: one year.
pub const DEFAULT_HORIZON_HOURS: f64 = 8760.0;

/// Default seed used by the harness, so published numbers are reproducible.
pub const DEFAULT_SEED: u64 = 20080625;

/// Replication count, overridable via `CFS_BENCH_REPLICATIONS`.
pub fn replications() -> usize {
    std::env::var("CFS_BENCH_REPLICATIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(DEFAULT_REPLICATIONS)
}

/// Simulation horizon in hours, overridable via `CFS_BENCH_HORIZON_HOURS`.
pub fn horizon_hours() -> f64 {
    std::env::var("CFS_BENCH_HORIZON_HOURS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&h: &f64| h > 0.0)
        .unwrap_or(DEFAULT_HORIZON_HOURS)
}

/// Worker-thread count, overridable via `CFS_BENCH_WORKERS` (`0` = auto).
pub fn workers() -> usize {
    std::env::var("CFS_BENCH_WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// The harness's run spec: the environment-variable overrides above applied
/// on top of the reproducible defaults.
pub fn study_spec() -> RunSpec {
    RunSpec::new()
        .with_horizon_hours(horizon_hours())
        .with_replications(replications())
        .with_base_seed(DEFAULT_SEED)
        .with_workers(workers())
}

/// Runs a closure, printing a banner, its result table, and the elapsed
/// time. Panics (failing the bench run) if the experiment errors, which is
/// the desired behaviour for a regression harness.
pub fn run_and_print<T, E: std::fmt::Display>(
    name: &str,
    run: impl FnOnce() -> Result<T, E>,
    render: impl FnOnce(&T) -> String,
) -> T {
    println!("==== {name} ====");
    let start = Instant::now();
    let result = match run() {
        Ok(r) => r,
        Err(e) => panic!("{name} failed: {e}"),
    };
    let elapsed = start.elapsed();
    println!("{}", render(&result));
    println!("[{name}] regenerated in {:.2} s\n", elapsed.as_secs_f64());
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        assert!(replications() >= 2);
        assert!(horizon_hours() > 0.0);
        let spec = study_spec();
        assert!(spec.validate().is_ok());
        assert_eq!(spec.base_seed(), DEFAULT_SEED);
    }

    #[test]
    fn run_and_print_returns_the_result() {
        let value = run_and_print("test", || Ok::<_, String>(41 + 1), |v| format!("value = {v}"));
        assert_eq!(value, 42);
    }

    #[test]
    #[should_panic(expected = "boom failed")]
    fn run_and_print_panics_on_error() {
        let _ = run_and_print(
            "boom",
            || Err::<i32, _>("nope".to_string()),
            std::string::ToString::to_string,
        );
    }

    #[test]
    fn bench_records_serialise_with_stable_field_names() {
        let records = [
            BenchRecord::timing("plain", 12.5),
            BenchRecord::with_events("engine", 100.0, 2.0e6).with_speedup(3.5),
            BenchRecord::with_events("pool", 50.0, 4.0e6)
                .with_unit("replications/s")
                .with_workers(8),
        ];
        let json = serde::to_json(&records[..]);
        assert_eq!(
            json,
            "[{\"name\":\"plain\",\"unit\":\"ns/iter\",\"workers\":null,\
             \"ns_per_iter\":12.5,\"events_per_sec\":null,\
             \"speedup\":null,\"replications_to_target\":null},\
             {\"name\":\"engine\",\"unit\":\"events/s\",\"workers\":null,\
             \"ns_per_iter\":100,\
             \"events_per_sec\":2000000,\"speedup\":3.5,\
             \"replications_to_target\":null},\
             {\"name\":\"pool\",\"unit\":\"replications/s\",\"workers\":8,\
             \"ns_per_iter\":50,\
             \"events_per_sec\":4000000,\"speedup\":null,\
             \"replications_to_target\":null}]"
        );
    }

    #[test]
    fn bench_json_path_defaults_to_workspace_root() {
        // Without the env override the artifact must land at the workspace
        // root (not inside crates/bench, cargo's bench working directory).
        if std::env::var_os("CFS_BENCH_JSON").is_none() {
            let path = bench_json_path();
            assert!(path.ends_with("BENCH.json"));
            assert!(path.parent().is_some_and(|p| p.join("Cargo.lock").exists()));
        }
    }

    #[test]
    fn relative_env_override_is_anchored_at_the_workspace_root() {
        // A relative CFS_BENCH_JSON must resolve the same way for the
        // microbench (cwd = crates/bench) and bench_guard (cwd = root);
        // anchoring both at the workspace root is what guarantees the
        // guard finds the file the bench just wrote. Exercised through the
        // same resolution logic rather than by mutating the process
        // environment (tests share it).
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap();
        assert!(root.join("Cargo.lock").exists(), "ancestor walk found the workspace root");
        if let Some(path) = std::env::var_os("CFS_BENCH_JSON") {
            let resolved = bench_json_path();
            if std::path::PathBuf::from(&path).is_relative() {
                assert_eq!(resolved, root.join(path));
            }
        }
    }
}
