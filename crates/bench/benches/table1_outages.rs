//! Regenerates Table 1: user-visible Lustre-FS outage notifications and the
//! SAN availability they imply (paper: availability 0.97–0.98).

use cfs_bench::{run_and_print, study_spec};
use cfs_model::scenario::Table1Outages;
use cfs_model::Study;

fn main() {
    let spec = study_spec();
    let report = run_and_print(
        "Table 1 - Lustre-FS outages",
        || Study::new().with(Table1Outages).run(&spec),
        cfs_model::Report::to_text,
    );
    let output = report.output("table1_outages").expect("scenario ran");
    println!(
        "paper: SAN availability 0.97-0.98 | measured: {:.4} over {:.0} outages",
        output.metric("san_availability").expect("availability metric"),
        output.metric("outages").expect("outage count metric"),
    );
}
