//! Regenerates Table 1: user-visible Lustre-FS outage notifications and the
//! SAN availability they imply (paper: availability 0.97–0.98).

use cfs_bench::{run_and_print, DEFAULT_SEED};
use cfs_model::experiments::table1_outages;

fn main() {
    let result = run_and_print("Table 1 - Lustre-FS outages", || table1_outages(DEFAULT_SEED), |r| {
        r.to_table().render()
    });
    println!(
        "paper: SAN availability 0.97-0.98 | measured: {:.4} over {} outages",
        result.availability,
        result.analysis.outages().len()
    );
}
