//! Regenerates Table 3: job execution statistics (paper: 44 085 jobs, 1234
//! transient-network failures, 184 other failures — a ≈5:1 ratio).

use cfs_bench::{run_and_print, study_spec};
use cfs_model::scenario::Table3Jobs;
use cfs_model::Study;

fn main() {
    let spec = study_spec();
    let report = run_and_print(
        "Table 3 - job statistics",
        || Study::new().with(Table3Jobs).run(&spec),
        cfs_model::Report::to_text,
    );
    let output = report.output("table3_jobs").expect("scenario ran");
    println!(
        "paper: transient:other ratio ~6.7 (1234/184) | measured: {:.2}",
        output.metric("transient_to_other_ratio").expect("ratio metric"),
    );
}
