//! Regenerates Table 3: job execution statistics (paper: 44 085 jobs, 1234
//! transient-network failures, 184 other failures — a ≈5:1 ratio).

use cfs_bench::{run_and_print, DEFAULT_SEED};
use cfs_model::experiments::table3_jobs;

fn main() {
    let result =
        run_and_print("Table 3 - job statistics", || table3_jobs(DEFAULT_SEED), |r| r.to_table().render());
    println!(
        "paper: transient:other ratio ~6.7 (1234/184) | measured: {:.2}",
        result.analysis.transient_to_other_ratio()
    );
}
