//! Regenerates Figure 2: availability of the storage hardware versus scale
//! (96 TB → 12 PB) for the paper's (shape, AFR, RAID, replacement-time)
//! tuples. Expected shape: ≈100 % availability at ABE scale for every
//! configuration, degradation at petascale for the pessimistic
//! configurations, and (8+3) strictly better than (8+2).

use cfs_bench::{run_and_print, study_spec};
use cfs_model::scenario::Figure2StorageAvailability;
use cfs_model::Study;

fn main() {
    let spec = study_spec();
    let report = run_and_print(
        "Figure 2 - storage availability vs scale",
        || Study::new().with(Figure2StorageAvailability::default()).run(&spec),
        cfs_model::Report::to_text,
    );
    let output = report.output("figure2_storage_availability").expect("scenario ran");
    for metric in output.metrics.iter().filter(|m| m.name.starts_with("availability")) {
        println!("{:<56} {:.5}", metric.name, metric.value);
    }
}
