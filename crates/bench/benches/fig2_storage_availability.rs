//! Regenerates Figure 2: availability of the storage hardware versus scale
//! (96 TB → 12 PB) for the paper's (shape, AFR, RAID, replacement-time)
//! tuples. Expected shape: ≈100 % availability at ABE scale for every
//! configuration, degradation at petascale for the pessimistic
//! configurations, and (8+3) strictly better than (8+2).

use cfs_bench::{horizon_hours, replications, run_and_print, DEFAULT_SEED};
use cfs_model::experiments::figure2_storage_availability;

fn main() {
    let result = run_and_print(
        "Figure 2 - storage availability vs scale",
        || figure2_storage_availability(&[], horizon_hours(), replications(), DEFAULT_SEED),
        |r| r.to_table().render(),
    );
    for series in &result.series {
        let first = series.points.first().expect("non-empty sweep");
        let last = series.points.last().expect("non-empty sweep");
        println!(
            "{:<22} ABE-scale availability {:.5} -> petascale {:.5}",
            series.label, first.availability.point, last.availability.point
        );
    }
}
