//! Regenerates Table 2: Lustre mount failures reported by compute nodes,
//! aggregated per day (paper: storm days ranging from 2 to 591 nodes).

use cfs_bench::{run_and_print, study_spec};
use cfs_model::scenario::Table2MountFailures;
use cfs_model::Study;

fn main() {
    let spec = study_spec();
    let report = run_and_print(
        "Table 2 - mount failures",
        || Study::new().with(Table2MountFailures).run(&spec),
        cfs_model::Report::to_text,
    );
    let output = report.output("table2_mount_failures").expect("scenario ran");
    println!(
        "paper: 12 storm days, peak 591 nodes | measured: {:.0} storm days, peak {:.0} nodes",
        output.metric("storm_days").expect("storm-day metric"),
        output.metric("peak_day_nodes").expect("peak metric"),
    );
}
