//! Regenerates Table 2: Lustre mount failures reported by compute nodes,
//! aggregated per day (paper: storm days ranging from 2 to 591 nodes).

use cfs_bench::{run_and_print, DEFAULT_SEED};
use cfs_model::experiments::table2_mount_failures;

fn main() {
    let result = run_and_print("Table 2 - mount failures", || table2_mount_failures(DEFAULT_SEED), |r| {
        r.to_table().render()
    });
    println!(
        "paper: 12 storm days, peak 591 nodes | measured: {} storm days, peak {} nodes",
        result.analysis.days().len(),
        result.analysis.peak_day_nodes()
    );
}
