//! Regenerates Table 4: the disk replacement log and its Weibull survival
//! analysis (paper: shape 0.696 ± 0.192, 0–2 replacements per week).

use cfs_bench::{run_and_print, study_spec};
use cfs_model::scenario::Table4DiskWeibull;
use cfs_model::Study;

fn main() {
    let spec = study_spec();
    let report = run_and_print(
        "Table 4 - disk failures",
        || Study::new().with(Table4DiskWeibull).run(&spec),
        cfs_model::Report::to_text,
    );
    let output = report.output("table4_disk_weibull").expect("scenario ran");
    println!(
        "paper: Weibull shape 0.696 (sd 0.192), 0-2 replacements/week | measured: shape {:.3} (sd {:.3}), {:.2}/week",
        output.metric("weibull_shape").expect("shape metric"),
        output.metric("weibull_shape_std_error").expect("std-error metric"),
        output.metric("mean_replacements_per_week").expect("rate metric"),
    );
}
