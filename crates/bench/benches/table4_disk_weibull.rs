//! Regenerates Table 4: the disk replacement log and its Weibull survival
//! analysis (paper: shape 0.696 ± 0.192, 0–2 replacements per week).

use cfs_bench::{run_and_print, DEFAULT_SEED};
use cfs_model::experiments::table4_disk_failures;

fn main() {
    let result = run_and_print("Table 4 - disk failures", || table4_disk_failures(DEFAULT_SEED), |r| {
        r.to_table().render()
    });
    println!(
        "paper: Weibull shape 0.696 (sd 0.192), 0-2 replacements/week | measured: shape {:.3} (sd {:.3}), {:.2}/week",
        result.weibull.shape, result.weibull.shape_std_error, result.mean_per_week
    );
}
