//! Regenerates Table 5: the simulation model parameters, their ranges, and
//! provenance, and validates that the ABE defaults fall inside the ranges.

use cfs_bench::run_and_print;
use cfs_model::experiments::table5_parameters;
use cfs_model::ModelParameters;

fn main() {
    let params = ModelParameters::abe();
    run_and_print(
        "Table 5 - model parameters",
        || params.validate().map(|()| table5_parameters(&params)),
        |t| t.render(),
    );
}
