//! Regenerates Table 5: the simulation model parameters, their ranges, and
//! provenance, and validates that the ABE defaults fall inside the ranges.

use cfs_bench::{run_and_print, study_spec};
use cfs_model::scenario::Table5Parameters;
use cfs_model::{ModelParameters, Study};

fn main() {
    let spec = study_spec();
    let params = ModelParameters::abe();
    params.validate().expect("ABE parameters stay within Table 5 ranges");
    run_and_print(
        "Table 5 - model parameters",
        || Study::new().with(Table5Parameters).run(&spec),
        cfs_model::Report::to_text,
    );
}
