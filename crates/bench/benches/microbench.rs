//! Micro-benchmarks of the simulation substrates — lifetime sampling, the
//! stochastic-activity-network engine, and the storage Monte-Carlo kernel —
//! plus the study scheduler: the global work-stealing pool against the
//! PR-1-style serial-scenario loop it replaced.
//!
//! The harness is self-contained (no external benchmarking crate is
//! available offline): each kernel is warmed up, then timed over enough
//! iterations to smooth scheduler noise, reporting ns/iter.

use std::hint::black_box;
use std::time::Instant;

use cfs_model::analysis::evaluate;
use cfs_model::{ClusterConfig, RunSpec, Scenario, Study};
use probdist::{Distribution, Exponential, SimRng, Weibull};
use raidsim::{StorageConfig, StorageSimulator};
use sanet::reward::RewardSpec;
use sanet::{ModelBuilder, Simulator};

/// Times `f` over `iters` iterations (after `warmup` untimed ones) and
/// prints nanoseconds per iteration.
fn bench<T>(name: &str, warmup: u64, iters: u64, mut f: impl FnMut() -> T) {
    for _ in 0..warmup {
        black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let elapsed = start.elapsed();
    println!(
        "{name:<42} {:>12.1} ns/iter   ({iters} iters)",
        elapsed.as_nanos() as f64 / iters as f64
    );
}

fn bench_distributions() {
    let weibull = Weibull::from_shape_and_mean(0.7, 300_000.0).unwrap();
    let exponential = Exponential::from_mean(300_000.0).unwrap();
    let mut rng = SimRng::seed_from_u64(1);
    bench("weibull_sample", 10_000, 1_000_000, || weibull.sample(&mut rng));
    let mut rng2 = SimRng::seed_from_u64(1);
    bench("exponential_sample", 10_000, 1_000_000, || exponential.sample(&mut rng2));
}

fn bench_san_engine() {
    let mut builder = ModelBuilder::new("unit");
    let up = builder.add_place("up", 1).unwrap();
    let down = builder.add_place("down", 0).unwrap();
    builder
        .timed_activity("fail", Exponential::from_mean(100.0).unwrap())
        .unwrap()
        .input_arc(up, 1)
        .output_arc(down, 1)
        .build()
        .unwrap();
    builder
        .timed_activity("repair", Exponential::from_mean(4.0).unwrap())
        .unwrap()
        .input_arc(down, 1)
        .output_arc(up, 1)
        .build()
        .unwrap();
    let model = builder.build().unwrap();
    let rewards =
        vec![RewardSpec::time_averaged_rate(
            "avail",
            move |m| if m.tokens(up) > 0 { 1.0 } else { 0.0 },
        )];
    let sim = Simulator::new(&model);
    let mut rng = SimRng::seed_from_u64(7);
    bench("san_engine_one_year_repairable_unit", 5, 200, || {
        sim.run(&rewards, 8760.0, 0.0, &mut rng).unwrap()
    });
}

fn bench_storage_kernel() {
    let sim = StorageSimulator::new(StorageConfig::abe_scratch()).unwrap();
    let mut rng = SimRng::seed_from_u64(3);
    bench("storage_monte_carlo_abe_one_year", 5, 200, || sim.run_once(8760.0, &mut rng));
}

/// Four simulation scenarios with fewer replications each than the worker
/// budget — the shape where the PR 1 execution model (scenarios strictly
/// serial, only each scenario's own replications parallel) leaves workers
/// idle, and where the global work-stealing pool overlaps
/// scenario×replication work units from the whole study.
fn bench_study_scheduling() {
    let scenarios: Vec<ClusterConfig> = (0..4)
        .map(|i| {
            let mut config = ClusterConfig::abe();
            config.name = format!("ABE-variant-{i}");
            config
        })
        .collect();
    let workers = match cfs_bench::workers() {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8),
        n => n,
    };
    // Honour the harness env knobs (the CI bench-smoke step shrinks both)
    // while keeping the replications-below-workers shape the comparison
    // needs.
    let spec = RunSpec::new()
        .with_horizon_hours(cfs_bench::horizon_hours())
        .with_replications((workers / 2).max(2).min(cfs_bench::replications()))
        .with_base_seed(20_080_625)
        .with_workers(workers);

    let mut study = Study::new();
    for config in &scenarios {
        study.add(Box::new(config.clone()) as Box<dyn Scenario>);
    }

    // One untimed pass of each variant so neither timed run pays one-time
    // process warm-up (allocator growth, lazy model initialisation).
    for config in &scenarios {
        black_box(evaluate(config, &spec).unwrap());
    }
    black_box(study.run(&spec).unwrap());

    // PR 1 behaviour: evaluate scenarios one after another; each scenario
    // still fans its own replications across the worker budget.
    let start = Instant::now();
    for config in &scenarios {
        black_box(evaluate(config, &spec).unwrap());
    }
    let serial_loop = start.elapsed();

    // The work-stealing engine: every scenario×replication unit of the
    // study on one global pool.
    let start = Instant::now();
    let report = black_box(study.run(&spec).unwrap());
    let pooled = start.elapsed();
    assert_eq!(report.outputs.len(), scenarios.len());

    println!(
        "study_serial_scenario_loop                 {:>12.1} ms   ({} scenarios x {} reps)",
        serial_loop.as_secs_f64() * 1e3,
        scenarios.len(),
        spec.replications()
    );
    println!(
        "study_global_work_stealing_pool            {:>12.1} ms   ({workers} workers)",
        pooled.as_secs_f64() * 1e3
    );
    println!(
        "study_scheduling_speedup                   {:>12.2} x{}",
        serial_loop.as_secs_f64() / pooled.as_secs_f64(),
        if workers == 1 { "   (single-core machine: ~1x expected)" } else { "" }
    );
}

fn main() {
    bench_distributions();
    bench_san_engine();
    bench_storage_kernel();
    bench_study_scheduling();
}
