//! Criterion micro-benchmarks of the simulation substrates: lifetime
//! sampling, the stochastic-activity-network engine, and the storage
//! Monte-Carlo kernel. These track the cost of the inner loops that the
//! table/figure harnesses are built on.

use criterion::{criterion_group, criterion_main, Criterion};

use probdist::{Distribution, Exponential, SimRng, Weibull};
use raidsim::{StorageConfig, StorageSimulator};
use sanet::reward::RewardSpec;
use sanet::{ModelBuilder, Simulator};

fn bench_distributions(c: &mut Criterion) {
    let weibull = Weibull::from_shape_and_mean(0.7, 300_000.0).unwrap();
    let exponential = Exponential::from_mean(300_000.0).unwrap();
    c.bench_function("weibull_sample", |b| {
        let mut rng = SimRng::seed_from_u64(1);
        b.iter(|| weibull.sample(&mut rng))
    });
    c.bench_function("exponential_sample", |b| {
        let mut rng = SimRng::seed_from_u64(1);
        b.iter(|| exponential.sample(&mut rng))
    });
}

fn bench_san_engine(c: &mut Criterion) {
    let mut builder = ModelBuilder::new("unit");
    let up = builder.add_place("up", 1).unwrap();
    let down = builder.add_place("down", 0).unwrap();
    builder
        .timed_activity("fail", Exponential::from_mean(100.0).unwrap())
        .unwrap()
        .input_arc(up, 1)
        .output_arc(down, 1)
        .build()
        .unwrap();
    builder
        .timed_activity("repair", Exponential::from_mean(4.0).unwrap())
        .unwrap()
        .input_arc(down, 1)
        .output_arc(up, 1)
        .build()
        .unwrap();
    let model = builder.build().unwrap();
    let rewards =
        vec![RewardSpec::time_averaged_rate("avail", move |m| if m.tokens(up) > 0 { 1.0 } else { 0.0 })];
    c.bench_function("san_engine_one_year_repairable_unit", |b| {
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(7);
        b.iter(|| sim.run(&rewards, 8760.0, 0.0, &mut rng).unwrap())
    });
}

fn bench_storage_kernel(c: &mut Criterion) {
    let sim = StorageSimulator::new(StorageConfig::abe_scratch()).unwrap();
    c.bench_function("storage_monte_carlo_abe_one_year", |b| {
        let mut rng = SimRng::seed_from_u64(3);
        b.iter(|| sim.run_once(8760.0, &mut rng))
    });
}

criterion_group!(benches, bench_distributions, bench_san_engine, bench_storage_kernel);
criterion_main!(benches);
