//! Micro-benchmarks of the simulation substrates: lifetime sampling, the
//! stochastic-activity-network engine, and the storage Monte-Carlo kernel.
//! These track the cost of the inner loops that the table/figure harnesses
//! are built on.
//!
//! The harness is self-contained (no external benchmarking crate is
//! available offline): each kernel is warmed up, then timed over enough
//! iterations to smooth scheduler noise, reporting ns/iter.

use std::hint::black_box;
use std::time::Instant;

use probdist::{Distribution, Exponential, SimRng, Weibull};
use raidsim::{StorageConfig, StorageSimulator};
use sanet::reward::RewardSpec;
use sanet::{ModelBuilder, Simulator};

/// Times `f` over `iters` iterations (after `warmup` untimed ones) and
/// prints nanoseconds per iteration.
fn bench<T>(name: &str, warmup: u64, iters: u64, mut f: impl FnMut() -> T) {
    for _ in 0..warmup {
        black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let elapsed = start.elapsed();
    println!(
        "{name:<42} {:>12.1} ns/iter   ({iters} iters)",
        elapsed.as_nanos() as f64 / iters as f64
    );
}

fn bench_distributions() {
    let weibull = Weibull::from_shape_and_mean(0.7, 300_000.0).unwrap();
    let exponential = Exponential::from_mean(300_000.0).unwrap();
    let mut rng = SimRng::seed_from_u64(1);
    bench("weibull_sample", 10_000, 1_000_000, || weibull.sample(&mut rng));
    let mut rng2 = SimRng::seed_from_u64(1);
    bench("exponential_sample", 10_000, 1_000_000, || exponential.sample(&mut rng2));
}

fn bench_san_engine() {
    let mut builder = ModelBuilder::new("unit");
    let up = builder.add_place("up", 1).unwrap();
    let down = builder.add_place("down", 0).unwrap();
    builder
        .timed_activity("fail", Exponential::from_mean(100.0).unwrap())
        .unwrap()
        .input_arc(up, 1)
        .output_arc(down, 1)
        .build()
        .unwrap();
    builder
        .timed_activity("repair", Exponential::from_mean(4.0).unwrap())
        .unwrap()
        .input_arc(down, 1)
        .output_arc(up, 1)
        .build()
        .unwrap();
    let model = builder.build().unwrap();
    let rewards =
        vec![RewardSpec::time_averaged_rate(
            "avail",
            move |m| if m.tokens(up) > 0 { 1.0 } else { 0.0 },
        )];
    let sim = Simulator::new(&model);
    let mut rng = SimRng::seed_from_u64(7);
    bench("san_engine_one_year_repairable_unit", 5, 200, || {
        sim.run(&rewards, 8760.0, 0.0, &mut rng).unwrap()
    });
}

fn bench_storage_kernel() {
    let sim = StorageSimulator::new(StorageConfig::abe_scratch()).unwrap();
    let mut rng = SimRng::seed_from_u64(3);
    bench("storage_monte_carlo_abe_one_year", 5, 200, || sim.run_once(8760.0, &mut rng));
}

fn main() {
    bench_distributions();
    bench_san_engine();
    bench_storage_kernel();
}
