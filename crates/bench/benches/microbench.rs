//! Micro-benchmarks of the simulation substrates — lifetime sampling, the
//! stochastic-activity-network engine (event-calendar kernel vs the
//! retained naive reference kernel, on a 2-activity unit and on the full
//! composed ABE / petascale cluster models), the storage Monte-Carlo
//! kernel, and the design-space sweep subsystem (replication-vs-RAID and
//! Beowulf performability, in design points per second) — plus the
//! rare-event estimators (replications-to-±10 % and variance-reduction
//! factors of importance sampling and multilevel splitting on their
//! reference configs) and the study scheduler: the global work-stealing
//! pool against the PR-1-style serial-scenario loop it replaced.
//!
//! The harness is self-contained (no external benchmarking crate is
//! available offline): each kernel is warmed up, then timed over enough
//! iterations to smooth scheduler noise, reporting ns/iter. Alongside the
//! text lines, every result is recorded into `BENCH.json`
//! ([`cfs_bench::write_bench_json`]) — bare name, explicit unit, worker
//! count where relevant, ns/iter, throughput, and speedup-vs-baseline — so
//! CI can archive (and guard, via `bench_guard`) the performance
//! trajectory.

use std::hint::black_box;
use std::time::Instant;

use cfs_bench::BenchRecord;
use cfs_model::analysis::evaluate;
use cfs_model::model::build_cluster_model;
use cfs_model::rewards::standard_rewards;
use cfs_model::workloads::{BeowulfPerformabilitySweep, RedundancyScheme, ReplicationVsRaid};
use cfs_model::{ClusterConfig, RunSpec, Scenario, Study};
use probdist::{Distribution, Exponential, SimRng, Weibull};
use raidsim::{RaidGeometry, StorageConfig, StorageSimulator};
use sanet::beowulf::BeowulfConfig;
use sanet::reward::RewardSpec;
use sanet::{Experiment, ModelBuilder, Simulator};

/// Times `f` over `iters` iterations (after `warmup` untimed ones), prints
/// nanoseconds per iteration, and returns the ns/iter.
fn bench<T>(name: &str, warmup: u64, iters: u64, mut f: impl FnMut() -> T) -> f64 {
    for _ in 0..warmup {
        black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let elapsed = start.elapsed();
    let ns = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<46} {ns:>12.1} ns/iter   ({iters} iters)");
    ns
}

/// Like [`bench`] for simulation kernels: `f` returns the number of events
/// it processed, and the result carries events/sec throughput.
fn bench_events(name: &str, warmup: u64, iters: u64, mut f: impl FnMut() -> u64) -> BenchRecord {
    for _ in 0..warmup {
        black_box(f());
    }
    let mut events = 0u64;
    let start = Instant::now();
    for _ in 0..iters {
        events += black_box(f());
    }
    let elapsed = start.elapsed();
    let ns = elapsed.as_nanos() as f64 / iters as f64;
    let events_per_sec = events as f64 / elapsed.as_secs_f64();
    println!("{name:<46} {ns:>12.1} ns/iter   ({iters} iters, {events_per_sec:>12.0} events/s)");
    BenchRecord::with_events(name, ns, events_per_sec)
}

fn bench_distributions(records: &mut Vec<BenchRecord>) {
    let weibull = Weibull::from_shape_and_mean(0.7, 300_000.0).unwrap();
    let exponential = Exponential::from_mean(300_000.0).unwrap();
    let mut rng = SimRng::seed_from_u64(1);
    let ns = bench("weibull_sample", 10_000, 1_000_000, || weibull.sample(&mut rng));
    records.push(BenchRecord::timing("weibull_sample", ns));
    let mut rng2 = SimRng::seed_from_u64(1);
    let ns = bench("exponential_sample", 10_000, 1_000_000, || exponential.sample(&mut rng2));
    records.push(BenchRecord::timing("exponential_sample", ns));
}

fn bench_san_engine(records: &mut Vec<BenchRecord>) {
    let mut builder = ModelBuilder::new("unit");
    let up = builder.add_place("up", 1).unwrap();
    let down = builder.add_place("down", 0).unwrap();
    builder
        .timed_activity("fail", Exponential::from_mean(100.0).unwrap())
        .unwrap()
        .input_arc(up, 1)
        .output_arc(down, 1)
        .build()
        .unwrap();
    builder
        .timed_activity("repair", Exponential::from_mean(4.0).unwrap())
        .unwrap()
        .input_arc(down, 1)
        .output_arc(up, 1)
        .build()
        .unwrap();
    let model = builder.build().unwrap();
    let rewards =
        vec![RewardSpec::time_averaged_rate(
            "avail",
            move |m| if m.tokens(up) > 0 { 1.0 } else { 0.0 },
        )];
    let sim = Simulator::new(&model);
    // `run` auto-selects the naive kernel for this 2-activity model (the
    // small-model crossover fallback), so the two rows should be nearly
    // equal; before the auto-selection the first row ran the calendar
    // kernel at ~16.2M events/s vs the reference's ~24.6M.
    let mut rng = SimRng::seed_from_u64(7);
    records.push(bench_events("san_engine_one_year_repairable_unit", 5, 200, || {
        sim.run(&rewards, 8760.0, 0.0, &mut rng).unwrap().events
    }));
    let mut rng = SimRng::seed_from_u64(7);
    records.push(bench_events("san_engine_one_year_repairable_unit_ref", 5, 200, || {
        sim.run_reference(&rewards, 8760.0, 0.0, &mut rng).unwrap().events
    }));
}

/// The paper's composed cluster models, run single-replication through both
/// kernels. This is the bench the event-calendar engine exists for: the
/// reference kernel's per-event cost grows with the activity count (the
/// full rescan), the calendar kernel's only with the affected set, so the
/// gap widens from ABE (~34 activities) to petascale (~250).
fn bench_san_composed_models(records: &mut Vec<BenchRecord>) {
    // Five simulated years per iteration: long enough that per-replication
    // setup (schedule allocation, the initial full sampling pass) amortises
    // away and the numbers measure steady-state event throughput.
    for (config, horizon, iters) in
        [(ClusterConfig::abe(), 43_800.0_f64, 100_u64), (ClusterConfig::petascale(), 21_900.0, 20)]
    {
        let cluster = build_cluster_model(&config).unwrap();
        let rewards = standard_rewards(&cluster);
        let sim = Simulator::new(&cluster.model);
        let label = config.name.to_lowercase();

        let mut rng = SimRng::seed_from_u64(11);
        let calendar = bench_events(&format!("san_{label}_model_calendar"), 3, iters, || {
            sim.run(&rewards, horizon, 0.0, &mut rng).unwrap().events
        });
        let mut rng = SimRng::seed_from_u64(11);
        let reference = bench_events(&format!("san_{label}_model_reference"), 3, iters, || {
            sim.run_reference(&rewards, horizon, 0.0, &mut rng).unwrap().events
        });

        let speedup = reference.ns_per_iter / calendar.ns_per_iter;
        println!("san_{label}_model_calendar_speedup             {speedup:>12.2} x");
        records.push(calendar.clone().with_speedup(speedup));
        records.push(reference);
    }
}

/// The reachability explorer ([`sanet::reach`]): interned markings per
/// second while exploring the ABE cluster model under a fixed 2 000-state
/// budget. The model is unbounded, so the budget pins the work per
/// iteration exactly — every iteration interns the same 2 000 markings,
/// evaluates the same marking-dependent timings, and classifies the same
/// SCC structure, making the states/s figure comparable across runs.
fn bench_reach(records: &mut Vec<BenchRecord>) {
    let cluster = build_cluster_model(&ClusterConfig::abe()).unwrap();
    let config =
        sanet::ReachConfig { max_states: 2_000, max_transitions: 100_000, ..Default::default() };
    let record = bench_events("reach_states_per_sec", 2, 10, || {
        cluster.model.analyze_with(&config).num_states() as u64
    });
    records.push(record.with_unit("states/s"));
}

/// The design-space sweep subsystem: both workload families evaluated as
/// scenarios, reporting design-points-per-second throughput (recorded in
/// the `events_per_sec` slot of BENCH.json, where one "event" is one fully
/// evaluated design point).
fn bench_design_space_sweeps(records: &mut Vec<BenchRecord>) {
    let spec = RunSpec::new()
        .with_horizon_hours(cfs_bench::horizon_hours().min(4380.0))
        .with_replications(cfs_bench::replications().min(8))
        .with_base_seed(2008);

    let raid_vs_repl = ReplicationVsRaid {
        usable_capacity_tb: 24.0,
        schemes: vec![
            RedundancyScheme::Raid(RaidGeometry::raid6_8p2()),
            RedundancyScheme::Replication { replicas: 3 },
        ],
        afr_percents: vec![2.92, 8.76],
    };
    let raid_points = (raid_vs_repl.schemes.len() * raid_vs_repl.afr_percents.len()) as u64;
    let record = bench_events("sweep_replication_vs_raid", 2, 10, || {
        raid_vs_repl.evaluate(&spec).unwrap();
        raid_points
    });
    records.push(record.with_unit("points/s"));

    let beowulf = BeowulfPerformabilitySweep {
        worker_counts: vec![32, 128],
        repair_crews: vec![1, 4],
        base: BeowulfConfig {
            worker_mtbf_hours: 1_000.0,
            worker_repair_hours: 12.0,
            ..BeowulfConfig::default()
        },
    };
    let beowulf_points = (beowulf.worker_counts.len() * beowulf.repair_crews.len()) as u64;
    let record = bench_events("sweep_beowulf_performability", 2, 10, || {
        beowulf.evaluate(&spec).unwrap();
        beowulf_points
    });
    records.push(record.with_unit("points/s"));
}

/// The rare-event estimators on their reference configs, recording the
/// subsystem's two headline numbers in BENCH.json: the replications spent
/// to reach a ±10 % relative half-width (`replications_to_target`) and the
/// measured variance-reduction factor against naive Monte Carlo
/// (`speedup`); `ns_per_iter`/`events_per_sec` keep their usual meaning —
/// per-replication time and replications per second.
fn bench_rare_event(records: &mut Vec<BenchRecord>) {
    use probdist::rare::naive_replications_for;
    use probdist::stats::StoppingRule;
    use raidsim::{DiskModel, ReplicationConfig, ReplicationSimulator};
    use sanet::rare::{failover_pair, BiasedExperiment, FailureBias};

    // Reference rare-event config #1: the fail-over pair hitting
    // probability (~2e-5 within a 10-hour window), importance-sampled with
    // a 60x failure tilt, adaptively run to ±10 %.
    let (lambda, mu, horizon) = (1e-3, 1.0, 10.0);
    let pair = failover_pair(lambda, mu).unwrap();
    let bias = FailureBias::new(60.0, ["fail"]).unwrap();
    let mut experiment = BiasedExperiment::new(&pair.model, bias, horizon).unwrap();
    experiment.add_reward(pair.hit_reward());
    let rule = StoppingRule::new(0.10, 1_000, 100_000).unwrap();
    let start = Instant::now();
    let summary = experiment.run_until(rule, cfs_bench::DEFAULT_SEED).unwrap();
    let elapsed = start.elapsed();
    let estimate = summary.reward("hit").unwrap();
    let p = estimate.interval.point;
    let rhw = estimate.interval.relative_half_width().max(1e-6);
    let naive = naive_replications_for(p.clamp(1e-12, 0.5), rhw, 0.95).unwrap();
    let vrf = naive / summary.replications as f64;
    println!(
        "rare_event_is_replications_to_10pct            {:>12.0} replications   (p = {p:.3e}, \
         naive projection {naive:.0})",
        summary.replications as f64
    );
    println!("rare_event_is_variance_reduction               {vrf:>12.0} x");
    records.push(
        BenchRecord::with_events(
            "rare_event_is_replications_to_10pct",
            elapsed.as_nanos() as f64 / summary.replications as f64,
            summary.replications as f64 / elapsed.as_secs_f64(),
        )
        .with_replications_to_target(summary.replications as f64)
        .with_speedup(vrf),
    );

    // Reference rare-event config #2: a 3-way replicated store's data-loss
    // probability by multilevel splitting, adaptively run to ±10 %.
    let disk = DiskModel { weibull_shape: 1.0, mtbf_hours: 20_000.0, capacity_gb: 250.0 };
    let config = ReplicationConfig {
        disks: 24,
        replicas: 3,
        disk,
        re_replication_hours: 4.0,
        replacement_hours: 4.0,
        data_loss_recovery_hours: 24.0,
    };
    let sim = ReplicationSimulator::new(config).unwrap();
    let rule = StoppingRule::new(0.10, 1_000, 64_000).unwrap();
    let start = Instant::now();
    let result = sim
        .splitting_loss_probability_until(2190.0, &rule, cfs_bench::DEFAULT_SEED, 0.95, 0)
        .unwrap();
    let elapsed = start.elapsed();
    println!(
        "rare_event_splitting_trials_to_10pct           {:>12.0} trials   (p = {:.3e}, rel \
         {:.3})",
        result.estimate.replications as f64,
        result.estimate.interval.point,
        result.estimate.relative_error(),
    );
    println!(
        "rare_event_splitting_variance_reduction        {:>12.1} x",
        result.estimate.variance_reduction_factor
    );
    records.push(
        BenchRecord::with_events(
            "rare_event_splitting_trials_to_10pct",
            elapsed.as_nanos() as f64 / result.estimate.replications as f64,
            result.estimate.replications as f64 / elapsed.as_secs_f64(),
        )
        .with_replications_to_target(result.estimate.replications as f64)
        .with_speedup(result.estimate.variance_reduction_factor),
    );
}

fn bench_storage_kernel(records: &mut Vec<BenchRecord>) {
    let sim = StorageSimulator::new(StorageConfig::abe_scratch()).unwrap();
    let mut rng = SimRng::seed_from_u64(3);
    let ns = bench("storage_monte_carlo_abe_one_year", 5, 200, || sim.run_once(8760.0, &mut rng));
    records.push(BenchRecord::timing("storage_monte_carlo_abe_one_year", ns));
}

/// Four simulation scenarios with fewer replications each than the worker
/// budget — the shape where the PR 1 execution model (scenarios strictly
/// serial, only each scenario's own replications parallel) leaves workers
/// idle, and where the global work-stealing pool overlaps
/// scenario×replication work units from the whole study. One row pair per
/// benched worker count; each arm takes the best of three timed passes so a
/// scheduler hiccup cannot manufacture a regression.
fn bench_study_scheduling(records: &mut Vec<BenchRecord>) {
    let scenarios: Vec<ClusterConfig> = (0..4)
        .map(|i| {
            let mut config = ClusterConfig::abe();
            config.name = format!("ABE-variant-{i}");
            config
        })
        .collect();
    let available = available_workers();
    let worker_counts: Vec<usize> = match cfs_bench::workers() {
        0 => [2, 4, 8].into_iter().filter(|&w| w <= available.max(2)).collect(),
        n => vec![n],
    };

    let mut study = Study::new();
    for config in &scenarios {
        study.add(Box::new(config.clone()) as Box<dyn Scenario>);
    }

    for &workers in &worker_counts {
        // Honour the harness env knobs (the CI bench-smoke step shrinks
        // both) while keeping the replications-below-workers shape the
        // comparison needs.
        let spec = RunSpec::new()
            .with_horizon_hours(cfs_bench::horizon_hours())
            .with_replications((workers / 2).max(2).min(cfs_bench::replications()))
            .with_base_seed(20_080_625)
            .with_workers(workers);

        // One untimed pass of each arm so neither timed run pays one-time
        // process warm-up (allocator growth, pool-thread spawn, lazy model
        // initialisation).
        for config in &scenarios {
            black_box(evaluate(config, &spec).unwrap());
        }
        black_box(study.run(&spec).unwrap());

        let mut serial_loop = f64::INFINITY;
        let mut pooled = f64::INFINITY;
        for _ in 0..3 {
            // PR 1 behaviour: evaluate scenarios one after another; each
            // scenario still fans its own replications across the budget.
            let start = Instant::now();
            for config in &scenarios {
                black_box(evaluate(config, &spec).unwrap());
            }
            serial_loop = serial_loop.min(start.elapsed().as_secs_f64());

            // The work-stealing engine: every scenario×replication unit of
            // the study on the shared persistent pool.
            let start = Instant::now();
            let report = black_box(study.run(&spec).unwrap());
            pooled = pooled.min(start.elapsed().as_secs_f64());
            assert_eq!(report.outputs.len(), scenarios.len());
        }

        println!(
            "study_serial_scenario_loop [{workers}w]            {:>12.1} ms   ({} scenarios x {} \
             reps)",
            serial_loop * 1e3,
            scenarios.len(),
            spec.replications()
        );
        println!("study_global_work_stealing_pool [{workers}w]       {:>12.1} ms", pooled * 1e3);
        let speedup = serial_loop / pooled;
        println!(
            "study_scheduling_speedup [{workers}w]              {speedup:>12.2} x{}",
            if available == 1 { "   (single-core machine: ~1x expected)" } else { "" }
        );
        records.push(
            BenchRecord::timing("study_serial_scenario_loop", serial_loop * 1e9)
                .with_workers(workers),
        );
        records.push(
            BenchRecord::timing("study_global_work_stealing_pool", pooled * 1e9)
                .with_workers(workers)
                .with_speedup(speedup),
        );
    }
}

/// The headline hot-path number: replications per second on a
/// million-replication experiment over the 2-activity repairable unit, run
/// through [`sanet::Experiment`] directly (the `RunSpec` surface caps
/// replications at 100 000; the experiment API has no cap). This is the
/// path the persistent pool, batched claiming, and per-worker `RunScratch`
/// exist for: each replication is tens of microseconds of kernel work, so
/// any per-replication scheduling or allocation overhead shows up directly.
fn bench_million_replications(records: &mut Vec<BenchRecord>) {
    let mut builder = ModelBuilder::new("unit");
    let up = builder.add_place("up", 1).unwrap();
    let down = builder.add_place("down", 0).unwrap();
    builder
        .timed_activity("fail", Exponential::from_mean(1_000.0).unwrap())
        .unwrap()
        .input_arc(up, 1)
        .output_arc(down, 1)
        .build()
        .unwrap();
    builder
        .timed_activity("repair", Exponential::from_mean(10.0).unwrap())
        .unwrap()
        .input_arc(down, 1)
        .output_arc(up, 1)
        .build()
        .unwrap();
    let model = builder.build().unwrap();

    let mut experiment = Experiment::new(model, 10_000.0);
    experiment.add_reward(RewardSpec::time_averaged_rate("avail", move |m| {
        if m.tokens(up) > 0 {
            1.0
        } else {
            0.0
        }
    }));
    experiment.set_workers(cfs_bench::workers());
    let workers = match cfs_bench::workers() {
        0 => available_workers(),
        n => n,
    };

    // `CFS_BENCH_REPLICATIONS` scales the run down for smoke runs (CI sets
    // 4); the full default really is one million.
    let replications = std::env::var("CFS_BENCH_REPLICATIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(1_000_000);

    black_box(experiment.run(replications.clamp(2, 1_000), cfs_bench::DEFAULT_SEED).unwrap());
    let start = Instant::now();
    let summary = black_box(experiment.run(replications, cfs_bench::DEFAULT_SEED).unwrap());
    let elapsed = start.elapsed();
    assert_eq!(summary.replications, replications);

    let per_sec = replications as f64 / elapsed.as_secs_f64();
    println!(
        "study_million_replications                     {per_sec:>12.0} replications/s   \
         ({replications} replications, {workers} workers, {:.2} s)",
        elapsed.as_secs_f64()
    );
    records.push(
        BenchRecord::with_events(
            "study_million_replications",
            elapsed.as_nanos() as f64 / replications as f64,
            per_sec,
        )
        .with_unit("replications/s")
        .with_workers(workers),
    );
}

/// Telemetry overhead on the hot kernel path: the composed ABE model run
/// through the calendar kernel with the sharded accumulators enabled vs
/// disabled. The two arms are *interleaved* — disabled trial, enabled
/// trial, repeated — so machine-wide drift (a noisy neighbour, a thermal
/// dip) lands on both arms instead of biasing whichever ran second, and
/// each arm keeps its best-of-N throughput as the noise-floor estimate.
/// The `CFS_BENCH_*` smoke knobs deliberately do not apply — the two arms
/// must run the identical workload. The regression lands in BENCH.json as
/// percentage points in the `events_per_sec` slot (unit `"percent"`),
/// where `bench_guard` fails the build if it grows more than 2 points over
/// the committed baseline.
fn bench_telemetry_overhead(records: &mut Vec<BenchRecord>) {
    let cluster = build_cluster_model(&ClusterConfig::abe()).unwrap();
    let rewards = standard_rewards(&cluster);
    let sim = Simulator::new(&cluster.model);
    let horizon = 8760.0;

    // One timed trial of a fixed workload; returns (ns/iter, events/s).
    let trial = |telemetry_on: bool| -> (f64, f64) {
        let guard = telemetry_on.then(probdist::telemetry::enable_scoped);
        let mut rng = SimRng::seed_from_u64(13);
        black_box(sim.run(&rewards, horizon, 0.0, &mut rng).unwrap());
        let iters = 30u64;
        let mut events = 0u64;
        let start = Instant::now();
        for _ in 0..iters {
            events += black_box(sim.run(&rewards, horizon, 0.0, &mut rng).unwrap().events);
        }
        let elapsed = start.elapsed();
        drop(guard);
        (elapsed.as_nanos() as f64 / iters as f64, events as f64 / elapsed.as_secs_f64())
    };

    // Warm both paths (shard registration, page faults), then interleave.
    trial(false);
    trial(true);
    let mut disabled = 0.0f64;
    let mut enabled = 0.0f64;
    let mut enabled_ns = f64::INFINITY;
    for _ in 0..7 {
        disabled = disabled.max(trial(false).1);
        let (ns, rate) = trial(true);
        enabled = enabled.max(rate);
        enabled_ns = enabled_ns.min(ns);
    }
    let overhead_pct = (1.0 - enabled / disabled) * 100.0;
    println!(
        "telemetry_overhead_pct                         {overhead_pct:>12.2} %   ({disabled:.0} \
         events/s disabled, {enabled:.0} enabled)"
    );
    records.push(
        BenchRecord::with_events("telemetry_overhead_pct", enabled_ns, overhead_pct)
            .with_unit("percent"),
    );
}

/// The machine's available parallelism (1 if unknown).
fn available_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

fn main() {
    let mut records = Vec::new();
    bench_distributions(&mut records);
    bench_san_engine(&mut records);
    bench_san_composed_models(&mut records);
    bench_reach(&mut records);
    bench_storage_kernel(&mut records);
    bench_design_space_sweeps(&mut records);
    bench_rare_event(&mut records);
    bench_study_scheduling(&mut records);
    bench_million_replications(&mut records);
    bench_telemetry_overhead(&mut records);
    match cfs_bench::write_bench_json(&records) {
        Ok(path) => {
            println!("\nwrote {} machine-readable records to {}", records.len(), path.display());
        }
        Err(err) => panic!("failed to write bench JSON: {err}"),
    }
}
