//! Regenerates Figure 4: storage availability, CFS availability, cluster
//! utility, and CFS availability with a standby spare OSS, as the ABE
//! cluster is scaled to a petaflop-petabyte system. Expected shape: storage
//! availability ≈ 1 throughout, CFS availability declining from ≈0.97 to
//! ≈0.91, CU below CFS availability, spare OSS recovering ≈3 %.

use cfs_bench::{horizon_hours, replications, run_and_print, DEFAULT_SEED};
use cfs_model::experiments::figure4_cfs_availability;

fn main() {
    let result = run_and_print(
        "Figure 4 - CFS availability and cluster utility vs scale",
        || figure4_cfs_availability(&[], horizon_hours(), replications(), DEFAULT_SEED),
        |r| r.to_table().render(),
    );
    let abe = result.points.first().expect("non-empty sweep");
    let peta = result.points.last().expect("non-empty sweep");
    println!(
        "paper: CFS availability 0.972 -> 0.909, spare OSS +3% | measured: {:.3} -> {:.3}, spare OSS {:+.3}",
        abe.cfs_availability.point,
        peta.cfs_availability.point,
        peta.cfs_availability_spare_oss.point - peta.cfs_availability.point
    );
}
