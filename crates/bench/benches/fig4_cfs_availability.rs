//! Regenerates Figure 4: storage availability, CFS availability, cluster
//! utility, and CFS availability with a standby spare OSS, as the ABE
//! cluster is scaled to a petaflop-petabyte system. Expected shape: storage
//! availability ≈ 1 throughout, CFS availability declining from ≈0.97 to
//! ≈0.91, CU below CFS availability, spare OSS recovering ≈3 %.

use cfs_bench::{run_and_print, study_spec};
use cfs_model::scenario::Figure4CfsAvailability;
use cfs_model::Study;

fn main() {
    let spec = study_spec();
    let report = run_and_print(
        "Figure 4 - CFS availability and cluster utility vs scale",
        || Study::new().with(Figure4CfsAvailability::default()).run(&spec),
        cfs_model::Report::to_text,
    );
    let output = report.output("figure4_cfs_availability").expect("scenario ran");
    println!(
        "paper: CFS availability 0.972 -> 0.909, spare OSS +3% | measured: {:.3} -> {:.3}, spare OSS {:+.3}",
        output.metric("cfs_availability_first").expect("first point"),
        output.metric("cfs_availability_last").expect("last point"),
        output.metric("spare_oss_gain_last").expect("spare gain"),
    );
}
