//! Regenerates Figure 3: average disks replaced per week versus the number
//! of disks (480 → 4800) for AFRs 0.88 %, 2.92 %, 4.38 %, and 8.76 %.
//! Expected shape: linear growth in both disk count and AFR, with the ABE
//! point (480 disks, 2.92 %) at 0–2 replacements per week.

use cfs_bench::{horizon_hours, replications, run_and_print, DEFAULT_SEED};
use cfs_model::experiments::figure3_disk_replacements;

fn main() {
    let result = run_and_print(
        "Figure 3 - disk replacements per week",
        || figure3_disk_replacements(&[], horizon_hours(), replications(), DEFAULT_SEED),
        |r| r.to_table().render(),
    );
    if let Some(abe) = result
        .series
        .iter()
        .find(|s| (s.afr_percent - 2.92).abs() < 1e-9)
        .and_then(|s| s.points.first())
    {
        println!(
            "paper: ABE configuration 0-2 replacements/week | measured: {:.2}/week at 480 disks",
            abe.simulated_per_week.point
        );
    }
}
