//! Regenerates Figure 3: average disks replaced per week versus the number
//! of disks (480 → 4800) for AFRs 0.88 %, 2.92 %, 4.38 %, and 8.76 %.
//! Expected shape: linear growth in both disk count and AFR, with the ABE
//! point (480 disks, 2.92 %) at 0–2 replacements per week.

use cfs_bench::{run_and_print, study_spec};
use cfs_model::scenario::Figure3DiskReplacements;
use cfs_model::Study;

fn main() {
    let spec = study_spec();
    let report = run_and_print(
        "Figure 3 - disk replacements per week",
        || Study::new().with(Figure3DiskReplacements::default()).run(&spec),
        cfs_model::Report::to_text,
    );
    let output = report.output("figure3_disk_replacements").expect("scenario ran");
    if let Some(abe) = output.metrics.iter().find(|m| {
        m.name.starts_with("replacements_per_week (0.7,2.92") && m.name.ends_with("@480 disks")
    }) {
        println!(
            "paper: ABE configuration 0-2 replacements/week | measured: {:.2}/week at 480 disks",
            abe.value
        );
    }
}
