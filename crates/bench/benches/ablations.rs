//! Ablation benches for the design choices called out in DESIGN.md §6:
//! RAID parity width, disk replacement time, standby spare OSS, and the
//! correlated-failure probability.

use cfs_bench::{run_and_print, study_spec};
use cfs_model::Study;

fn main() {
    let spec = study_spec();
    run_and_print(
        "Ablations - all four design choices",
        || Study::ablations().run(&spec),
        cfs_model::Report::to_text,
    );
}
