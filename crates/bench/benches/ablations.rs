//! Ablation benches for the design choices called out in DESIGN.md §6:
//! RAID parity width, disk replacement time, standby spare OSS, and the
//! correlated-failure probability.

use cfs_bench::{horizon_hours, replications, run_and_print, DEFAULT_SEED};
use cfs_model::experiments::{
    ablation_correlation, ablation_raid_parity, ablation_repair_time, ablation_spare_oss,
};

fn main() {
    let reps = replications();
    let horizon = horizon_hours();
    run_and_print("Ablation - RAID parity", || ablation_raid_parity(horizon, reps, DEFAULT_SEED), |r| {
        r.to_table().render()
    });
    run_and_print(
        "Ablation - disk replacement time",
        || ablation_repair_time(horizon, reps, DEFAULT_SEED),
        |r| r.to_table().render(),
    );
    run_and_print("Ablation - spare OSS", || ablation_spare_oss(horizon, reps, DEFAULT_SEED), |r| {
        r.to_table().render()
    });
    run_and_print(
        "Ablation - correlated failures",
        || ablation_correlation(horizon, reps, DEFAULT_SEED),
        |r| r.to_table().render(),
    );
}
