//! Offline, vendored work-alike of the slice of `proptest` this workspace
//! uses: the `proptest!` test macro, `prop_assert!` / `prop_assert_eq!`,
//! range and `any::<u64>()` strategies, and `collection::vec`.
//!
//! Unlike the real proptest there is no shrinking and no persistence: each
//! property runs a fixed number of cases drawn from a generator seeded by
//! the test's name, so failures are deterministic and reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Number of cases each property is exercised with.
pub const CASES: u32 = 64;

/// Minimal deterministic generator (SplitMix64) backing the strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from a test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, 1)`.
    pub fn uniform01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator: the work-alike of proptest's `Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.uniform01()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty)*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty integer range strategy");
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize u32 u64 i32 i64);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-domain strategy for a type (`any::<u64>()`).
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing a `Vec` with a length drawn from `len` and
    /// elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The commonly imported names (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Asserts a property-holds condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares deterministic property tests: each `fn` becomes a `#[test]`
/// that draws [`CASES`] inputs from its strategies and runs the body.
#[macro_export]
macro_rules! proptest {
    ($(
        #[test]
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            // Miri executes each case orders of magnitude slower; a handful
            // of cases still covers every arithmetic path it checks.
            let cases = if cfg!(miri) { 4 } else { $crate::CASES };
            for _case in 0..cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let x = Strategy::generate(&(2.0..5.0_f64), &mut rng);
            assert!((2.0..5.0).contains(&x));
            let n = Strategy::generate(&(3..9usize), &mut rng);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = crate::TestRng::from_name("lens");
        let strat = crate::collection::vec(0.0..1.0_f64, 2..7);
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0.0..1.0_f64, n in 1..10usize, seed in any::<u64>()) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert_eq!(seed, seed);
        }
    }
}
