//! A small JSON parser for the [`Value`] data model.
//!
//! The writer half of this crate ([`Value::to_json`](crate::Value::to_json))
//! has existed since the workspace began; this module adds the inverse so
//! robustness features (checkpoint/resume, benchmark baselines) can read
//! their own files back without a hand-rolled parser per call site.
//!
//! Round-trip guarantee for floats: the writer renders an `f64` with Rust's
//! shortest round-trip `Display`, and [`parse`] reads numbers back with
//! `str::parse::<f64>` — so `parse(write(x)) == x` **bit for bit** for
//! every finite `f64`. The checkpoint layer's "resume is bit-identical"
//! contract rests on this property (pinned by a test here).

use std::fmt;

use crate::Value;

/// Position-annotated error from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input at which the problem was detected.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting the parser accepts; deeper input is rejected
/// (instead of overflowing the stack on a corrupt or hostile file).
const MAX_DEPTH: usize = 256;

/// Parses a complete JSON document into a [`Value`].
///
/// Numbers without a fraction or exponent parse as [`Value::UInt`] /
/// [`Value::Int`]; everything else numeric parses as [`Value::Float`].
/// Object field order is preserved.
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte offset for malformed input,
/// trailing garbage, or nesting deeper than an internal safety limit.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_whitespace();
    let value = parser.value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{text}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting deeper than the safety limit"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(escape) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.error(format!("invalid escape `\\{}`", other as char)));
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = text.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.error("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(byte) = self.peek() {
            match byte {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if integral {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
                // Guard against `-` with no digits.
                if digits.is_empty() {
                    return Err(self.error("invalid number"));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Value::Float(f)),
            _ => Err(self.error(format!("invalid number `{text}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null"), Ok(Value::Null));
        assert_eq!(parse("true"), Ok(Value::Bool(true)));
        assert_eq!(parse("false"), Ok(Value::Bool(false)));
        assert_eq!(parse("42"), Ok(Value::UInt(42)));
        assert_eq!(parse("-7"), Ok(Value::Int(-7)));
        assert_eq!(parse("1.5"), Ok(Value::Float(1.5)));
        assert_eq!(parse("1e3"), Ok(Value::Float(1000.0)));
        assert_eq!(parse("\"hi\""), Ok(Value::String("hi".into())));
    }

    #[test]
    fn containers_parse_in_order() {
        let v = parse(r#"{"b": 1, "a": [false, null, "x"]}"#).unwrap();
        assert_eq!(
            v,
            Value::Object(vec![
                ("b".into(), Value::UInt(1)),
                (
                    "a".into(),
                    Value::Array(vec![Value::Bool(false), Value::Null, Value::String("x".into())])
                ),
            ])
        );
    }

    #[test]
    fn escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1}f — π";
        let json = Value::String(original.to_string()).to_json();
        assert_eq!(parse(&json), Ok(Value::String(original.to_string())));
        // Explicit \u escapes, including a surrogate pair.
        assert_eq!(parse(r#""\u0041\ud83d\ude00""#), Ok(Value::String("A😀".into())));
    }

    #[test]
    fn floats_round_trip_bit_for_bit() {
        // The checkpoint contract: writer → parser restores the exact bits
        // of every finite f64, including subnormals and extremes.
        let cases = [
            0.1,
            -1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 8.0, // subnormal
            f64::MAX,
            -f64::MAX,
            1e-300,
            std::f64::consts::TAU,
            0.972_345_678_901_234_5,
        ];
        for x in cases {
            let json = Value::Float(x).to_json();
            let Value::Float(back) = parse(&json).unwrap() else {
                panic!("{json} did not parse as a float");
            };
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {json}");
        }
        // Integers written by the float writer come back as integers; the
        // numeric value is still exact.
        assert_eq!(parse(&Value::Float(3.0).to_json()), Ok(Value::UInt(3)));
    }

    #[test]
    fn whole_document_round_trips() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("abe".into())),
            ("runs".into(), Value::Array(vec![Value::Float(0.25), Value::UInt(9)])),
            ("nested".into(), Value::Object(vec![("ok".into(), Value::Bool(true))])),
        ]);
        assert_eq!(parse(&v.to_json()), Ok(v.clone()));
        assert_eq!(parse(&v.to_json_pretty()), Ok(v));
    }

    #[test]
    fn malformed_input_is_rejected_with_position() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1.2.3",
            "-",
            "01a",
            "{\"a\":1} extra",
            "\"\\q\"",
            "nul",
            "[1 2]",
            "{\"a\" 1}",
        ] {
            let err = parse(bad).expect_err(bad);
            assert!(!err.message.is_empty(), "{bad}");
            let shown = err.to_string();
            assert!(shown.contains("JSON parse error"), "{shown}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        let err = parse(&deep).expect_err("too deep");
        assert!(err.message.contains("nesting"), "{}", err.message);
    }

    #[test]
    fn non_finite_numbers_are_rejected() {
        assert!(parse("1e999").is_err(), "overflow to inf must not parse");
        assert!(parse("NaN").is_err());
    }
}
