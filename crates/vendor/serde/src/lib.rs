//! Offline, vendored work-alike of the `serde` facade.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the small slice of serde the workspace relies on:
//!
//! * the `#[derive(Serialize)]` / `#[derive(Deserialize)]` attributes (from
//!   the sibling `serde_derive` proc-macro crate), and
//! * a self-describing [`Value`] data model with a JSON writer, so derived
//!   types can be rendered as JSON by the reporting layer
//!   ([`to_json`] / [`to_json_pretty`]).
//!
//! [`Serialize::to_value`] is the whole serialisation contract: a derived
//! type converts itself into a [`Value`] tree and the writer turns that tree
//! into JSON text. `Deserialize` is a marker trait only; code that needs to
//! read serialised data back (the study checkpoint layer, the benchmark
//! baseline guard) parses JSON text into a [`Value`] tree with
//! [`json::parse`] and walks it with the [`Value`] accessors. Swapping this
//! crate for the real `serde` (plus `serde_json`) stays a manifest-level
//! change for serialisation call sites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialised value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A finite floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map of field name to value (field order is preserved so
    /// JSON output is deterministic).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Renders the value as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        out
    }

    /// Renders the value as indented JSON (two spaces per level).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, Some(2), 0);
        out
    }

    /// Looks up a field of an [`Value::Object`] by name. Returns `None` for
    /// missing fields and for non-object values.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => {
                fields.iter().find(|(name, _)| name == key).map(|(_, value)| value)
            }
            _ => None,
        }
    }

    /// The elements of a [`Value::Array`], or `None` for other variants.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The contents of a [`Value::String`], or `None` for other variants.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Any numeric variant as an `f64` (integers convert losslessly up to
    /// 2^53), or `None` for non-numeric values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// A non-negative integer variant as a `u64`, or `None` for anything
    /// else (including floats and negative integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The contents of a [`Value::Bool`], or `None` for other variants.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_json_string(out, s),
            Value::Array(items) => {
                write_sequence(out, indent, level, '[', ']', items.len(), |out, i| {
                    items[i].write_json(out, indent, level + 1);
                });
            }
            Value::Object(fields) => {
                write_sequence(out, indent, level, '{', '}', fields.len(), |out, i| {
                    write_json_string(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write_json(out, indent, level + 1);
                });
            }
        }
    }
}

fn write_sequence(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can serialise themselves into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a serialised value tree.
    fn to_value(&self) -> Value;
}

/// Marker trait recording that a type opted into deserialisation.
///
/// The workspace never parses serialised data back, so this carries no
/// methods; it exists so `#[derive(Deserialize)]` attributes keep compiling
/// and downstream code can bound on the trait.
pub trait Deserialize {}

/// Serialises any [`Serialize`] type to compact JSON.
pub fn to_json<T: Serialize + ?Sized>(value: &T) -> String {
    value.to_value().to_json()
}

/// Serialises any [`Serialize`] type to indented JSON.
pub fn to_json_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    value.to_value().to_json_pretty()
}

macro_rules! impl_serialize_int {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

macro_rules! impl_serialize_uint {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_serialize_int!(i8 i16 i32 i64 isize);
impl_serialize_uint!(u8 u16 u32 u64 usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so JSON output is deterministic.
        let mut fields: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {}

#[cfg(test)]
mod tests {
    // The derive macros emit `serde::`-prefixed paths; alias the crate to
    // its published name so they resolve inside the crate's own tests.
    use super::*;
    use crate as serde;

    #[test]
    fn scalars_render_as_json() {
        assert_eq!(Value::Null.to_json(), "null");
        assert_eq!(true.to_value().to_json(), "true");
        assert_eq!((-3i32).to_value().to_json(), "-3");
        assert_eq!(7u64.to_value().to_json(), "7");
        assert_eq!(1.5f64.to_value().to_json(), "1.5");
        assert_eq!(f64::NAN.to_value().to_json(), "null");
        assert_eq!("hi".to_string().to_value().to_json(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        let v = "a\"b\\c\nd".to_string().to_value();
        assert_eq!(v.to_json(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn containers_render_in_order() {
        let v = Value::Object(vec![
            ("b".into(), Value::Int(1)),
            ("a".into(), Value::Array(vec![Value::Bool(false), Value::Null])),
        ]);
        assert_eq!(v.to_json(), "{\"b\":1,\"a\":[false,null]}");
        let pretty = v.to_json_pretty();
        assert!(pretty.contains("\n  \"b\": 1"));
    }

    #[test]
    fn option_and_tuple_serialize() {
        assert_eq!(Some(2u32).to_value().to_json(), "2");
        assert_eq!(None::<u32>.to_value().to_json(), "null");
        assert_eq!(("x".to_string(), 1.25f64).to_value().to_json(), "[\"x\",1.25]");
    }

    #[test]
    fn derive_produces_field_objects() {
        #[derive(Serialize, Deserialize)]
        struct Point {
            x: f64,
            y: u32,
            label: String,
        }
        let p = Point { x: 0.5, y: 2, label: "p".into() };
        assert_eq!(to_json(&p), "{\"x\":0.5,\"y\":2,\"label\":\"p\"}");
    }

    #[test]
    fn derive_handles_enums() {
        #[derive(Serialize, Deserialize)]
        enum Shape {
            Unit,
            Tuple(u32, u32),
            Named { w: f64 },
        }
        assert_eq!(to_json(&Shape::Unit), "\"Unit\"");
        assert_eq!(to_json(&Shape::Tuple(1, 2)), "{\"Tuple\":[1,2]}");
        assert_eq!(to_json(&Shape::Named { w: 2.0 }), "{\"Named\":{\"w\":2}}");
    }

    #[test]
    fn value_accessors_navigate_trees() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("cfs".into())),
            ("n".into(), Value::UInt(8)),
            ("mean".into(), Value::Float(0.25)),
            ("flags".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        assert_eq!(v.get("name").and_then(Value::as_str), Some("cfs"));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(8));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(8.0));
        assert_eq!(v.get("mean").and_then(Value::as_f64), Some(0.25));
        assert_eq!(v.get("mean").and_then(Value::as_u64), None);
        assert_eq!(v.get("flags").and_then(Value::as_array).map(<[Value]>::len), Some(1));
        assert_eq!(v.get("flags").unwrap().as_array().unwrap()[0].as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Null.get("x"), None);
        assert_eq!(Value::Int(-1).as_u64(), None);
        assert_eq!(Value::Int(-1).as_f64(), Some(-1.0));
    }

    #[test]
    fn derive_handles_tuple_structs() {
        #[derive(Serialize, Deserialize)]
        struct Wrapper(f64);
        #[derive(Serialize, Deserialize)]
        struct Pair(u32, u32);
        assert_eq!(to_json(&Wrapper(3.5)), "3.5");
        assert_eq!(to_json(&Pair(1, 2)), "[1,2]");
    }
}
