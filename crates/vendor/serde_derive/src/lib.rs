//! Derive macros for the vendored `serde` work-alike.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` with a
//! hand-rolled token walk (the real `syn`/`quote` stack is unavailable in
//! this offline build environment). Supported shapes — which cover every
//! deriving type in the workspace — are non-generic structs (named, tuple,
//! and unit) and non-generic enums with unit, tuple, or named-field
//! variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by generating a `to_value` that mirrors the
/// item's shape in the `serde::Value` data model.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives the `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("generated Deserialize impl parses")
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes, visibility, and anything else ahead of the keyword.
    let keyword = loop {
        match tokens.get(i) {
            Some(TokenTree::Ident(ident)) => {
                let text = ident.to_string();
                if text == "struct" || text == "enum" {
                    break text;
                }
                i += 1;
            }
            Some(_) => i += 1,
            None => panic!("serde derive: no struct or enum keyword found"),
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde derive: expected item name, found {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic type `{name}` is not supported");
    }

    let kind = if keyword == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(body.stream()))
            }
            other => panic!("serde derive: expected enum body, found {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_field_names(body.stream()))
            }
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_top_level_items(body.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            other => panic!("serde derive: expected struct body, found {other:?}"),
        }
    };

    Item { name, kind }
}

/// Splits a token stream on commas that sit outside nested groups and angle
/// brackets (so `HashMap<String, u32>` stays one chunk).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth: i32 = 0;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().expect("chunk list is non-empty").push(token);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn count_top_level_items(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

/// Extracts field names from named-struct (or named-variant) body tokens:
/// for each comma-separated chunk, the last identifier before the `:` that
/// separates name from type.
fn parse_field_names(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .iter()
        .map(|chunk| {
            let mut name = None;
            for token in chunk {
                match token {
                    TokenTree::Punct(p) if p.as_char() == ':' => break,
                    TokenTree::Ident(ident) => name = Some(ident.to_string()),
                    _ => {}
                }
            }
            name.unwrap_or_else(|| panic!("serde derive: field without a name in {chunk:?}"))
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .iter()
        .map(|chunk| {
            let mut name = None;
            let mut kind = VariantKind::Unit;
            let mut idx = 0;
            while idx < chunk.len() {
                match &chunk[idx] {
                    // Skip `#[...]` attributes on the variant.
                    TokenTree::Punct(p) if p.as_char() == '#' => idx += 2,
                    TokenTree::Ident(ident) if name.is_none() => {
                        name = Some(ident.to_string());
                        idx += 1;
                    }
                    TokenTree::Group(body) if name.is_some() => {
                        kind = match body.delimiter() {
                            Delimiter::Parenthesis => {
                                VariantKind::Tuple(count_top_level_items(body.stream()))
                            }
                            Delimiter::Brace => {
                                VariantKind::Named(parse_field_names(body.stream()))
                            }
                            _ => VariantKind::Unit,
                        };
                        break;
                    }
                    _ => idx += 1,
                }
            }
            let name = name.unwrap_or_else(|| panic!("serde derive: unnamed enum variant"));
            Variant { name, kind }
        })
        .collect()
}

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::UnitStruct => "serde::Value::Null".to_string(),
        ItemKind::NamedStruct(fields) => object_literal(
            fields.iter().map(|f| (f.clone(), format!("serde::Serialize::to_value(&self.{f})"))),
        ),
        ItemKind::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("serde::Serialize::to_value(&self.{i})")).collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|variant| {
                    let vname = &variant.name;
                    match &variant.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => serde::Value::String(\
                             ::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let payload = if *n == 1 {
                                "serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("serde::Value::Array(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({binds}) => {obj},",
                                binds = binders.join(", "),
                                obj = tagged_value(vname, &payload),
                            )
                        }
                        VariantKind::Named(fields) => {
                            let payload =
                                object_literal(fields.iter().map(|f| {
                                    (f.clone(), format!("serde::Serialize::to_value({f})"))
                                }));
                            format!(
                                "{name}::{vname} {{ {binds} }} => {obj},",
                                binds = fields.join(", "),
                                obj = tagged_value(vname, &payload),
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         \tfn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

/// `Value::Object` literal from `(field name, value expression)` pairs.
fn object_literal(fields: impl Iterator<Item = (String, String)>) -> String {
    let entries: Vec<String> = fields
        .map(|(name, expr)| format!("(::std::string::String::from(\"{name}\"), {expr})"))
        .collect();
    format!("serde::Value::Object(vec![{}])", entries.join(", "))
}

/// `{"Variant": payload}` — the externally-tagged enum representation.
fn tagged_value(variant: &str, payload: &str) -> String {
    format!("serde::Value::Object(vec![(::std::string::String::from(\"{variant}\"), {payload})])")
}
