use serde::{Deserialize, Serialize};

use crate::{DistError, Distribution, SimRng};

/// Continuous uniform distribution on `[lo, hi]`.
///
/// Used for parameter sweeps (e.g. drawing repair times uniformly from the
/// 12–36 hour hardware-replacement window reported by the ABE SAN
/// administrators) and as a building block of empirical resampling.
///
/// # Example
///
/// ```
/// use probdist::{Distribution, Uniform};
///
/// # fn main() -> Result<(), probdist::DistError> {
/// let hw_repair = Uniform::new(12.0, 36.0)?;
/// assert_eq!(hw_repair.mean(), 24.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidInterval`] if `lo > hi` or either bound
    /// is not finite, and [`DistError::NonPositiveParameter`] if `lo` is
    /// negative (durations must be non-negative).
    pub fn new(lo: f64, hi: f64) -> Result<Self, DistError> {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(DistError::InvalidInterval { lo, hi });
        }
        DistError::check_non_negative("lo", lo)?;
        Ok(Uniform { lo, hi })
    }

    /// Lower bound of the support.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the support.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.uniform_range(self.lo, self.hi)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            0.0
        } else if x >= self.hi {
            1.0
        } else {
            (x - self.lo) / (self.hi - self.lo)
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi || self.hi == self.lo {
            0.0
        } else {
            1.0 / (self.hi - self.lo)
        }
    }

    fn quantile(&self, p: f64) -> Result<f64, DistError> {
        let p = DistError::check_probability(p)?;
        Ok(self.lo + p * (self.hi - self.lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructor_validation() {
        assert!(Uniform::new(5.0, 4.0).is_err());
        assert!(Uniform::new(-1.0, 4.0).is_err());
        assert!(Uniform::new(f64::NAN, 4.0).is_err());
        assert!(Uniform::new(2.0, 2.0).is_ok());
    }

    #[test]
    fn moments() {
        let u = Uniform::new(12.0, 36.0).unwrap();
        assert_eq!(u.mean(), 24.0);
        assert!((u.variance() - 48.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_and_quantile() {
        let u = Uniform::new(0.0, 10.0).unwrap();
        assert_eq!(u.cdf(-1.0), 0.0);
        assert_eq!(u.cdf(5.0), 0.5);
        assert_eq!(u.cdf(20.0), 1.0);
        assert_eq!(u.quantile(0.25).unwrap(), 2.5);
    }

    #[test]
    fn degenerate_interval_samples_constant() {
        let u = Uniform::new(3.0, 3.0).unwrap();
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(u.sample(&mut rng), 3.0);
        assert_eq!(u.variance(), 0.0);
    }

    proptest! {
        #[test]
        fn samples_within_bounds(lo in 0.0..100.0_f64, width in 0.0..100.0_f64, seed in any::<u64>()) {
            let u = Uniform::new(lo, lo + width).unwrap();
            let mut rng = SimRng::seed_from_u64(seed);
            for _ in 0..16 {
                let x = u.sample(&mut rng);
                prop_assert!(x >= lo && x <= lo + width);
            }
        }
    }
}
