//! Rare-event estimation: the crate-neutral statistics of importance
//! sampling and multilevel splitting.
//!
//! The paper's headline measures — data-loss probability and
//! unavailability of a petascale file system over a year — are *rare
//! events*: at realistic failure and repair rates a plain Monte-Carlo study
//! burns millions of replications before it sees a single loss, so its
//! relative confidence-interval half-width never converges. Two classical
//! variance-reduction families fix that, and this module provides the
//! estimator arithmetic both share:
//!
//! * **Importance sampling with failure biasing** — the simulation runs
//!   under a *tilted* law in which failures are common, and every
//!   replication carries the likelihood ratio `w = dP/dP'` of its sample
//!   path as a weight. The weighted observations stream into a
//!   [`WeightedRunning`] accumulator; [`weighted_probability`] turns it
//!   into a [`RareEventEstimate`] with a Student-t interval on the
//!   (self-normalised) weighted mean, the effective sample size, and the
//!   measured variance-reduction factor against naive Monte Carlo. The
//!   model-side mechanics — exponential rate tilting of failure activities
//!   in the SAN calendar kernel, with the log-likelihood ratio accumulated
//!   event by event — live in `sanet::rare`.
//! * **Multilevel splitting (RESTART-style, fixed effort)** — the rare
//!   event is factored through a chain of intermediate levels
//!   (`exposure depth 1, 2, …, loss`), each stage restarting trials from
//!   the states that reached the previous level, so the overall probability
//!   is the product of per-level conditional passage probabilities that are
//!   each *not* rare. [`splitting_probability`] combines the per-level
//!   [`LevelPassage`] counts into a [`RareEventEstimate`] using the
//!   standard independent-stages relative-variance approximation. The
//!   simulator-side driver lives in `raidsim::splitting`.
//!
//! [`naive_replications_for`] closes the loop: it projects how many plain
//! Monte-Carlo replications a probability would need to reach a relative
//! half-width target, which is the baseline both estimators' reported
//! [`RareEventEstimate::variance_reduction_factor`] is measured against.

use crate::special::std_normal_quantile;
use crate::stats::{ConfidenceInterval, WeightedRunning};
use crate::DistError;

/// The uniform result shape of every rare-event estimator: the probability
/// estimate with its confidence interval, how much statistical information
/// it rests on, and how it compares against naive Monte Carlo.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RareEventEstimate {
    /// Confidence interval on the estimated probability.
    pub interval: ConfidenceInterval,
    /// Effective sample size behind the estimate: Kish ESS for an
    /// importance-sampled run, the naive-equivalent sample count for a
    /// splitting run.
    pub effective_sample_size: f64,
    /// Replications (or splitting trials) actually spent.
    pub replications: usize,
    /// Observations with a non-zero contribution (importance sampling) or
    /// final-level hits (splitting).
    pub hits: u64,
    /// Measured variance-reduction factor: how many times more replications
    /// naive Monte Carlo would need to reach the same precision. `0.0` when
    /// the estimate is degenerate (no hits).
    pub variance_reduction_factor: f64,
}

impl RareEventEstimate {
    /// Relative half-width `half_width / point`, `f64::INFINITY` for a zero
    /// point estimate — the quantity precision targets are expressed in.
    pub fn relative_error(&self) -> f64 {
        self.interval.relative_half_width()
    }
}

/// Projects the number of naive Monte-Carlo replications needed to estimate
/// a probability to the given relative half-width at the given confidence
/// level: `z² (1 − p) / (p · rhw²)` — the Bernoulli-variance sample-size
/// formula. This is the baseline rare-event estimators are measured
/// against: at `p = 10⁻⁸` and ±10 % it is ~3.8 × 10¹⁰ replications.
///
/// # Errors
///
/// Returns [`DistError::InvalidProbability`] for `probability` outside
/// `(0, 1)` or a level outside `(0, 1)`, and
/// [`DistError::NonPositiveParameter`] for a non-positive relative
/// half-width.
pub fn naive_replications_for(
    probability: f64,
    relative_half_width: f64,
    level: f64,
) -> Result<f64, DistError> {
    if !(probability > 0.0 && probability < 1.0 && probability.is_finite()) {
        return Err(DistError::InvalidProbability { value: probability });
    }
    if !(level > 0.0 && level < 1.0) {
        return Err(DistError::InvalidProbability { value: level });
    }
    DistError::check_positive("relative_half_width", relative_half_width)?;
    let z = std_normal_quantile(0.5 + level / 2.0);
    Ok(z * z * (1.0 - probability) / (probability * relative_half_width * relative_half_width))
}

/// Turns an importance-sampled accumulator — each replication's indicator
/// (or probability-like measure) pushed with its likelihood-ratio weight —
/// into a [`RareEventEstimate`]: the Student-t interval on the unbiased
/// weighted mean ([`WeightedRunning::mean_product`]), the Kish effective
/// sample size, and the variance-reduction factor
/// `p(1 − p) / var(w·x)` — the ratio of the naive per-sample Bernoulli
/// variance to the weighted estimator's realised per-sample variance,
/// i.e. how many times more replications naive Monte Carlo would need for
/// the same standard error.
///
/// # Errors
///
/// Returns [`DistError::EmptyData`] with fewer than two observations and
/// [`DistError::InvalidProbability`] for a level outside `(0, 1)`.
pub fn weighted_probability(
    acc: &WeightedRunning,
    level: f64,
) -> Result<RareEventEstimate, DistError> {
    let interval = acc.confidence_interval(level)?;
    let p = interval.point;
    let per_sample_variance = acc.product_variance();
    let variance_reduction_factor = if p > 0.0 && p < 1.0 && per_sample_variance > 0.0 {
        p * (1.0 - p) / per_sample_variance
    } else {
        0.0
    };
    let effective_sample_size = acc.effective_sample_size();
    crate::telemetry::gauge_set(crate::telemetry::MetricId::RareWeightEss, effective_sample_size);
    Ok(RareEventEstimate {
        interval,
        effective_sample_size,
        replications: acc.count() as usize,
        hits: acc.nonzero_count(),
        variance_reduction_factor,
    })
}

/// One stage of a multilevel-splitting run: how many of the stage's trials
/// reached the next level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelPassage {
    /// Trials that reached the next level.
    pub hits: usize,
    /// Trials executed at this stage.
    pub trials: usize,
}

/// Combines per-level passage counts of a fixed-effort splitting run into a
/// [`RareEventEstimate`]: the probability is the product of the per-level
/// conditional passage fractions `p̂ₖ = hitsₖ / trialsₖ`, and the interval
/// uses the standard independent-stages relative-variance approximation
/// `δ² ≈ Σₖ (1 − p̂ₖ) / (trialsₖ · p̂ₖ)` (normal interval `p̂ · (1 ± z·δ)`).
///
/// The effective sample size reported is the *naive-equivalent* count: the
/// number of plain Bernoulli(p) samples that would produce the same
/// relative variance, `(1 − p̂) / (p̂ · δ²)`; the variance-reduction factor
/// is that count divided by the trials actually spent.
///
/// A run whose final level recorded zero hits yields a **zero point
/// estimate with a one-sided upper bound in `half_width`**: the product of
/// the resolved stage fractions times the "rule of three" bound `3/N` of
/// the first zero-hit stage (deeper, unobserved stages are bounded by 1).
/// The relative error of such an estimate is infinite, so a stopping rule
/// never declares it met (see
/// [`StoppingRule::met_by`](crate::stats::StoppingRule::met_by)) — the
/// caller sees "below ~`upper` at 95 %, not resolved at this effort",
/// never a vacuous claim of precision. ESS and the variance-reduction
/// factor are zero.
///
/// # Errors
///
/// Returns [`DistError::EmptyData`] for an empty level list,
/// [`DistError::InvalidProbability`] for a level outside `(0, 1)`, and
/// [`DistError::DegenerateData`] if any stage has zero trials or more hits
/// than trials.
pub fn splitting_probability(
    levels: &[LevelPassage],
    level: f64,
) -> Result<RareEventEstimate, DistError> {
    if levels.is_empty() {
        return Err(DistError::EmptyData);
    }
    if !(level > 0.0 && level < 1.0) {
        return Err(DistError::InvalidProbability { value: level });
    }
    let mut probability = 1.0_f64;
    let mut relative_variance = 0.0_f64;
    let mut replications = 0usize;
    for stage in levels {
        if stage.trials == 0 || stage.hits > stage.trials {
            return Err(DistError::DegenerateData {
                reason: "splitting stage needs 0 <= hits <= trials with trials > 0",
            });
        }
        replications += stage.trials;
        let p_k = stage.hits as f64 / stage.trials as f64;
        probability *= p_k;
        if p_k > 0.0 {
            relative_variance += (1.0 - p_k) / (stage.trials as f64 * p_k);
        }
    }
    let hits = levels.last().map_or(0, |s| s.hits as u64);
    if probability == 0.0 {
        // One-sided upper bound: resolved stages contribute their point
        // fractions, the first zero-hit stage its rule-of-three bound. At
        // tiny trial counts the product can exceed 1; a probability bound
        // above 1 carries no information, so clamp there.
        let mut upper = 1.0;
        for stage in levels {
            if stage.hits == 0 {
                upper *= 3.0 / stage.trials as f64;
                break;
            }
            upper *= stage.hits as f64 / stage.trials as f64;
        }
        return Ok(RareEventEstimate {
            interval: ConfidenceInterval {
                point: 0.0,
                half_width: upper.min(1.0),
                level,
                samples: replications as u64,
            },
            effective_sample_size: 0.0,
            replications,
            hits,
            variance_reduction_factor: 0.0,
        });
    }
    let z = std_normal_quantile(0.5 + level / 2.0);
    let delta = relative_variance.sqrt();
    // The normal interval around a probability is clipped at 1: the upper
    // endpoint of a probability estimate can never meaningfully exceed it
    // (the interval stays honest in winner selections that minimise the
    // upper bound).
    let interval = ConfidenceInterval {
        point: probability,
        half_width: (z * probability * delta).min(1.0 - probability),
        level,
        samples: replications as u64,
    };
    let (effective_sample_size, variance_reduction_factor) = if relative_variance > 0.0 {
        let naive_equivalent = (1.0 - probability) / (probability * relative_variance);
        (naive_equivalent, naive_equivalent / replications as f64)
    } else {
        // Every stage passed with certainty: the estimate is exact.
        (replications as f64, 1.0)
    };
    Ok(RareEventEstimate {
        interval,
        effective_sample_size,
        replications,
        hits,
        variance_reduction_factor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_replication_projection_matches_the_formula() {
        // p = 1e-4, ±10 % at 95 %: 1.96² · (1 − 1e-4) / (1e-4 · 0.01).
        let n = naive_replications_for(1e-4, 0.1, 0.95).unwrap();
        let z = std_normal_quantile(0.975);
        assert!((n - z * z * (1.0 - 1e-4) / (1e-4 * 0.01)).abs() / n < 1e-12);
        assert!(n > 3.8e6 && n < 3.9e6, "projection {n}");

        // The 1e-8 regime the subsystem exists for needs ~10¹⁰ naive runs.
        let deep = naive_replications_for(1e-8, 0.1, 0.95).unwrap();
        assert!(deep > 3.8e10, "projection {deep}");

        assert!(naive_replications_for(0.0, 0.1, 0.95).is_err());
        assert!(naive_replications_for(1.0, 0.1, 0.95).is_err());
        assert!(naive_replications_for(f64::NAN, 0.1, 0.95).is_err());
        assert!(naive_replications_for(1e-4, 0.0, 0.95).is_err());
        assert!(naive_replications_for(1e-4, 0.1, 1.0).is_err());
    }

    #[test]
    #[cfg_attr(miri, ignore)] // heavy sampling loop
    fn weighted_probability_reduces_to_bernoulli_for_unit_weights() {
        // 1000 unit-weight Bernoulli observations with 100 hits: the
        // estimate is 0.1 and the VRF of "importance sampling that did not
        // bias anything" must be ~1.
        let mut acc = WeightedRunning::new();
        for i in 0..1000 {
            acc.push(if i % 10 == 0 { 1.0 } else { 0.0 }, 1.0);
        }
        let estimate = weighted_probability(&acc, 0.95).unwrap();
        assert!((estimate.interval.point - 0.1).abs() < 1e-12);
        assert_eq!(estimate.replications, 1000);
        assert_eq!(estimate.hits, 100);
        assert_eq!(estimate.effective_sample_size, 1000.0);
        assert!(
            (estimate.variance_reduction_factor - 1.0).abs() < 0.01,
            "unit weights give VRF ~1, got {}",
            estimate.variance_reduction_factor
        );
        assert!(estimate.relative_error() > 0.0);
    }

    #[test]
    fn weighted_probability_rewards_good_biasing() {
        // A well-tilted estimator sees the event every run with small
        // weights: same point estimate as Bernoulli(1e-3), far less
        // variance per replication.
        let mut acc = WeightedRunning::new();
        for i in 0..200 {
            // Weights jitter around 1e-3 so the weighted mean is ~1e-3.
            let w = 1e-3 * (1.0 + 0.1 * ((i % 7) as f64 - 3.0) / 3.0);
            acc.push(1.0, w);
        }
        let estimate = weighted_probability(&acc, 0.95).unwrap();
        assert!((estimate.interval.point - 1e-3).abs() < 1e-4);
        assert!(estimate.relative_error() < 0.01);
        assert!(
            estimate.variance_reduction_factor > 100.0,
            "VRF {} must beat naive by orders of magnitude",
            estimate.variance_reduction_factor
        );
    }

    #[test]
    fn splitting_combines_level_passages() {
        // Three stages at 1/10 each: p = 1e-3 from 3000 trials.
        let levels = [
            LevelPassage { hits: 100, trials: 1000 },
            LevelPassage { hits: 100, trials: 1000 },
            LevelPassage { hits: 100, trials: 1000 },
        ];
        let estimate = splitting_probability(&levels, 0.95).unwrap();
        assert!((estimate.interval.point - 1e-3).abs() < 1e-15);
        assert_eq!(estimate.replications, 3000);
        assert_eq!(estimate.hits, 100);
        // δ² = 3 · 0.9 / 100 = 0.027; half-width = 1.96 · p · δ.
        let delta = (3.0 * 0.9 / 100.0_f64).sqrt();
        let z = std_normal_quantile(0.975);
        assert!((estimate.interval.half_width - z * 1e-3 * delta).abs() < 1e-12);
        // Naive equivalent: (1 − p)/(p δ²) ≈ 37 000 samples from 3000
        // trials — a >10x variance reduction.
        assert!(estimate.effective_sample_size > 30_000.0);
        assert!(estimate.variance_reduction_factor > 10.0);
    }

    #[test]
    fn splitting_zero_hits_reports_an_upper_bound_not_a_confident_zero() {
        let levels =
            [LevelPassage { hits: 50, trials: 100 }, LevelPassage { hits: 0, trials: 100 }];
        let estimate = splitting_probability(&levels, 0.95).unwrap();
        assert_eq!(estimate.interval.point, 0.0);
        // Rule of three through the resolved stage: 0.5 · 3/100.
        assert!((estimate.interval.half_width - 0.5 * 0.03).abs() < 1e-15);
        assert_eq!(estimate.effective_sample_size, 0.0);
        assert_eq!(estimate.variance_reduction_factor, 0.0);
        assert_eq!(estimate.hits, 0);
        assert_eq!(estimate.replications, 200);
        assert_eq!(estimate.relative_error(), f64::INFINITY);
        // And the stopping machinery refuses to call this precise.
        let rule = crate::stats::StoppingRule::new(0.1, 2, 10).unwrap();
        assert!(!rule.met_by(&estimate.interval));

        // A zero-hit *first* stage bounds deeper unobserved stages by 1.
        let first = [LevelPassage { hits: 0, trials: 300 }, LevelPassage { hits: 0, trials: 300 }];
        let estimate = splitting_probability(&first, 0.95).unwrap();
        assert!((estimate.interval.half_width - 0.01).abs() < 1e-15);
    }

    /// Regression: the reported bounds are probabilities — at minimal
    /// trial counts neither the rule-of-three bound nor the normal upper
    /// endpoint may exceed 1.
    #[test]
    fn splitting_bounds_never_exceed_one() {
        // Zero-hit branch: 2/2 then 0/2 would give 1.0 · 3/2 = 1.5 raw.
        let zero = [LevelPassage { hits: 2, trials: 2 }, LevelPassage { hits: 0, trials: 2 }];
        let estimate = splitting_probability(&zero, 0.95).unwrap();
        assert_eq!(estimate.interval.point, 0.0);
        assert_eq!(estimate.interval.half_width, 1.0);

        // Resolved branch: 2/2 then 1/2 gives p = 0.5 with a raw normal
        // half-width of ~0.69.
        let wide = [LevelPassage { hits: 2, trials: 2 }, LevelPassage { hits: 1, trials: 2 }];
        let estimate = splitting_probability(&wide, 0.95).unwrap();
        assert!(estimate.interval.upper() <= 1.0, "upper {}", estimate.interval.upper());
        assert_eq!(estimate.interval.upper(), 1.0);
    }

    #[test]
    fn splitting_certain_passage_is_exact() {
        let levels = [LevelPassage { hits: 64, trials: 64 }];
        let estimate = splitting_probability(&levels, 0.95).unwrap();
        assert_eq!(estimate.interval.point, 1.0);
        assert_eq!(estimate.interval.half_width, 0.0);
        assert_eq!(estimate.variance_reduction_factor, 1.0);
    }

    #[test]
    fn splitting_validates_inputs() {
        assert!(matches!(splitting_probability(&[], 0.95), Err(DistError::EmptyData)));
        let bad_trials = [LevelPassage { hits: 0, trials: 0 }];
        assert!(matches!(
            splitting_probability(&bad_trials, 0.95),
            Err(DistError::DegenerateData { .. })
        ));
        let bad_hits = [LevelPassage { hits: 5, trials: 2 }];
        assert!(matches!(
            splitting_probability(&bad_hits, 0.95),
            Err(DistError::DegenerateData { .. })
        ));
        let ok = [LevelPassage { hits: 1, trials: 2 }];
        assert!(splitting_probability(&ok, 0.0).is_err());
        assert!(splitting_probability(&ok, 1.0).is_err());
    }
}
