use serde::{Deserialize, Serialize};

use crate::{
    Deterministic, DistError, Empirical, Exponential, Gamma, LogNormal, SimRng, Uniform, Weibull,
};

/// Common interface of all continuous, non-negative lifetime distributions
/// used by the dependability models.
///
/// Every distribution in this crate models a duration in **hours** (failure
/// inter-arrival times, repair times, rebuild times). All methods are cheap;
/// sampling never allocates.
///
/// # Example
///
/// ```
/// use probdist::{Distribution, Exponential, SimRng};
///
/// # fn main() -> Result<(), probdist::DistError> {
/// let repair = Exponential::from_mean(4.0)?; // 4-hour mean repair time
/// let mut rng = SimRng::seed_from_u64(1);
/// let t = repair.sample(&mut rng);
/// assert!(t >= 0.0);
/// assert!((repair.mean() - 4.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub trait Distribution {
    /// Draws one sample from the distribution.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The mean (expected value) of the distribution.
    fn mean(&self) -> f64;

    /// The variance of the distribution.
    fn variance(&self) -> f64;

    /// Cumulative distribution function `P(X <= x)`.
    ///
    /// Values of `x` below the support return `0.0`.
    fn cdf(&self, x: f64) -> f64;

    /// Probability density function at `x`.
    ///
    /// Point-mass distributions (e.g. [`Deterministic`]) return `0.0`
    /// everywhere except at the atom, where the density is undefined; callers
    /// that need a likelihood should use [`Distribution::cdf`] differences.
    fn pdf(&self, x: f64) -> f64;

    /// Survival function `P(X > x) = 1 - cdf(x)`.
    fn survival(&self, x: f64) -> f64 {
        (1.0 - self.cdf(x)).clamp(0.0, 1.0)
    }

    /// Hazard (instantaneous failure) rate `pdf(x) / survival(x)`.
    ///
    /// Returns `f64::INFINITY` when the survival probability underflows to
    /// zero while the density is still positive.
    fn hazard(&self, x: f64) -> f64 {
        let s = self.survival(x);
        let f = self.pdf(x);
        if s <= 0.0 {
            if f > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            f / s
        }
    }

    /// Quantile (inverse CDF) at probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidProbability`] if `p` is not in `[0, 1]`.
    fn quantile(&self, p: f64) -> Result<f64, DistError>;

    /// Standard deviation, `sqrt(variance)`.
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// A closed enum over every distribution in the crate, allowing models to be
/// configured with heterogeneous distributions without trait objects.
///
/// `Dist` implements [`Distribution`] by delegation and is serialisable so
/// experiment configurations (Table 5 parameter sweeps) can be stored and
/// replayed.
///
/// # Example
///
/// ```
/// use probdist::{Dist, Distribution, Weibull, Deterministic, SimRng};
///
/// # fn main() -> Result<(), probdist::DistError> {
/// let failure: Dist = Weibull::from_shape_and_mean(0.7, 300_000.0)?.into();
/// let repair: Dist = Deterministic::new(4.0)?.into();
/// let mut rng = SimRng::seed_from_u64(3);
/// assert!(failure.sample(&mut rng) >= 0.0);
/// assert_eq!(repair.mean(), 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Dist {
    /// Exponential (memoryless) distribution.
    Exponential(Exponential),
    /// Weibull distribution.
    Weibull(Weibull),
    /// Deterministic (fixed delay) distribution.
    Deterministic(Deterministic),
    /// Log-normal distribution.
    LogNormal(LogNormal),
    /// Gamma distribution.
    Gamma(Gamma),
    /// Continuous uniform distribution.
    Uniform(Uniform),
    /// Empirical distribution resampling observed data.
    Empirical(Empirical),
}

macro_rules! delegate {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            Dist::Exponential($inner) => $body,
            Dist::Weibull($inner) => $body,
            Dist::Deterministic($inner) => $body,
            Dist::LogNormal($inner) => $body,
            Dist::Gamma($inner) => $body,
            Dist::Uniform($inner) => $body,
            Dist::Empirical($inner) => $body,
        }
    };
}

impl Distribution for Dist {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        delegate!(self, d => d.sample(rng))
    }

    fn mean(&self) -> f64 {
        delegate!(self, d => d.mean())
    }

    fn variance(&self) -> f64 {
        delegate!(self, d => d.variance())
    }

    fn cdf(&self, x: f64) -> f64 {
        delegate!(self, d => d.cdf(x))
    }

    fn pdf(&self, x: f64) -> f64 {
        delegate!(self, d => d.pdf(x))
    }

    fn quantile(&self, p: f64) -> Result<f64, DistError> {
        delegate!(self, d => d.quantile(p))
    }
}

impl Dist {
    /// Short human-readable name of the underlying distribution family.
    pub fn family(&self) -> &'static str {
        match self {
            Dist::Exponential(_) => "exponential",
            Dist::Weibull(_) => "weibull",
            Dist::Deterministic(_) => "deterministic",
            Dist::LogNormal(_) => "lognormal",
            Dist::Gamma(_) => "gamma",
            Dist::Uniform(_) => "uniform",
            Dist::Empirical(_) => "empirical",
        }
    }
}

impl From<Exponential> for Dist {
    fn from(d: Exponential) -> Self {
        Dist::Exponential(d)
    }
}

impl From<Weibull> for Dist {
    fn from(d: Weibull) -> Self {
        Dist::Weibull(d)
    }
}

impl From<Deterministic> for Dist {
    fn from(d: Deterministic) -> Self {
        Dist::Deterministic(d)
    }
}

impl From<LogNormal> for Dist {
    fn from(d: LogNormal) -> Self {
        Dist::LogNormal(d)
    }
}

impl From<Gamma> for Dist {
    fn from(d: Gamma) -> Self {
        Dist::Gamma(d)
    }
}

impl From<Uniform> for Dist {
    fn from(d: Uniform) -> Self {
        Dist::Uniform(d)
    }
}

impl From<Empirical> for Dist {
    fn from(d: Empirical) -> Self {
        Dist::Empirical(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_enum_delegates() {
        let exp = Exponential::from_mean(2.0).unwrap();
        let d: Dist = exp.into();
        assert_eq!(d.mean(), exp.mean());
        assert_eq!(d.variance(), exp.variance());
        assert_eq!(d.cdf(1.0), exp.cdf(1.0));
        assert_eq!(d.pdf(1.0), exp.pdf(1.0));
        assert_eq!(d.quantile(0.5).unwrap(), exp.quantile(0.5).unwrap());
        assert_eq!(d.family(), "exponential");
    }

    #[test]
    fn dist_enum_samples_match_inner_with_same_rng_state() {
        let w = Weibull::new(0.7, 1000.0).unwrap();
        let d: Dist = w.into();
        let mut r1 = SimRng::seed_from_u64(10);
        let mut r2 = SimRng::seed_from_u64(10);
        assert_eq!(w.sample(&mut r1), d.sample(&mut r2));
    }

    #[test]
    fn family_names_cover_all_variants() {
        let variants: Vec<Dist> = vec![
            Exponential::from_mean(1.0).unwrap().into(),
            Weibull::new(1.0, 1.0).unwrap().into(),
            Deterministic::new(1.0).unwrap().into(),
            LogNormal::new(0.0, 1.0).unwrap().into(),
            Gamma::new(2.0, 1.0).unwrap().into(),
            Uniform::new(0.0, 1.0).unwrap().into(),
            Empirical::new(vec![1.0, 2.0]).unwrap().into(),
        ];
        let names: Vec<&str> = variants.iter().map(super::Dist::family).collect();
        assert_eq!(
            names,
            vec![
                "exponential",
                "weibull",
                "deterministic",
                "lognormal",
                "gamma",
                "uniform",
                "empirical"
            ]
        );
    }

    #[test]
    fn survival_plus_cdf_is_one() {
        let d: Dist = Exponential::from_mean(3.0).unwrap().into();
        for x in [0.0, 0.5, 1.0, 10.0] {
            assert!((d.survival(x) + d.cdf(x) - 1.0).abs() < 1e-12);
        }
    }
}
