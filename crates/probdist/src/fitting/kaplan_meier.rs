use serde::{Deserialize, Serialize};

use crate::fitting::{validate_lifetimes, Lifetime};
use crate::DistError;

/// One point of a Kaplan–Meier survival curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurvivalPoint {
    /// Event time (hours).
    pub time: f64,
    /// Estimated survival probability `S(t)` just after `time`.
    pub survival: f64,
    /// Number of units still at risk just before `time`.
    pub at_risk: usize,
    /// Number of failures observed at `time`.
    pub failures: usize,
}

/// Non-parametric Kaplan–Meier estimator of the survival function from
/// right-censored lifetime data.
///
/// Used to sanity-check the parametric Weibull fit on the disk-replacement
/// log and to visualise infant mortality (a survival curve that drops
/// steeply early and then flattens).
///
/// # Example
///
/// ```
/// use probdist::fitting::{KaplanMeier, Lifetime};
///
/// # fn main() -> Result<(), probdist::DistError> {
/// let data = vec![
///     Lifetime::failure(100.0)?,
///     Lifetime::censored(150.0)?,
///     Lifetime::failure(200.0)?,
///     Lifetime::censored(250.0)?,
/// ];
/// let km = KaplanMeier::fit(&data)?;
/// assert!(km.survival_at(99.0) == 1.0);
/// assert!(km.survival_at(300.0) < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KaplanMeier {
    points: Vec<SurvivalPoint>,
    total_units: usize,
    total_failures: usize,
}

impl KaplanMeier {
    /// Fits the estimator to a set of right-censored lifetimes.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::EmptyData`] for an empty data set and
    /// [`DistError::DegenerateData`] when no failures were observed.
    pub fn fit(data: &[Lifetime]) -> Result<Self, DistError> {
        let total_failures = validate_lifetimes(data, 1)?;
        let mut sorted: Vec<Lifetime> = data.to_vec();
        // `total_cmp` rather than `partial_cmp().expect(..)`: the Lifetime
        // constructors guarantee finite times, but the estimator itself must
        // not be able to panic on any input.
        sorted.sort_by(|a, b| a.time().total_cmp(&b.time()));

        let mut points = Vec::new();
        let mut survival = 1.0;
        let mut at_risk = sorted.len();
        let mut i = 0;
        while i < sorted.len() {
            let t = sorted[i].time();
            // Group ties at the same time.
            let mut failures_here = 0;
            let mut removed_here = 0;
            while i < sorted.len() && sorted[i].time() == t {
                if sorted[i].is_failure() {
                    failures_here += 1;
                }
                removed_here += 1;
                i += 1;
            }
            if failures_here > 0 {
                survival *= 1.0 - failures_here as f64 / at_risk as f64;
                points.push(SurvivalPoint { time: t, survival, at_risk, failures: failures_here });
            }
            at_risk -= removed_here;
        }

        Ok(KaplanMeier { points, total_units: data.len(), total_failures })
    }

    /// The survival-curve step points (only times at which failures
    /// occurred).
    pub fn points(&self) -> &[SurvivalPoint] {
        &self.points
    }

    /// Estimated survival probability at time `t` (step function, right
    /// continuous).
    pub fn survival_at(&self, t: f64) -> f64 {
        let mut s = 1.0;
        for p in &self.points {
            if p.time <= t {
                s = p.survival;
            } else {
                break;
            }
        }
        s
    }

    /// Total number of units in the study.
    pub fn total_units(&self) -> usize {
        self.total_units
    }

    /// Total number of observed failures.
    pub fn total_failures(&self) -> usize {
        self.total_failures
    }

    /// Median survival time, if the survival curve crosses 0.5 within the
    /// observed window.
    pub fn median_survival(&self) -> Option<f64> {
        self.points.iter().find(|p| p.survival <= 0.5).map(|p| p.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lt(time: f64, failed: bool) -> Lifetime {
        if failed {
            Lifetime::failure(time).unwrap()
        } else {
            Lifetime::censored(time).unwrap()
        }
    }

    #[test]
    fn rejects_empty_and_all_censored() {
        assert!(KaplanMeier::fit(&[]).is_err());
        assert!(KaplanMeier::fit(&[lt(1.0, false), lt(2.0, false)]).is_err());
    }

    #[test]
    fn textbook_example_without_censoring() {
        // With no censoring KM reduces to the empirical survival function.
        let data: Vec<Lifetime> = [1.0, 2.0, 3.0, 4.0].iter().map(|&t| lt(t, true)).collect();
        let km = KaplanMeier::fit(&data).unwrap();
        assert_eq!(km.survival_at(0.5), 1.0);
        assert!((km.survival_at(1.0) - 0.75).abs() < 1e-12);
        assert!((km.survival_at(2.5) - 0.5).abs() < 1e-12);
        assert!((km.survival_at(4.0) - 0.0).abs() < 1e-12);
        // The curve first reaches 0.5 at the second failure time.
        assert_eq!(km.median_survival(), Some(2.0));
    }

    #[test]
    fn textbook_example_with_censoring() {
        // Classic example: failures at 6, 7; censored at 6.5, 8.
        let data = vec![lt(6.0, true), lt(6.5, false), lt(7.0, true), lt(8.0, false)];
        let km = KaplanMeier::fit(&data).unwrap();
        // S(6) = 1 - 1/4 = 0.75
        assert!((km.survival_at(6.0) - 0.75).abs() < 1e-12);
        // at t=7, at-risk = 2 -> S(7) = 0.75 * (1 - 1/2) = 0.375
        assert!((km.survival_at(7.0) - 0.375).abs() < 1e-12);
        assert_eq!(km.total_failures(), 2);
        assert_eq!(km.total_units(), 4);
    }

    #[test]
    fn tied_failure_times_are_grouped() {
        let data = vec![lt(5.0, true), lt(5.0, true), lt(10.0, true), lt(10.0, false)];
        let km = KaplanMeier::fit(&data).unwrap();
        // S(5) = 1 - 2/4 = 0.5
        assert!((km.survival_at(5.0) - 0.5).abs() < 1e-12);
        assert_eq!(km.points().len(), 2);
        assert_eq!(km.points()[0].failures, 2);
    }

    #[test]
    fn survival_is_monotone_nonincreasing() {
        let data: Vec<Lifetime> = (1..50).map(|i| lt(i as f64 * 3.0, i % 3 != 0)).collect();
        let km = KaplanMeier::fit(&data).unwrap();
        let mut last = 1.0;
        for p in km.points() {
            assert!(p.survival <= last + 1e-12);
            last = p.survival;
        }
    }

    #[test]
    fn median_none_when_curve_stays_above_half() {
        let data =
            vec![lt(1.0, true), lt(2.0, false), lt(3.0, false), lt(4.0, false), lt(5.0, false)];
        let km = KaplanMeier::fit(&data).unwrap();
        assert_eq!(km.median_survival(), None);
    }
}
