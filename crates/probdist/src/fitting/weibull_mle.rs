use serde::{Deserialize, Serialize};

use crate::fitting::{validate_lifetimes, Lifetime};
use crate::{DistError, Weibull};

/// Result of a maximum-likelihood Weibull fit to right-censored lifetimes.
///
/// This mirrors the paper's Table 4 analysis: "Survival analysis of the
/// disk failures (n = 480) using Weibull regression … gives the shape
/// parameter as 0.696 with standard deviation of 0.192".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeibullFit {
    /// Estimated shape parameter `β`.
    pub shape: f64,
    /// Estimated scale parameter `η` (hours).
    pub scale: f64,
    /// Asymptotic standard error of the shape estimate.
    pub shape_std_error: f64,
    /// Number of observed failures used in the fit.
    pub failures: usize,
    /// Number of censored observations.
    pub censored: usize,
    /// Maximised log-likelihood value.
    pub log_likelihood: f64,
}

impl WeibullFit {
    /// The fitted distribution.
    ///
    /// # Errors
    ///
    /// Returns an error if the fitted parameters are degenerate (should not
    /// happen for a successful fit).
    pub fn distribution(&self) -> Result<Weibull, DistError> {
        Weibull::new(self.shape, self.scale)
    }

    /// The mean lifetime (MTBF, hours) implied by the fit.
    pub fn mean_lifetime(&self) -> f64 {
        self.scale * crate::special::gamma_fn(1.0 + 1.0 / self.shape)
    }

    /// An approximate 95 % confidence interval on the shape parameter.
    pub fn shape_ci95(&self) -> (f64, f64) {
        (self.shape - 1.96 * self.shape_std_error, self.shape + 1.96 * self.shape_std_error)
    }
}

/// Fits a Weibull distribution to right-censored lifetimes by maximum
/// likelihood.
///
/// The scale parameter is profiled out analytically: for a fixed shape `β`,
/// the MLE of `η^β` is `Σ tᵢ^β / r` where `r` is the number of observed
/// failures. The remaining one-dimensional score equation in `β` is solved
/// by bisection (guaranteed convergence since the profile score is
/// monotone decreasing in `β` for valid data).
///
/// # Errors
///
/// * [`DistError::EmptyData`] if `data` is empty.
/// * [`DistError::DegenerateData`] if fewer than two failures are observed
///   or all observed failure times are identical.
/// * [`DistError::NoConvergence`] if the bisection cannot bracket a root
///   (pathological data).
pub fn fit_weibull(data: &[Lifetime]) -> Result<WeibullFit, DistError> {
    let failures = validate_lifetimes(data, 2)?;
    let censored = data.len() - failures;

    let failure_times: Vec<f64> =
        data.iter().filter(|l| l.is_failure()).map(super::Lifetime::time).collect();
    let first = failure_times[0];
    if failure_times.iter().all(|&t| (t - first).abs() < 1e-12) {
        return Err(DistError::DegenerateData {
            reason: "all observed failure times are identical",
        });
    }

    // Profile score function in the shape parameter.
    let score = |beta: f64| -> f64 {
        let mut sum_tb = 0.0;
        let mut sum_tb_ln = 0.0;
        for l in data {
            let tb = l.time().powf(beta);
            sum_tb += tb;
            sum_tb_ln += tb * l.time().ln();
        }
        let mean_ln_fail: f64 = failure_times.iter().map(|t| t.ln()).sum::<f64>() / failures as f64;
        sum_tb_ln / sum_tb - 1.0 / beta - mean_ln_fail
    };

    // Bracket the root: score(β) is increasing in β towards a positive
    // limit and tends to -inf as β -> 0+, so scan until the sign changes.
    // The `t^β` terms can overflow to infinity for extreme observation
    // times, turning the score into NaN — treat that as non-convergence
    // rather than bisecting on garbage.
    let mut lo = 0.01;
    let mut hi = 0.1;
    let mut iterations = 0usize;
    loop {
        let s = score(hi);
        if !s.is_finite() {
            return Err(DistError::NoConvergence { iterations });
        }
        if s >= 0.0 {
            break;
        }
        lo = hi;
        hi *= 2.0;
        iterations += 1;
        if iterations > 60 {
            return Err(DistError::NoConvergence { iterations });
        }
    }

    // Bisection.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if score(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-10 * hi {
            break;
        }
    }
    let shape = 0.5 * (lo + hi);

    // Profile MLE of the scale.
    let sum_tb: f64 = data.iter().map(|l| l.time().powf(shape)).sum();
    let scale = (sum_tb / failures as f64).powf(1.0 / shape);

    let log_likelihood = weibull_log_likelihood(data, shape, scale);

    // Asymptotic standard error of the shape from the observed information
    // (numerical second derivative of the profile log-likelihood).
    let h = shape * 1e-4;
    let ll = |b: f64| -> f64 {
        let stb: f64 = data.iter().map(|l| l.time().powf(b)).sum();
        let sc = (stb / failures as f64).powf(1.0 / b);
        weibull_log_likelihood(data, b, sc)
    };
    let d2 = (ll(shape + h) - 2.0 * log_likelihood + ll(shape - h)) / (h * h);
    let shape_std_error = if d2 < 0.0 { (-1.0 / d2).sqrt() } else { f64::NAN };

    Ok(WeibullFit { shape, scale, shape_std_error, failures, censored, log_likelihood })
}

/// Log-likelihood of right-censored data under `Weibull(shape, scale)`.
fn weibull_log_likelihood(data: &[Lifetime], shape: f64, scale: f64) -> f64 {
    let mut ll = 0.0;
    for l in data {
        let z = l.time() / scale;
        if l.is_failure() {
            ll += shape.ln() - scale.ln() + (shape - 1.0) * z.ln() - z.powf(shape);
        } else {
            ll -= z.powf(shape);
        }
    }
    ll
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Distribution, SimRng};

    fn simulate_lifetimes(
        shape: f64,
        scale: f64,
        n: usize,
        censor_at: f64,
        seed: u64,
    ) -> Vec<Lifetime> {
        let w = Weibull::new(shape, scale).unwrap();
        let mut rng = SimRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let t = w.sample(&mut rng);
                if t < censor_at {
                    Lifetime::failure(t).unwrap()
                } else {
                    Lifetime::censored(censor_at).unwrap()
                }
            })
            .collect()
    }

    #[test]
    fn recovers_parameters_without_censoring() {
        let data = simulate_lifetimes(1.5, 100.0, 4000, f64::INFINITY, 1);
        let fit = fit_weibull(&data).unwrap();
        assert!((fit.shape - 1.5).abs() < 0.08, "shape {}", fit.shape);
        assert!((fit.scale - 100.0).abs() / 100.0 < 0.05, "scale {}", fit.scale);
        assert_eq!(fit.censored, 0);
        assert_eq!(fit.failures, 4000);
    }

    #[test]
    fn recovers_infant_mortality_shape_with_heavy_censoring() {
        // This mirrors the disk study: Weibull(0.7) lifetimes with mean
        // 300 000 h observed for only ~2000 h, so almost all units are
        // censored — exactly the situation of Table 4.
        let w = Weibull::from_shape_and_mean(0.7, 300_000.0).unwrap();
        let data = simulate_lifetimes(0.7, w.scale(), 20_000, 2_000.0, 2);
        let fit = fit_weibull(&data).unwrap();
        assert!(fit.censored > fit.failures, "most units should be censored");
        assert!((fit.shape - 0.7).abs() < 0.1, "shape {}", fit.shape);
    }

    #[test]
    fn shape_std_error_is_finite_and_positive() {
        let data = simulate_lifetimes(0.9, 500.0, 500, 800.0, 3);
        let fit = fit_weibull(&data).unwrap();
        assert!(fit.shape_std_error.is_finite());
        assert!(fit.shape_std_error > 0.0);
        let (lo, hi) = fit.shape_ci95();
        assert!(lo < fit.shape && fit.shape < hi);
    }

    #[test]
    fn errors_on_degenerate_data() {
        assert!(matches!(fit_weibull(&[]), Err(DistError::EmptyData)));
        let one = vec![Lifetime::failure(5.0).unwrap()];
        assert!(matches!(fit_weibull(&one), Err(DistError::DegenerateData { .. })));
        let identical = vec![Lifetime::failure(5.0).unwrap(), Lifetime::failure(5.0).unwrap()];
        assert!(matches!(fit_weibull(&identical), Err(DistError::DegenerateData { .. })));
        let censored_only =
            vec![Lifetime::censored(5.0).unwrap(), Lifetime::censored(6.0).unwrap()];
        assert!(matches!(fit_weibull(&censored_only), Err(DistError::DegenerateData { .. })));
        // One failure among censored observations is still too few to fit
        // both parameters.
        let one_failure = vec![Lifetime::failure(5.0).unwrap(), Lifetime::censored(9.0).unwrap()];
        assert!(matches!(fit_weibull(&one_failure), Err(DistError::DegenerateData { .. })));
    }

    #[test]
    fn overflowing_observation_times_are_a_typed_error_not_garbage() {
        // `t^β` overflows during root bracketing for times near f64::MAX,
        // which used to make the score NaN and silently terminate the
        // bracket scan on an arbitrary interval.
        // Nearly identical huge failure times: the profile score stays
        // negative (≈ −1/β) until far beyond the β at which t^β overflows.
        let data = vec![Lifetime::failure(9.99e307).unwrap(), Lifetime::failure(1e308).unwrap()];
        assert!(matches!(fit_weibull(&data), Err(DistError::NoConvergence { .. })));
    }

    #[test]
    fn exponential_data_gives_shape_near_one() {
        let data = simulate_lifetimes(1.0, 50.0, 3000, f64::INFINITY, 4);
        let fit = fit_weibull(&data).unwrap();
        assert!((fit.shape - 1.0).abs() < 0.06, "shape {}", fit.shape);
        assert!((fit.mean_lifetime() - 50.0).abs() / 50.0 < 0.06);
    }

    #[test]
    fn distribution_roundtrip() {
        let data = simulate_lifetimes(1.2, 10.0, 1000, f64::INFINITY, 5);
        let fit = fit_weibull(&data).unwrap();
        let d = fit.distribution().unwrap();
        assert!((d.shape() - fit.shape).abs() < 1e-12);
        assert!((d.scale() - fit.scale).abs() < 1e-12);
    }

    #[test]
    fn log_likelihood_is_maximised_at_fit() {
        let data = simulate_lifetimes(0.8, 200.0, 800, 500.0, 6);
        let fit = fit_weibull(&data).unwrap();
        let ll_at_fit = fit.log_likelihood;
        for delta in [-0.1, 0.1] {
            let ll_off = weibull_log_likelihood(&data, fit.shape + delta, fit.scale);
            assert!(ll_off <= ll_at_fit, "perturbed shape should not improve likelihood");
        }
    }
}
