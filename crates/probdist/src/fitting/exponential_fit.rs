use serde::{Deserialize, Serialize};

use crate::fitting::{validate_lifetimes, Lifetime};
use crate::rates::{FailureRate, Mtbf};
use crate::{DistError, Exponential};

/// Result of a maximum-likelihood exponential (constant-rate) fit to
/// right-censored lifetimes — the classical *total time on test* estimator.
///
/// Used as the baseline parametric model that the Weibull fit is compared
/// against, and to estimate the constant rates of Table 5 (hardware,
/// software, and transient failures) from generated logs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExponentialFit {
    /// Estimated failure rate (per hour).
    pub rate: f64,
    /// Standard error of the rate estimate (`rate / sqrt(r)`).
    pub rate_std_error: f64,
    /// Number of observed failures.
    pub failures: usize,
    /// Number of censored observations.
    pub censored: usize,
    /// Total time on test (sum of all observation times, hours).
    pub total_time: f64,
    /// Maximised log-likelihood.
    pub log_likelihood: f64,
}

impl ExponentialFit {
    /// The fitted distribution.
    ///
    /// # Errors
    ///
    /// Returns an error if the fitted rate is degenerate (should not happen
    /// for a successful fit).
    pub fn distribution(&self) -> Result<Exponential, DistError> {
        Exponential::new(self.rate)
    }

    /// The estimated mean time between failures.
    pub fn mtbf(&self) -> Mtbf {
        Mtbf::new(1.0 / self.rate).expect("rate is positive by construction")
    }

    /// The estimate as a [`FailureRate`].
    pub fn failure_rate(&self) -> FailureRate {
        FailureRate::new(self.rate).expect("rate is positive by construction")
    }
}

/// Fits a constant failure rate to right-censored lifetimes by maximum
/// likelihood: `λ̂ = r / T` where `r` is the number of observed failures and
/// `T` the total time on test.
///
/// # Errors
///
/// * [`DistError::EmptyData`] if `data` is empty.
/// * [`DistError::DegenerateData`] if no failures were observed, the total
///   observation time is zero, or it overflows `f64` (which would silently
///   produce a zero rate and poison every derived quantity).
pub fn fit_exponential(data: &[Lifetime]) -> Result<ExponentialFit, DistError> {
    let failures = validate_lifetimes(data, 1)?;
    let censored = data.len() - failures;
    let total_time: f64 = data.iter().map(super::Lifetime::time).sum();
    if total_time <= 0.0 {
        return Err(DistError::DegenerateData { reason: "total time on test is zero" });
    }
    if !total_time.is_finite() {
        return Err(DistError::DegenerateData { reason: "total time on test overflows f64" });
    }
    let rate = failures as f64 / total_time;
    let log_likelihood = failures as f64 * rate.ln() - rate * total_time;
    Ok(ExponentialFit {
        rate,
        rate_std_error: rate / (failures as f64).sqrt(),
        failures,
        censored,
        total_time,
        log_likelihood,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Distribution, SimRng};

    #[test]
    #[cfg_attr(miri, ignore)] // heavy sampling loop
    fn recovers_rate_without_censoring() {
        let d = Exponential::new(0.01).unwrap();
        let mut rng = SimRng::seed_from_u64(1);
        let data: Vec<Lifetime> =
            (0..5000).map(|_| Lifetime::failure(d.sample(&mut rng)).unwrap()).collect();
        let fit = fit_exponential(&data).unwrap();
        assert!((fit.rate - 0.01).abs() / 0.01 < 0.05, "rate {}", fit.rate);
        assert!((fit.mtbf().hours() - 100.0).abs() < 5.0);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // heavy sampling loop
    fn recovers_rate_with_censoring() {
        let d = Exponential::from_mean(1000.0).unwrap();
        let mut rng = SimRng::seed_from_u64(2);
        let censor = 300.0;
        let data: Vec<Lifetime> = (0..20_000)
            .map(|_| {
                let t = d.sample(&mut rng);
                if t < censor {
                    Lifetime::failure(t).unwrap()
                } else {
                    Lifetime::censored(censor).unwrap()
                }
            })
            .collect();
        let fit = fit_exponential(&data).unwrap();
        assert!(fit.censored > 0);
        assert!((fit.mtbf().hours() - 1000.0).abs() / 1000.0 < 0.05, "mtbf {}", fit.mtbf().hours());
    }

    #[test]
    #[cfg_attr(miri, ignore)] // heavy sampling loop
    fn std_error_shrinks_with_more_failures() {
        let d = Exponential::from_mean(10.0).unwrap();
        let mut rng = SimRng::seed_from_u64(3);
        let small: Vec<Lifetime> =
            (0..50).map(|_| Lifetime::failure(d.sample(&mut rng)).unwrap()).collect();
        let large: Vec<Lifetime> =
            (0..5000).map(|_| Lifetime::failure(d.sample(&mut rng)).unwrap()).collect();
        let fit_small = fit_exponential(&small).unwrap();
        let fit_large = fit_exponential(&large).unwrap();
        assert!(fit_large.rate_std_error < fit_small.rate_std_error);
    }

    #[test]
    fn errors_on_bad_data() {
        assert!(matches!(fit_exponential(&[]), Err(DistError::EmptyData)));
        let censored_only = vec![Lifetime::censored(5.0).unwrap()];
        assert!(matches!(fit_exponential(&censored_only), Err(DistError::DegenerateData { .. })));
    }

    #[test]
    fn overflowing_total_time_is_a_typed_error_not_a_zero_rate() {
        // Two observation times near f64::MAX sum to infinity; the fit used
        // to return rate = 0, which made `mtbf()` / `failure_rate()` panic.
        let data = vec![Lifetime::failure(f64::MAX).unwrap(), Lifetime::failure(f64::MAX).unwrap()];
        assert!(matches!(fit_exponential(&data), Err(DistError::DegenerateData { .. })));
    }

    #[test]
    fn distribution_and_rate_accessors_agree() {
        let data = vec![
            Lifetime::failure(10.0).unwrap(),
            Lifetime::failure(20.0).unwrap(),
            Lifetime::censored(30.0).unwrap(),
        ];
        let fit = fit_exponential(&data).unwrap();
        assert!((fit.rate - 2.0 / 60.0).abs() < 1e-12);
        assert!((fit.distribution().unwrap().rate() - fit.rate).abs() < 1e-15);
        assert!((fit.failure_rate().per_hour() - fit.rate).abs() < 1e-15);
    }
}
