//! Survival analysis and lifetime-distribution fitting.
//!
//! The paper estimates its disk-failure model from the ABE replacement log
//! (Table 4): "Survival analysis of the disk failures (n = 480) using
//! Weibull regression … gives the shape parameter as 0.696 with standard
//! deviation of 0.192", and then uses simulation to pick the scale
//! parameter (MTBF = 300 000 h / AFR = 2.92 %) that matches the observed
//! replacement rate.
//!
//! This module provides the same estimators, operating on right-censored
//! lifetime samples:
//!
//! * [`Lifetime`] — an observation that is either an observed failure or a
//!   censored survival time (disks still alive at the end of the log).
//! * [`KaplanMeier`] — non-parametric survival curve estimation.
//! * [`fit_weibull`] — maximum-likelihood Weibull fit with right-censoring
//!   (profile likelihood in the scale, Newton/bisection in the shape) and
//!   asymptotic standard errors.
//! * [`fit_exponential`] — MLE of a constant failure rate (total time on
//!   test estimator).

mod exponential_fit;
mod kaplan_meier;
mod weibull_mle;

pub use exponential_fit::{fit_exponential, ExponentialFit};
pub use kaplan_meier::{KaplanMeier, SurvivalPoint};
pub use weibull_mle::{fit_weibull, WeibullFit};

use serde::{Deserialize, Serialize};

use crate::DistError;

/// A single right-censored lifetime observation, in hours.
///
/// # Example
///
/// ```
/// use probdist::fitting::Lifetime;
///
/// let failed = Lifetime::failure(1200.0).unwrap();
/// let survived = Lifetime::censored(2000.0).unwrap();
/// assert!(failed.is_failure());
/// assert!(!survived.is_failure());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lifetime {
    time: f64,
    failed: bool,
}

impl Lifetime {
    /// An observed failure at `time` hours.
    ///
    /// # Errors
    ///
    /// Returns an error unless `time` is finite and strictly positive.
    pub fn failure(time: f64) -> Result<Self, DistError> {
        Ok(Lifetime { time: DistError::check_positive("time", time)?, failed: true })
    }

    /// A right-censored observation: the unit was still working when
    /// observation stopped at `time` hours.
    ///
    /// # Errors
    ///
    /// Returns an error unless `time` is finite and strictly positive.
    pub fn censored(time: f64) -> Result<Self, DistError> {
        Ok(Lifetime { time: DistError::check_positive("time", time)?, failed: false })
    }

    /// The observation time in hours.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Whether the observation ends in a failure (`true`) or censoring
    /// (`false`).
    pub fn is_failure(&self) -> bool {
        self.failed
    }
}

/// Validates a lifetime data set for fitting: non-empty and containing at
/// least `min_failures` observed failures.
pub(crate) fn validate_lifetimes(
    data: &[Lifetime],
    min_failures: usize,
) -> Result<usize, DistError> {
    if data.is_empty() {
        return Err(DistError::EmptyData);
    }
    let failures = data.iter().filter(|l| l.is_failure()).count();
    if failures < min_failures {
        return Err(DistError::DegenerateData {
            reason: "too few observed failures (data is almost entirely censored)",
        });
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_constructors_validate() {
        assert!(Lifetime::failure(0.0).is_err());
        assert!(Lifetime::censored(-1.0).is_err());
        assert!(Lifetime::failure(f64::NAN).is_err());
        let l = Lifetime::failure(10.0).unwrap();
        assert_eq!(l.time(), 10.0);
        assert!(l.is_failure());
    }

    #[test]
    fn validate_lifetimes_counts_failures() {
        let data = vec![
            Lifetime::failure(1.0).unwrap(),
            Lifetime::censored(2.0).unwrap(),
            Lifetime::failure(3.0).unwrap(),
        ];
        assert_eq!(validate_lifetimes(&data, 2).unwrap(), 2);
        assert!(validate_lifetimes(&data, 3).is_err());
        assert!(validate_lifetimes(&[], 0).is_err());
    }
}
