//! Deterministic replication fan-out shared by the simulation engines.
//!
//! [`replicate`] runs one closure per replication index, each with the RNG
//! stream derived from that index, and collects the results **in index
//! order**. Because the stream depends only on `(root seed, index)` and the
//! collection order is fixed, the returned vector is bit-identical for any
//! worker count — the invariant both the SAN experiment runner and the
//! storage Monte-Carlo rely on.

use crate::SimRng;

/// Minimum batch size worth spinning up worker threads for.
const MIN_PARALLEL_COUNT: usize = 4;

/// Runs `run(index, rng)` for every index in `indices`, fanning the work
/// across `workers` scoped threads (`0` = the machine's available
/// parallelism, `1` = serial), and returns the results in index order.
///
/// Each call receives a fresh [`SimRng`] derived from `root` and its own
/// index, so the output is a pure function of `(root, indices)` —
/// independent of worker count and scheduling.
pub fn replicate<T, F>(
    indices: std::ops::Range<usize>,
    root: &SimRng,
    workers: usize,
    run: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut SimRng) -> T + Sync,
{
    let count = indices.len();
    let workers = if workers > 0 {
        workers
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    }
    .min(count.max(1));

    let indices: Vec<usize> = indices.collect();
    if workers <= 1 || count < MIN_PARALLEL_COUNT {
        return indices.into_iter().map(|i| run(i, &mut root.derive_stream(i as u64))).collect();
    }

    let chunk_size = count.div_ceil(workers);
    let run = &run;
    std::thread::scope(|scope| {
        let handles: Vec<_> = indices
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|&i| run(i, &mut root.derive_stream(i as u64)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        // Chunks are joined in submission order, preserving index order.
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("replication thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let root = SimRng::seed_from_u64(1);
        let out = replicate(0..100, &root, 7, |i, _| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let root = SimRng::seed_from_u64(42);
        let draw = |i: usize, rng: &mut SimRng| (i, rng.next_u64());
        let serial = replicate(0..37, &root, 1, draw);
        for workers in [0, 2, 4, 16] {
            assert_eq!(serial, replicate(0..37, &root, workers, draw), "workers = {workers}");
        }
    }

    #[test]
    fn offset_ranges_reuse_the_same_streams() {
        let root = SimRng::seed_from_u64(7);
        let draw = |i: usize, rng: &mut SimRng| (i, rng.next_u64());
        let full = replicate(0..20, &root, 4, draw);
        let tail = replicate(10..20, &root, 4, draw);
        assert_eq!(&full[10..], &tail[..]);
    }

    #[test]
    fn empty_range_is_fine() {
        let root = SimRng::seed_from_u64(3);
        let out: Vec<u64> = replicate(0..0, &root, 4, |_, rng| rng.next_u64());
        assert!(out.is_empty());
    }
}
