//! The persistent work-stealing execution engine shared by every
//! simulation layer.
//!
//! # Scheduling model
//!
//! A [`Pool`] owns `workers - 1` **long-lived worker threads**, spawned
//! once when the pool is created and parked on a condvar between fan-outs
//! (the calling thread is the pool's remaining worker). A fan-out
//! ([`Pool::run_indexed`] / [`Pool::run_indexed_with`]) registers itself
//! in the pool's registry, wakes parked workers, and participates in the
//! work itself; when the last index is claimed the workers detach and park
//! again. No threads are spawned per fan-out, so scheduling a short study
//! costs two condvar signals instead of a `thread::scope` spawn/join
//! cycle.
//!
//! Work is claimed in **adaptive batches**: each claim takes
//! `max(1, remaining / (2 * workers))` consecutive indices from a shared
//! atomic counter, so early claims move in large strides (amortising the
//! atomic traffic across thousands of replications) while late claims
//! shrink to single indices (so a fast worker steals the tail from a slow
//! one instead of idling). Results are written straight into a
//! caller-owned slot per index — no channels, no per-result allocation —
//! and handed back **in index order**.
//!
//! # Nested-pool arbitration
//!
//! While `run_indexed` executes, the pool installs itself as the thread's
//! *ambient* pool (workers carry it permanently). A nested fan-out — e.g.
//! a `Study` running scenarios, each of which fans out its own
//! replications through [`replicate`] — registers on the **same** pool
//! instead of spawning a second one: the process never runs more than
//! `workers` busy threads. Workers prefer the **innermost** registered
//! fan-out with unclaimed work, so nested replication fan-outs drain
//! first and their waiting scenario can retire. A fan-out's submitting
//! thread always participates in its own fan-out, which is what keeps the
//! nesting deadlock-free: every blocked thread only waits on work that
//! strictly deeper threads are actively executing.
//!
//! # Per-worker state
//!
//! [`Pool::run_indexed_with`] and [`replicate_with`] thread a per-worker
//! scratch value (created by an `init` closure once per participating
//! worker, reused across every index that worker claims) through the
//! task. The simulation kernels use this to make a replication
//! allocation-free: heaps, accumulators, and markings are allocated once
//! per worker and reset per replication.
//!
//! # Determinism
//!
//! [`replicate`] runs one closure per replication index, each with the RNG
//! stream derived from `(root seed, index)`, and collects the results **in
//! index order**. Because the stream depends only on the index and the
//! collection order is fixed, the returned vector is bit-identical for any
//! worker count, any batch size, and any scheduling interleaving — the
//! invariant the SAN experiment runner, the storage Monte-Carlo, and the
//! `Study` runner all rely on. Per-worker scratch must not carry state
//! *between* replications that influences results; the kernels only cache
//! allocations in it.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use crate::SimRng;

/// Minimum batch size worth engaging worker threads for.
const MIN_PARALLEL_COUNT: usize = 4;

/// A cooperative cancellation token threaded through the pool's batch-claim
/// loop by the interruptible fan-out entry points
/// ([`Pool::run_indexed_interruptible`], [`replicate_interruptible`]).
///
/// A token fires either because [`CancelToken::cancel`] was called or
/// because its optional deadline passed. Cancellation is *cooperative*:
/// workers observe the token **between** batch claims, so every batch that
/// was already claimed runs to completion — which is what keeps the
/// completed work a contiguous index prefix (claims come from one shared
/// monotone counter) and therefore statistically usable: the first `k`
/// replication streams are exactly the ones a fixed run of `k` would have
/// drawn.
///
/// Once observed, the deadline latches into the cancelled flag, so
/// repeated checks after expiry cost one relaxed atomic load. A fan-out
/// that never supplies a token pays nothing — the non-interruptible paths
/// contain no check at all.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<CancelState>,
}

#[derive(Debug)]
struct CancelState {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only fires when [`CancelToken::cancel`] is called.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelState { cancelled: AtomicBool::new(false), deadline: None }),
        }
    }

    /// A token that fires `budget` from now (or earlier, via
    /// [`CancelToken::cancel`]).
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelState {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + budget),
            }),
        }
    }

    /// Fires the token. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token has fired (explicitly or by deadline).
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                // Latch, so later checks skip the clock read.
                self.inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

thread_local! {
    /// Stack of cancellation tokens installed on this thread; the
    /// innermost one governs interruptible fan-outs started from here.
    static AMBIENT_CANCEL: RefCell<Vec<CancelToken>> = const { RefCell::new(Vec::new()) };
}

/// Runs `body` with `token` installed as this thread's ambient
/// cancellation token (see [`current_cancel_token`]). Nested scopes stack;
/// the token uninstalls when `body` returns or unwinds.
///
/// A study scheduler installs its deadline token around each scenario so
/// that code deep inside the scenario — the replication engines — can pick
/// it up without every intermediate layer threading it through its
/// signature.
pub fn cancel_scope<R>(token: &CancelToken, body: impl FnOnce() -> R) -> R {
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            AMBIENT_CANCEL.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
    AMBIENT_CANCEL.with(|stack| stack.borrow_mut().push(token.clone()));
    let _guard = PopGuard;
    body()
}

/// The innermost cancellation token installed on the current thread by an
/// enclosing [`cancel_scope`], if any.
pub fn current_cancel_token() -> Option<CancelToken> {
    AMBIENT_CANCEL.with(|stack| stack.borrow().last().cloned())
}

/// The typed panic payload the engine forwards when a work unit panics:
/// the original payload wrapped with the index of the work unit (for
/// [`replicate`]-family fan-outs, the replication index) that raised it.
///
/// Downcast the payload caught from a fan-out to this type to recover the
/// failing index and a displayable message; [`panic_message`] extracts the
/// message whether or not the payload was wrapped.
#[derive(Debug)]
pub struct WorkUnitPanic {
    index: usize,
    payload: Box<dyn Any + Send>,
}

impl WorkUnitPanic {
    /// Wraps a raw panic payload with the index of the work unit that
    /// raised it. Idempotent: an already-wrapped payload keeps its
    /// original (innermost) index, so a replication index survives the
    /// re-throw through an enclosing scenario fan-out.
    fn wrap(index: usize, payload: Box<dyn Any + Send>) -> Box<dyn Any + Send> {
        if payload.is::<WorkUnitPanic>() {
            payload
        } else {
            Box::new(WorkUnitPanic { index, payload })
        }
    }

    /// The index of the work unit whose task panicked.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The panic message, when the original payload was a string (the
    /// payload of `panic!` with a literal or format string).
    pub fn message(&self) -> String {
        panic_message(self.payload.as_ref())
    }

    /// Unwraps back to the original panic payload.
    pub fn into_payload(self) -> Box<dyn Any + Send> {
        self.payload
    }
}

/// Renders a panic payload as a message: sees through a [`WorkUnitPanic`]
/// wrapper and handles the two string payload types `panic!` produces.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(wrapped) = payload.downcast_ref::<WorkUnitPanic>() {
        return wrapped.message();
    }
    if let Some(text) = payload.downcast_ref::<&'static str>() {
        return (*text).to_string();
    }
    if let Some(text) = payload.downcast_ref::<String>() {
        return text.clone();
    }
    "non-string panic payload".to_string()
}

/// Runs one replication work unit: the chaos fault-injection hook (a no-op
/// unless the `chaos` feature is on and a config is installed), then the
/// task, re-throwing any panic wrapped in a [`WorkUnitPanic`] that carries
/// the replication index.
fn run_work_unit<T>(index: usize, body: impl FnOnce() -> T) -> T {
    match catch_unwind(AssertUnwindSafe(|| {
        #[cfg(feature = "chaos")]
        crate::chaos::work_unit(index as u64);
        body()
    })) {
        Ok(value) => {
            crate::telemetry::counter_inc(crate::telemetry::MetricId::ReplicationsCompleted);
            value
        }
        Err(payload) => resume_unwind(WorkUnitPanic::wrap(index, payload)),
    }
}

/// Resolves a requested worker count (`0` = the machine's available
/// parallelism).
fn resolve_workers(workers: usize) -> usize {
    if workers > 0 {
        workers
    } else {
        std::thread::available_parallelism().map_or(4, std::num::NonZero::get)
    }
}

/// The unsafe core of the engine: type-erased fan-out registration, batched
/// index claiming, and direct result-slot writes.
///
/// # Safety protocol
///
/// A fan-out lives on its submitter's stack. It is reachable by workers
/// only through the pool registry, and the registry entry is removed —
/// under the registry lock — before the fan-out is freed. Workers *attach*
/// (increment the fan-out's refcount) under the same lock, and detach
/// under it too; the submitter quiesces by removing the entry and then
/// waiting until the refcount is zero. Together these guarantee a worker
/// never touches a fan-out after its submitter's stack frame is gone, and
/// that all worker writes are visible to the submitter (the registry mutex
/// orders them).
#[allow(unsafe_code)]
mod fanout {
    use std::any::Any;
    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

    /// The long-lived shared state of one pool.
    pub(super) struct PoolShared {
        /// Total worker count (parked threads + the submitting caller).
        pub(super) total: usize,
        registry: Mutex<Registry>,
        /// Signalled when a fan-out registers or the pool shuts down.
        work_cv: Condvar,
        /// Signalled when a worker detaches from a fan-out.
        done_cv: Condvar,
    }

    struct Registry {
        /// Active fan-outs, oldest first; workers scan newest-first so
        /// nested (innermost) fan-outs drain before their parents.
        entries: Vec<FanEntry>,
        shutdown: bool,
    }

    /// A type-erased pointer to a registered fan-out. `header` aliases the
    /// first field of the typed fan-out that `data` points to; `run`
    /// re-types `data` and executes one claiming session on it.
    #[derive(Clone, Copy)]
    struct FanEntry {
        header: *const FanHeader,
        data: *const (),
        run: unsafe fn(*const ()),
    }

    // SAFETY: the pointers refer to a fan-out that the registration
    // protocol keeps alive for as long as the entry is reachable (see the
    // module docs), and the fan-out's shared state is Sync.
    unsafe impl Send for FanEntry {}

    /// The type-independent claiming state of a fan-out.
    pub(super) struct FanHeader {
        /// Next unclaimed index; claimed in batches via `fetch_add`.
        next: AtomicUsize,
        count: usize,
        /// `2 * workers` — the adaptive batch divisor.
        batch_denom: usize,
        poisoned: AtomicBool,
        /// Set when a session observes the cancellation token fired; stops
        /// parked workers from attaching to a fan-out that is winding down.
        halted: AtomicBool,
        /// Cooperative cancellation token, checked between batch claims.
        /// `None` for non-interruptible fan-outs — those pay no check.
        cancel: Option<super::CancelToken>,
        /// Attached-worker count. Only read/written while holding the
        /// registry lock; atomic so the header stays `Sync`.
        refs: AtomicUsize,
        /// The first panic payload captured from a task.
        payload: Mutex<Option<Box<dyn Any + Send>>>,
    }

    impl FanHeader {
        fn new(
            count: usize,
            total_workers: usize,
            cancel: Option<super::CancelToken>,
        ) -> FanHeader {
            FanHeader {
                next: AtomicUsize::new(0),
                count,
                batch_denom: 2 * total_workers,
                poisoned: AtomicBool::new(false),
                halted: AtomicBool::new(false),
                cancel,
                refs: AtomicUsize::new(0),
                payload: Mutex::new(None),
            }
        }

        fn has_work(&self) -> bool {
            !self.poisoned.load(Ordering::Relaxed)
                && !self.halted.load(Ordering::Relaxed)
                && self.next.load(Ordering::Relaxed) < self.count
        }
    }

    /// One result slot, written exactly once by whichever worker claims
    /// its index.
    struct SlotCell<T> {
        cell: UnsafeCell<MaybeUninit<T>>,
    }

    impl<T> SlotCell<T> {
        fn new() -> SlotCell<T> {
            SlotCell { cell: UnsafeCell::new(MaybeUninit::uninit()) }
        }
    }

    // SAFETY: the batched `fetch_add` claiming hands out disjoint index
    // ranges, so no two threads ever touch the same slot; the submitter
    // only reads slots after all workers detached (ordered by the registry
    // mutex).
    unsafe impl<T: Send> Sync for SlotCell<T> {}

    /// A typed fan-out, stack-allocated in [`execute`].
    struct FanOut<'a, T, S, I, F> {
        header: FanHeader,
        init: &'a I,
        task: &'a F,
        slots: &'a [SlotCell<T>],
        written: &'a [AtomicBool],
        /// Pins the per-worker state type the closures agree on.
        marker: std::marker::PhantomData<fn() -> S>,
    }

    impl<T, S, I, F> FanOut<'_, T, S, I, F>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        /// One worker's participation in the fan-out: create the worker
        /// state, then claim and execute adaptive batches until the index
        /// space is exhausted (or a task panics).
        fn session(&self) {
            let _busy = crate::telemetry::span(crate::telemetry::MetricId::PoolBusyNs);
            let mut state = match catch_unwind(AssertUnwindSafe(self.init)) {
                Ok(state) => state,
                Err(payload) => {
                    self.poison(payload);
                    return;
                }
            };
            loop {
                // Cooperative cancellation: observed between batch claims,
                // so every claimed batch still runs to completion and the
                // executed indices stay a contiguous prefix.
                if let Some(token) = &self.header.cancel {
                    if token.is_cancelled() {
                        self.header.halted.store(true, Ordering::Relaxed);
                        return;
                    }
                }
                let snapshot = self.header.next.load(Ordering::Relaxed);
                if snapshot >= self.header.count {
                    return;
                }
                // Adaptive batch: big strides while plenty remains, single
                // indices near the tail so stealing stays fine-grained.
                let batch = ((self.header.count - snapshot) / self.header.batch_denom).max(1);
                let start = self.header.next.fetch_add(batch, Ordering::Relaxed);
                if start >= self.header.count {
                    return;
                }
                let end = (start + batch).min(self.header.count);
                // Scheduling-class metrics: which thread wins each claim
                // race varies run to run, so these are tagged nondeterministic.
                crate::telemetry::counter_inc(crate::telemetry::MetricId::PoolBatchesClaimed);
                crate::telemetry::observe(
                    crate::telemetry::MetricId::PoolBatchSize,
                    (end - start) as u64,
                );
                for index in start..end {
                    match catch_unwind(AssertUnwindSafe(|| (self.task)(index, &mut state))) {
                        Ok(value) => {
                            // SAFETY: `index` was claimed exactly once (the
                            // fetch_add hands out disjoint ranges), so this
                            // slot has no other writer and no reader yet.
                            unsafe {
                                (*self.slots[index].cell.get()).write(value);
                            }
                            self.written[index].store(true, Ordering::Relaxed);
                        }
                        Err(payload) => {
                            self.poison(super::WorkUnitPanic::wrap(index, payload));
                            return;
                        }
                    }
                }
            }
        }

        /// Records the first panic payload and makes every other worker's
        /// next claim fail, so the fan-out drains promptly.
        fn poison(&self, payload: Box<dyn Any + Send>) {
            let mut slot = self.header.payload.lock().unwrap_or_else(PoisonError::into_inner);
            if slot.is_none() {
                *slot = Some(payload);
            }
            drop(slot);
            self.header.poisoned.store(true, Ordering::Relaxed);
            self.header.next.store(self.header.count, Ordering::Relaxed);
        }
    }

    /// Re-types an erased fan-out pointer and runs one claiming session.
    ///
    /// # Safety
    ///
    /// `data` must point to a live `FanOut<T, S, I, F>` with exactly these
    /// type parameters — guaranteed because the pointer and this function
    /// instantiation are stored side by side in the same [`FanEntry`].
    unsafe fn run_session<T, S, I, F>(data: *const ())
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        let fan = unsafe { &*data.cast::<FanOut<'_, T, S, I, F>>() };
        fan.session();
    }

    impl PoolShared {
        pub(super) fn new(total: usize) -> PoolShared {
            PoolShared {
                total,
                registry: Mutex::new(Registry { entries: Vec::new(), shutdown: false }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
            }
        }

        fn lock_registry(&self) -> MutexGuard<'_, Registry> {
            self.registry.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// Tells every parked worker to exit. Idempotent.
        pub(super) fn shutdown(&self) {
            self.lock_registry().shutdown = true;
            self.work_cv.notify_all();
        }
    }

    /// Detaches a worker from a fan-out when its session ends (or
    /// unwinds), and wakes the submitter's quiesce wait.
    struct Attached<'a> {
        shared: &'a PoolShared,
        header: *const FanHeader,
    }

    impl Drop for Attached<'_> {
        fn drop(&mut self) {
            let guard = self.shared.lock_registry();
            // SAFETY: this guard holds a reference on the header (refs >=
            // 1), so the submitter is still blocked in its quiesce wait
            // and the fan-out is alive.
            unsafe {
                (*self.header).refs.fetch_sub(1, Ordering::Relaxed);
            }
            drop(guard);
            self.shared.done_cv.notify_all();
        }
    }

    /// The body of each long-lived worker thread: park on the work
    /// condvar, attach to the newest registered fan-out with unclaimed
    /// work, run a session, repeat.
    pub(super) fn worker_main(shared: Arc<PoolShared>) {
        let _ambient = super::push_ambient(Arc::clone(&shared));
        let mut reg = shared.lock_registry();
        loop {
            if reg.shutdown {
                return;
            }
            // SAFETY: entries are only reachable while registered, and
            // registered fan-outs are alive (module docs).
            let found = reg
                .entries
                .iter()
                .rev()
                .copied()
                .find(|entry| unsafe { (*entry.header).has_work() });
            if let Some(entry) = found {
                // SAFETY: still under the registry lock, so the entry is
                // still registered and the attach is race-free.
                unsafe {
                    (*entry.header).refs.fetch_add(1, Ordering::Relaxed);
                }
                drop(reg);
                {
                    let _attached = Attached { shared: &shared, header: entry.header };
                    // SAFETY: we attached under the lock; the submitter
                    // cannot free the fan-out until we detach.
                    unsafe {
                        (entry.run)(entry.data);
                    }
                }
                reg = shared.lock_registry();
            } else {
                crate::telemetry::counter_inc(crate::telemetry::MetricId::PoolParks);
                let idle = crate::telemetry::span(crate::telemetry::MetricId::PoolIdleNs);
                reg = shared.work_cv.wait(reg).unwrap_or_else(PoisonError::into_inner);
                drop(idle);
                crate::telemetry::counter_inc(crate::telemetry::MetricId::PoolWakes);
            }
        }
    }

    /// Unregisters the fan-out and waits for every attached worker to
    /// detach. Runs on unwind too, so a panicking fan-out still quiesces
    /// before its stack frame is freed.
    struct Quiesce<'a> {
        shared: &'a PoolShared,
        header: *const FanHeader,
    }

    impl Drop for Quiesce<'_> {
        fn drop(&mut self) {
            let mut reg = self.shared.lock_registry();
            if let Some(pos) =
                reg.entries.iter().position(|entry| std::ptr::eq(entry.header, self.header))
            {
                reg.entries.remove(pos);
            }
            // SAFETY: the header lives on this thread's own stack, below
            // this guard. Workers only detach under the registry lock, so
            // observing refs == 0 here means every worker is gone.
            while unsafe { (*self.header).refs.load(Ordering::Relaxed) } > 0 {
                reg = self.shared.done_cv.wait(reg).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Runs a parallel fan-out of `count` tasks on `shared`, with the
    /// calling thread participating, and returns the results of the
    /// executed index prefix in index order, plus the prefix length.
    /// Without a cancellation token the prefix is always the full index
    /// space; with one, claiming stops when the token fires, in-flight
    /// batches finish, and the completed prefix is whatever was claimed —
    /// contiguous, because claims come from one monotone counter. Panics
    /// in tasks are forwarded to the caller after the fan-out quiesces.
    pub(super) fn execute<T, S, I, F>(
        shared: &PoolShared,
        count: usize,
        cancel: Option<&super::CancelToken>,
        init: &I,
        task: &F,
    ) -> (Vec<T>, usize)
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        let slots: Vec<SlotCell<T>> = std::iter::repeat_with(SlotCell::new).take(count).collect();
        let written: Vec<AtomicBool> =
            std::iter::repeat_with(|| AtomicBool::new(false)).take(count).collect();
        let fan = FanOut {
            header: FanHeader::new(count, shared.total, cancel.cloned()),
            init,
            task,
            slots: &slots,
            written: &written,
            marker: std::marker::PhantomData,
        };
        {
            let mut reg = shared.lock_registry();
            reg.entries.push(FanEntry {
                header: &fan.header,
                data: std::ptr::from_ref(&fan).cast(),
                run: run_session::<T, S, I, F>,
            });
        }
        // Wake at most one parked worker per remaining work item beyond
        // the submitter's own share; busy workers rescan the registry on
        // their own when their current session ends.
        let wake = (count - 1).min(shared.total - 1);
        for _ in 0..wake {
            shared.work_cv.notify_one();
        }
        {
            let _quiesce = Quiesce { shared, header: &fan.header };
            fan.session();
        }
        // Every worker has detached and the registry entry is gone; the
        // registry mutex ordered all their slot writes before us.
        if fan.header.poisoned.load(Ordering::Relaxed) {
            let payload = fan
                .header
                .payload
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .unwrap_or_else(|| Box::new("fan-out poisoned without a payload"));
            drop(fan);
            for (slot, was_written) in slots.into_iter().zip(written.iter()) {
                if was_written.load(Ordering::Relaxed) {
                    // SAFETY: the flag records exactly the slots that were
                    // initialised; nothing else reads them after poison.
                    unsafe {
                        slot.cell.into_inner().assume_init_drop();
                    }
                }
            }
            resume_unwind(payload);
        }
        // Claims come from one monotone counter and every claimed batch ran
        // to completion, so the executed indices are exactly `0..completed`.
        let completed = fan.header.next.load(Ordering::Relaxed).min(count);
        drop(fan);
        let mut results = Vec::with_capacity(completed);
        for (index, (slot, was_written)) in slots.into_iter().zip(written.iter()).enumerate() {
            if index < completed {
                assert!(
                    was_written.load(Ordering::Relaxed),
                    "work unit {index} produced no result"
                );
                // SAFETY: the flag proves the claiming worker initialised
                // this slot, and all workers detached before we got here.
                results.push(unsafe { slot.cell.into_inner().assume_init() });
            } else if was_written.load(Ordering::Relaxed) {
                // Defensive: cannot happen while claims are a prefix, but
                // if it ever does the slot must still be dropped.
                // SAFETY: the flag proves the slot was initialised.
                unsafe { slot.cell.into_inner().assume_init_drop() }
            }
        }
        (results, completed)
    }
}

thread_local! {
    /// Stack of pools installed on this thread; the innermost one
    /// arbitrates every fan-out started from here.
    static AMBIENT: RefCell<Vec<Arc<fanout::PoolShared>>> = const { RefCell::new(Vec::new()) };
}

/// Installs `shared` as this thread's ambient pool until the guard drops.
fn push_ambient(shared: Arc<fanout::PoolShared>) -> AmbientGuard {
    AMBIENT.with(|stack| stack.borrow_mut().push(shared));
    AmbientGuard
}

struct AmbientGuard;

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        AMBIENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

fn ambient_shared() -> Option<Arc<fanout::PoolShared>> {
    AMBIENT.with(|stack| stack.borrow().last().cloned())
}

/// Owns a pool's worker threads; dropping the last handle shuts the
/// workers down and joins them.
struct PoolOwner {
    shared: Arc<fanout::PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Drop for PoolOwner {
    fn drop(&mut self) {
        self.shared.shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A persistent work-stealing worker pool.
///
/// See the [module documentation](self) for the scheduling model. Worker
/// threads are spawned once, when the pool is created, and parked between
/// fan-outs; [`Pool::global`] hands out process-wide cached pools so
/// repeated short studies never pay a spawn. Handles are cheap to clone;
/// the threads shut down when the last handle to an owned pool drops.
#[derive(Clone)]
pub struct Pool {
    shared: Arc<fanout::PoolShared>,
    /// Held only for its drop side effect (shutdown + join); `None` for
    /// ambient handles, which never own the threads.
    #[allow(dead_code)]
    owner: Option<Arc<PoolOwner>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("workers", &self.shared.total).finish()
    }
}

impl Pool {
    /// Creates a pool with the given worker budget (`0` = the machine's
    /// available parallelism, `1` = everything runs on the calling
    /// thread). Spawns `workers - 1` threads, joined when the last handle
    /// drops.
    pub fn new(workers: usize) -> Pool {
        let total = resolve_workers(workers);
        let shared = Arc::new(fanout::PoolShared::new(total));
        let handles = (1..total)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cfs-pool-{index}"))
                    .spawn(move || fanout::worker_main(shared))
                    .expect("failed to spawn pool worker thread")
            })
            .collect();
        let owner = Arc::new(PoolOwner { shared: Arc::clone(&shared), handles });
        Pool { shared, owner: Some(owner) }
    }

    /// A process-wide cached pool with the given worker budget: the first
    /// call per (resolved) worker count spawns the threads, every later
    /// call reuses them. Cached pools live for the rest of the process —
    /// that is the point: a study scheduler calling this per run never
    /// pays thread spawn/join again.
    pub fn global(workers: usize) -> Pool {
        static GLOBAL: OnceLock<Mutex<HashMap<usize, Pool>>> = OnceLock::new();
        let total = resolve_workers(workers);
        let map = GLOBAL.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = map.lock().unwrap_or_else(PoisonError::into_inner);
        map.entry(total).or_insert_with(|| Pool::new(total)).clone()
    }

    /// The pool installed on the current thread by an enclosing fan-out,
    /// if any. Fan-outs started while a pool is ambient register on it
    /// instead of spawning their own threads.
    pub fn current() -> Option<Pool> {
        ambient_shared().map(|shared| Pool { shared, owner: None })
    }

    /// The pool's total worker budget.
    pub fn workers(&self) -> usize {
        self.shared.total
    }

    /// Runs `task(index)` for every `index` in `0..count` on this pool and
    /// returns the results **in index order**.
    ///
    /// The calling thread participates as a worker; parked pool threads
    /// are woken while unclaimed work remains. Every worker has the pool
    /// installed as its ambient pool, so nested fan-outs (e.g.
    /// [`replicate`] called from inside `task`) register on the same pool
    /// — one global scheduler, no oversubscription.
    pub fn run_indexed<T, F>(&self, count: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_indexed_with(count, || (), move |index, _scratch| task(index))
    }

    /// Like [`Pool::run_indexed`], but threads a per-worker scratch value
    /// through the tasks: `init` runs once per participating worker and
    /// the resulting state is passed (mutably) to every index that worker
    /// executes. Results must not depend on which worker ran an index —
    /// use the scratch to cache allocations, not to carry data between
    /// indices.
    pub fn run_indexed_with<T, S, I, F>(&self, count: usize, init: I, task: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        let _ambient = push_ambient(Arc::clone(&self.shared));
        if self.shared.total <= 1 || count == 1 {
            let mut state = init();
            return (0..count).map(|index| task(index, &mut state)).collect();
        }
        let (results, completed) = fanout::execute(&self.shared, count, None, &init, &task);
        debug_assert_eq!(completed, count, "uncancellable fan-out must run every index");
        results
    }

    /// Like [`Pool::run_indexed_with`], but cooperatively cancellable:
    /// `token` is checked between batch claims, in-flight batches finish
    /// when it fires, and the call returns the results of the completed
    /// **contiguous index prefix** plus a flag that is `true` when the
    /// fan-out was truncated (fewer than `count` results).
    pub fn run_indexed_interruptible<T, S, I, F>(
        &self,
        count: usize,
        token: &CancelToken,
        init: I,
        task: F,
    ) -> (Vec<T>, bool)
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> T + Sync,
    {
        if count == 0 {
            return (Vec::new(), false);
        }
        let _ambient = push_ambient(Arc::clone(&self.shared));
        if self.shared.total <= 1 || count == 1 {
            let mut state = init();
            let mut results = Vec::with_capacity(count);
            for index in 0..count {
                if token.is_cancelled() {
                    return (results, true);
                }
                results.push(task(index, &mut state));
            }
            return (results, false);
        }
        let (results, completed) = fanout::execute(&self.shared, count, Some(token), &init, &task);
        let truncated = completed < count;
        (results, truncated)
    }
}

/// The pool [`replicate`] falls back to when no ambient pool is installed:
/// the process-wide cached pool, except under Miri, where leaked global
/// threads would be reported — there every fan-out gets an owned,
/// joined-on-drop pool instead.
fn fallback_pool(workers: usize) -> Pool {
    if cfg!(miri) {
        Pool::new(workers)
    } else {
        Pool::global(workers)
    }
}

/// Runs `run(index, rng)` for every index in `indices`, fanning the work
/// across the ambient [`Pool`] when one is installed (a study's global
/// pool) or the process-wide cached pool otherwise (`0` = the machine's
/// available parallelism, `1` = force serial execution), and returns the
/// results in index order.
///
/// Each call receives a fresh [`SimRng`] derived from `root` and its own
/// index, so the output is a pure function of `(root, indices)` —
/// independent of worker count, pool sharing, and scheduling order.
pub fn replicate<T, F>(
    indices: std::ops::Range<usize>,
    root: &SimRng,
    workers: usize,
    run: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut SimRng) -> T + Sync,
{
    replicate_with(indices, root, workers, || (), move |index, rng, _scratch| run(index, rng))
}

/// Like [`replicate`], but threads a per-worker scratch value through the
/// replications: `init` runs once per participating worker, and each
/// replication that worker claims receives the same state mutably. The
/// simulation kernels use this to reuse their heap allocations across
/// replications; results must stay a pure function of `(root, index)`.
pub fn replicate_with<T, S, I, F>(
    indices: std::ops::Range<usize>,
    root: &SimRng,
    workers: usize,
    init: I,
    run: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut SimRng, &mut S) -> T + Sync,
{
    let count = indices.len();
    let start = indices.start;
    if count == 0 {
        return Vec::new();
    }
    // Scheduled-work counter: grows as the adaptive stopping rule plans
    // further batches, which is what the progress line's ETA tracks.
    crate::telemetry::counter_add(crate::telemetry::MetricId::ReplicationsScheduled, count as u64);
    if workers == 1 || count < MIN_PARALLEL_COUNT {
        // Serial path: iterate the range directly — no pool, one scratch.
        let mut scratch = init();
        return indices
            .map(|index| {
                run_work_unit(index, || {
                    run(index, &mut root.derive_stream(index as u64), &mut scratch)
                })
            })
            .collect();
    }
    let pool = Pool::current().unwrap_or_else(|| fallback_pool(workers));
    pool.run_indexed_with(count, init, |offset, scratch| {
        let index = start + offset;
        run_work_unit(index, || run(index, &mut root.derive_stream(index as u64), scratch))
    })
}

/// Like [`replicate`], but cooperatively cancellable: when `token` fires,
/// claiming stops, in-flight batches finish, and the call returns the
/// results of the completed **contiguous replication prefix** plus a flag
/// that is `true` when the fan-out was truncated. Because replication `i`
/// always draws the stream derived from `(root, i)`, the returned prefix is
/// bit-identical to the first `len` results of an uninterrupted run — a
/// statistically valid (if smaller) sample.
pub fn replicate_interruptible<T, F>(
    indices: std::ops::Range<usize>,
    root: &SimRng,
    workers: usize,
    token: &CancelToken,
    run: F,
) -> (Vec<T>, bool)
where
    T: Send,
    F: Fn(usize, &mut SimRng) -> T + Sync,
{
    replicate_with_interruptible(
        indices,
        root,
        workers,
        token,
        || (),
        move |index, rng, _scratch| run(index, rng),
    )
}

/// [`replicate_interruptible`] with per-worker scratch (the
/// [`replicate_with`] analogue).
pub fn replicate_with_interruptible<T, S, I, F>(
    indices: std::ops::Range<usize>,
    root: &SimRng,
    workers: usize,
    token: &CancelToken,
    init: I,
    run: F,
) -> (Vec<T>, bool)
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut SimRng, &mut S) -> T + Sync,
{
    let count = indices.len();
    let start = indices.start;
    if count == 0 {
        return (Vec::new(), false);
    }
    crate::telemetry::counter_add(crate::telemetry::MetricId::ReplicationsScheduled, count as u64);
    if workers == 1 || count < MIN_PARALLEL_COUNT {
        let mut scratch = init();
        let mut results = Vec::with_capacity(count);
        for index in indices {
            if token.is_cancelled() {
                return (results, true);
            }
            results.push(run_work_unit(index, || {
                run(index, &mut root.derive_stream(index as u64), &mut scratch)
            }));
        }
        return (results, false);
    }
    let pool = Pool::current().unwrap_or_else(|| fallback_pool(workers));
    pool.run_indexed_interruptible(count, token, init, |offset, scratch| {
        let index = start + offset;
        run_work_unit(index, || run(index, &mut root.derive_stream(index as u64), scratch))
    })
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let root = SimRng::seed_from_u64(1);
        let out = replicate(0..100, &root, 7, |i, _| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let root = SimRng::seed_from_u64(42);
        let draw = |i: usize, rng: &mut SimRng| (i, rng.next_u64());
        let serial = replicate(0..37, &root, 1, draw);
        for workers in [0, 2, 4, 16] {
            assert_eq!(serial, replicate(0..37, &root, workers, draw), "workers = {workers}");
        }
    }

    #[test]
    fn offset_ranges_reuse_the_same_streams() {
        let root = SimRng::seed_from_u64(7);
        let draw = |i: usize, rng: &mut SimRng| (i, rng.next_u64());
        let full = replicate(0..20, &root, 4, draw);
        let tail = replicate(10..20, &root, 4, draw);
        assert_eq!(&full[10..], &tail[..]);
    }

    #[test]
    fn empty_range_is_fine() {
        let root = SimRng::seed_from_u64(3);
        let out: Vec<u64> = replicate(0..0, &root, 4, |_, rng| rng.next_u64());
        assert!(out.is_empty());
    }

    #[test]
    fn pool_runs_every_index_exactly_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        let out = pool.run_indexed(50, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
            i * 2
        });
        assert_eq!(out, (0..50).map(|i| i * 2).collect::<Vec<_>>());
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_resolves_auto_worker_count() {
        assert!(Pool::new(0).workers() >= 1);
        assert_eq!(Pool::new(3).workers(), 3);
        assert!(format!("{:?}", Pool::new(3)).contains('3'));
    }

    #[test]
    fn no_ambient_pool_outside_run_indexed() {
        assert!(Pool::current().is_none());
        let pool = Pool::new(2);
        pool.run_indexed(1, |_| assert!(Pool::current().is_some()));
        assert!(Pool::current().is_none());
    }

    #[test]
    fn nested_fan_outs_share_one_budget() {
        // A 4-worker pool fanning out 3 outer tasks, each of which fans out
        // 8 inner replications: the inner `replicate` calls must find the
        // ambient pool, and the observed in-flight high-water mark must
        // stay within the budget (3 pool threads + the caller).
        let pool = Pool::new(4);
        let live = AtomicUsize::new(1); // the calling thread
        let peak = AtomicUsize::new(1);
        let root = SimRng::seed_from_u64(9);
        let outer = pool.run_indexed(3, |outer_idx| {
            let inner = replicate(0..8, &root, 4, |i, rng| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(1));
                let v = (i as u64) ^ rng.next_u64();
                live.fetch_sub(1, Ordering::SeqCst);
                v
            });
            (outer_idx, inner.len())
        });
        assert_eq!(outer, vec![(0, 8), (1, 8), (2, 8)]);
        // `live` counts in-flight work units; with a 4-worker budget no more
        // than 4 (+1 for the outer caller's own bookkeeping slack) may ever
        // run at once.
        assert!(peak.load(Ordering::SeqCst) <= 5, "peak {}", peak.load(Ordering::SeqCst));
    }

    #[test]
    fn nested_fan_outs_stay_deterministic() {
        let root = SimRng::seed_from_u64(11);
        let run = |pool: &Pool| {
            pool.run_indexed(3, |outer| {
                let root = root.derive_stream(outer as u64);
                replicate(0..6, &root, 8, |_, rng| rng.next_u64())
            })
        };
        let serial = run(&Pool::new(1));
        for workers in [2, 4, 8] {
            assert_eq!(serial, run(&Pool::new(workers)), "workers = {workers}");
        }
    }

    #[test]
    fn uneven_task_durations_do_not_perturb_order() {
        // Work stealing: the first index is slow, the rest are fast — the
        // results must still come back in index order and be complete.
        let pool = Pool::new(3);
        let out = pool.run_indexed(12, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn threads_are_reused_across_consecutive_fan_outs() {
        // The persistent-pool contract: ten consecutive fan-outs on one
        // pool must be executed by the same fixed set of threads (at most
        // `workers`, counting the submitter) — not a fresh spawn per
        // fan-out, which would show ~30 distinct thread ids here.
        let pool = Pool::new(4);
        let ids = Mutex::new(std::collections::HashSet::new());
        for round in 0..10 {
            let out = pool.run_indexed(64, |i| {
                ids.lock().unwrap().insert(std::thread::current().id());
                // A touch of work so parked workers actually engage.
                std::hint::black_box(i * round)
            });
            assert_eq!(out.len(), 64);
        }
        let distinct = ids.lock().unwrap().len();
        assert!(distinct <= 4, "saw {distinct} distinct threads on a 4-worker pool");
    }

    #[test]
    fn batch_edge_cases_are_bit_identical_to_serial() {
        // Batched claiming must cover every index exactly once for counts
        // smaller than a batch, counts not divisible by the worker count,
        // and pools with more workers than work items.
        let value = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64;
        for workers in [2, 4, 16] {
            let pool = Pool::new(workers);
            for count in [1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 63, 64, 100] {
                let serial: Vec<u64> = (0..count).map(value).collect();
                assert_eq!(
                    pool.run_indexed(count, value),
                    serial,
                    "workers = {workers}, count = {count}"
                );
            }
        }
    }

    #[test]
    fn panic_in_one_batch_unwinds_cleanly() {
        // A task panic must reach the submitter with its payload, every
        // already-produced result must be dropped exactly once, and the
        // pool must stay usable afterwards.
        #[derive(Debug)]
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let live = Arc::new(AtomicUsize::new(0));
        let pool = Pool::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_indexed(64, |i| {
                if i == 17 {
                    panic!("boom at {i}");
                }
                live.fetch_add(1, Ordering::SeqCst);
                Counted(Arc::clone(&live))
            })
        }));
        let payload = result.expect_err("the panic must propagate to the submitter");
        let wrapped =
            payload.downcast_ref::<WorkUnitPanic>().expect("payload is typed WorkUnitPanic");
        assert_eq!(wrapped.index(), 17, "the wrapper carries the failing index");
        assert!(wrapped.message().contains("boom at 17"), "unexpected: {}", wrapped.message());
        assert!(panic_message(payload.as_ref()).contains("boom at 17"));
        assert_eq!(live.load(Ordering::SeqCst), 0, "produced results must all be dropped");
        // The pool quiesced cleanly: the same handle still schedules work.
        assert_eq!(pool.run_indexed(8, |i| i), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn replicate_panic_payload_carries_the_replication_index() {
        // Through `replicate` with an offset range, the typed payload must
        // carry the *replication* index (start + offset), serial and
        // parallel alike.
        let root = SimRng::seed_from_u64(5);
        for workers in [1, 4] {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                replicate(10..30, &root, workers, |i, _| {
                    assert!(i != 17, "kaboom");
                    i
                })
            }));
            let payload = result.expect_err("panic must propagate");
            let wrapped =
                payload.downcast_ref::<WorkUnitPanic>().expect("payload is typed WorkUnitPanic");
            assert_eq!(wrapped.index(), 17, "workers = {workers}");
        }
    }

    #[test]
    fn cancel_token_fires_manually_and_by_deadline() {
        let manual = CancelToken::new();
        assert!(!manual.is_cancelled());
        manual.cancel();
        assert!(manual.is_cancelled());
        // Clones share the flag.
        let clone = manual.clone();
        assert!(clone.is_cancelled());

        let expired = CancelToken::with_deadline(Duration::from_secs(0));
        assert!(expired.is_cancelled(), "a zero deadline fires immediately");
        let generous = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!generous.is_cancelled());
        generous.cancel();
        assert!(generous.is_cancelled(), "manual cancel overrides the deadline");
    }

    #[test]
    fn cancel_scope_installs_and_uninstalls_the_ambient_token() {
        assert!(current_cancel_token().is_none());
        let token = CancelToken::new();
        cancel_scope(&token, || {
            let ambient = current_cancel_token().expect("token is ambient inside the scope");
            token.cancel();
            assert!(ambient.is_cancelled(), "the ambient token is the same token");
            let inner = CancelToken::new();
            cancel_scope(&inner, || {
                assert!(!current_cancel_token().unwrap().is_cancelled(), "innermost wins");
            });
        });
        assert!(current_cancel_token().is_none());
    }

    #[test]
    fn serial_interruptible_fan_out_truncates_deterministically() {
        // Serial path: the token is checked before every index, so firing
        // it inside task 20 yields exactly the 21-element prefix.
        let pool = Pool::new(1);
        let token = CancelToken::new();
        let (results, truncated) = pool.run_indexed_interruptible(
            10_000,
            &token,
            || (),
            |i, ()| {
                if i == 20 {
                    token.cancel();
                }
                i
            },
        );
        assert!(truncated);
        assert_eq!(results, (0..=20).collect::<Vec<_>>());
    }

    #[test]
    fn interruptible_fan_out_returns_a_valid_prefix() {
        // The task itself fires the token at index 20. Each task carries a
        // little sleep so claim rounds are much slower than reaching index
        // 20 inside the first batch — the cancellation is then reliably
        // observed long before the index space is exhausted. Claiming
        // stops, in-flight batches finish, and the results are a
        // contiguous, correct prefix.
        for workers in [2, 8] {
            let pool = Pool::new(workers);
            let token = CancelToken::new();
            let (results, truncated) = pool.run_indexed_interruptible(
                1000,
                &token,
                || (),
                |i, ()| {
                    if i == 20 {
                        token.cancel();
                    }
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    i
                },
            );
            assert!(truncated, "workers = {workers}: the fan-out must report truncation");
            let len = results.len();
            assert!((1..1000).contains(&len), "workers = {workers}: len = {len}");
            assert_eq!(
                results,
                (0..len).collect::<Vec<_>>(),
                "workers = {workers}: prefix must be contiguous"
            );
        }
    }

    #[test]
    fn interruptible_fan_out_without_cancellation_is_complete_and_identical() {
        let never = CancelToken::new();
        let value = |i: usize, rng: &mut SimRng| (i, rng.next_u64());
        let root = SimRng::seed_from_u64(77);
        let baseline = replicate(0..100, &root, 1, value);
        for workers in [1, 2, 8] {
            let (results, truncated) =
                replicate_interruptible(0..100, &root, workers, &never, value);
            assert!(!truncated, "workers = {workers}");
            assert_eq!(results, baseline, "workers = {workers}");
        }
    }

    #[test]
    fn pre_cancelled_fan_out_runs_nothing() {
        let token = CancelToken::new();
        token.cancel();
        let pool = Pool::new(4);
        let ran = AtomicUsize::new(0);
        let (results, truncated) = pool.run_indexed_interruptible(
            100,
            &token,
            || (),
            |i, ()| {
                ran.fetch_add(1, Ordering::Relaxed);
                i
            },
        );
        assert!(truncated);
        assert!(results.is_empty(), "no batch may be claimed after the token fired");
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn replicate_with_matches_replicate_and_reuses_scratch() {
        let root = SimRng::seed_from_u64(99);
        let plain = replicate(0..40, &root, 4, |i, rng| (i, rng.next_u64()));
        let inits = AtomicUsize::new(0);
        let with_scratch = replicate_with(
            0..40,
            &root,
            4,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                Vec::<u64>::new()
            },
            |i, rng, buffer| {
                // The scratch is a reusable buffer; results must not depend
                // on what previous replications left in it.
                buffer.clear();
                buffer.push(rng.next_u64());
                (i, buffer[0])
            },
        );
        assert_eq!(plain, with_scratch);
        // One scratch per participating worker, not one per replication.
        let init_count = inits.load(Ordering::SeqCst);
        assert!((1..=4).contains(&init_count), "init ran {init_count} times");
    }

    #[test]
    #[cfg_attr(miri, ignore = "global pool threads outlive the test under miri")]
    fn global_pool_is_cached_per_worker_count() {
        let a = Pool::global(3);
        let b = Pool::global(3);
        assert!(Arc::ptr_eq(&a.shared, &b.shared), "same worker count must reuse the pool");
        let c = Pool::global(2);
        assert!(!Arc::ptr_eq(&a.shared, &c.shared));
        assert_eq!(a.workers(), 3);
        assert_eq!(c.workers(), 2);
    }

    #[test]
    fn run_indexed_with_threads_scratch_through_serial_path() {
        let pool = Pool::new(1);
        let out = pool.run_indexed_with(
            5,
            || 0usize,
            |i, calls| {
                *calls += 1;
                (i, *calls)
            },
        );
        // Serial path: one scratch, visited in index order.
        assert_eq!(out, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    }
}
