//! The work-stealing execution engine shared by every simulation layer.
//!
//! # Scheduling model
//!
//! A [`Pool`] owns a fixed budget of worker *permits* (one per worker
//! thread the caller asked for). Work is scheduled by *claiming*: every
//! worker — including the thread that called [`Pool::run_indexed`] —
//! repeatedly claims the next unstarted index from a shared atomic counter
//! and executes it. There are no fixed chunks, so a fast worker that
//! drains its share immediately steals the next index instead of idling
//! behind a slow one; wall-clock time is bounded by the total work, not by
//! the slowest worker's pre-assigned slice.
//!
//! Helper threads are recruited *lazily*: each time a worker claims an
//! index while more work remains, it tries to acquire spare permits and
//! spawns one scoped helper per permit granted. A helper returns its
//! permit the moment the counter is exhausted, so permits flow to
//! whichever `run_indexed` call still has unclaimed work.
//!
//! # Nested-pool arbitration
//!
//! While `run_indexed` executes, the pool installs itself as the thread's
//! *ambient* pool (on the calling thread and on every helper). A nested
//! fan-out — e.g. a `Study` running scenarios, each of which fans out its
//! own replications through [`replicate`] — therefore draws helpers from
//! the **same** permit budget instead of spawning a second pool: the
//! process never runs more than `workers` busy threads, and a scenario
//! that finishes early releases its permits to the replications of the
//! scenarios still running. This is what lets one global pool schedule
//! scenario×replication work units from an entire study.
//!
//! # Determinism
//!
//! [`replicate`] runs one closure per replication index, each with the RNG
//! stream derived from `(root seed, index)`, and collects the results **in
//! index order**. Because the stream depends only on the index and the
//! collection order is fixed, the returned vector is bit-identical for any
//! worker count and any scheduling interleaving — the invariant the SAN
//! experiment runner, the storage Monte-Carlo, and the `Study` runner all
//! rely on.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

use crate::SimRng;

/// Minimum batch size worth recruiting worker threads for.
const MIN_PARALLEL_COUNT: usize = 4;

/// Resolves a requested worker count (`0` = the machine's available
/// parallelism).
fn resolve_workers(workers: usize) -> usize {
    if workers > 0 {
        workers
    } else {
        std::thread::available_parallelism().map_or(4, std::num::NonZero::get)
    }
}

/// The shared worker budget of a pool: how many helper threads may be live
/// at once, process-wide for everything scheduled through this pool.
struct Permits {
    /// Permits currently available for recruiting helpers.
    available: AtomicUsize,
    /// Total worker count (helpers + the claiming caller thread).
    total: usize,
}

impl Permits {
    /// Acquires up to `want` permits and returns how many were granted.
    /// Never blocks; a claiming worker always makes progress itself, which
    /// is what makes the nested scheduling deadlock-free.
    fn try_acquire(&self, want: usize) -> usize {
        if want == 0 {
            return 0;
        }
        let mut current = self.available.load(Ordering::Relaxed);
        loop {
            if current == 0 {
                return 0;
            }
            let take = current.min(want);
            match self.available.compare_exchange_weak(
                current,
                current - take,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(actual) => current = actual,
            }
        }
    }

    fn release(&self, permits: usize) {
        if permits > 0 {
            self.available.fetch_add(permits, Ordering::AcqRel);
        }
    }
}

/// Releases one permit when a helper thread finishes (or unwinds).
struct PermitGuard(Arc<Permits>);

impl Drop for PermitGuard {
    fn drop(&mut self) {
        self.0.release(1);
    }
}

thread_local! {
    /// Stack of pools installed on this thread; the innermost one arbitrates
    /// every fan-out started from here.
    static AMBIENT: RefCell<Vec<Arc<Permits>>> = const { RefCell::new(Vec::new()) };
}

/// Installs `permits` as this thread's ambient pool until the guard drops.
fn push_ambient(permits: Arc<Permits>) -> AmbientGuard {
    AMBIENT.with(|stack| stack.borrow_mut().push(permits));
    AmbientGuard
}

struct AmbientGuard;

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        AMBIENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

fn ambient_permits() -> Option<Arc<Permits>> {
    AMBIENT.with(|stack| stack.borrow().last().cloned())
}

/// A work-stealing worker pool with a fixed permit budget.
///
/// See the [module documentation](self) for the scheduling model. A pool is
/// cheap to create — threads are spawned lazily, per fan-out, only while
/// there is unclaimed work — and is the arbitration point that keeps nested
/// fan-outs (study → scenario → replications) from oversubscribing the
/// machine.
pub struct Pool {
    shared: Arc<Permits>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("workers", &self.shared.total).finish()
    }
}

impl Pool {
    /// Creates a pool with the given worker budget (`0` = the machine's
    /// available parallelism, `1` = everything runs on the calling thread).
    pub fn new(workers: usize) -> Pool {
        let total = resolve_workers(workers);
        Pool {
            shared: Arc::new(Permits {
                available: AtomicUsize::new(total.saturating_sub(1)),
                total,
            }),
        }
    }

    /// The pool installed on the current thread by an enclosing
    /// [`Pool::run_indexed`], if any. Fan-outs started while a pool is
    /// ambient share its permit budget instead of spawning their own
    /// threads.
    pub fn current() -> Option<Pool> {
        ambient_permits().map(|shared| Pool { shared })
    }

    /// The pool's total worker budget.
    pub fn workers(&self) -> usize {
        self.shared.total
    }

    /// Runs `task(index)` for every `index` in `0..count` on this pool and
    /// returns the results **in index order**.
    ///
    /// The calling thread participates as a worker; helpers are recruited
    /// from the pool's spare permits while unclaimed work remains. Every
    /// worker has the pool installed as its ambient pool, so nested
    /// fan-outs (e.g. [`replicate`] called from inside `task`) draw from
    /// the same budget — one global scheduler, no oversubscription.
    pub fn run_indexed<T, F>(&self, count: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        let permits = Arc::clone(&self.shared);
        let _ambient = push_ambient(Arc::clone(&permits));
        if permits.total <= 1 || count == 1 {
            return (0..count).map(task).collect();
        }

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        let ctx = WorkContext { next: &next, count, task: &task, permits: &permits };
        std::thread::scope(|scope| {
            // The caller is the first worker; `tx` moves in and is dropped
            // when its claiming loop ends, so the drain below terminates
            // once every helper has finished too.
            work_loop(scope, &ctx, tx);
        });

        let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
        slots.resize_with(count, || None);
        for (index, value) in rx {
            slots[index] = Some(value);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("work unit {i} produced no result")))
            .collect()
    }
}

/// Shared state of one `run_indexed` fan-out.
struct WorkContext<'a, F> {
    next: &'a AtomicUsize,
    count: usize,
    task: &'a F,
    permits: &'a Arc<Permits>,
}

/// The claiming loop every worker (caller and helpers alike) runs: claim
/// the next index, recruit helpers for the remainder, execute, repeat.
fn work_loop<'scope, 'env, T, F>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    ctx: &'scope WorkContext<'scope, F>,
    tx: mpsc::Sender<(usize, T)>,
) where
    T: Send + 'scope,
    F: Fn(usize) -> T + Sync + 'scope,
{
    loop {
        let claimed = ctx.next.fetch_add(1, Ordering::Relaxed);
        if claimed >= ctx.count {
            break;
        }
        // Recruit one helper per spare permit for the work beyond this
        // unit. Permits freed elsewhere (another scenario finishing, a
        // sibling fan-out draining) are picked up at the next claim.
        let unclaimed = ctx.count - claimed - 1;
        let granted = ctx.permits.try_acquire(unclaimed);
        for _ in 0..granted {
            let tx = tx.clone();
            let permits = Arc::clone(ctx.permits);
            scope.spawn(move || {
                let _permit = PermitGuard(Arc::clone(&permits));
                let _ambient = push_ambient(permits);
                work_loop(scope, ctx, tx);
            });
        }
        let value = (ctx.task)(claimed);
        if tx.send((claimed, value)).is_err() {
            // The receiver is gone: the fan-out is unwinding after a
            // sibling worker panicked. Stop claiming.
            break;
        }
    }
}

/// Runs `run(index, rng)` for every index in `indices`, fanning the work
/// across the ambient [`Pool`] when one is installed (a study's global
/// pool) or a fresh pool of `workers` threads otherwise (`0` = the
/// machine's available parallelism, `1` = force serial execution), and
/// returns the results in index order.
///
/// Each call receives a fresh [`SimRng`] derived from `root` and its own
/// index, so the output is a pure function of `(root, indices)` —
/// independent of worker count, pool sharing, and scheduling order.
pub fn replicate<T, F>(
    indices: std::ops::Range<usize>,
    root: &SimRng,
    workers: usize,
    run: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut SimRng) -> T + Sync,
{
    let count = indices.len();
    let start = indices.start;
    let task = |offset: usize| {
        let index = start + offset;
        run(index, &mut root.derive_stream(index as u64))
    };
    if count == 0 {
        return Vec::new();
    }
    if workers == 1 || count < MIN_PARALLEL_COUNT {
        // Serial path: iterate the range directly — no index buffer, no
        // channel, no pool.
        return (0..count).map(task).collect();
    }
    let pool = Pool::current().unwrap_or_else(|| Pool::new(workers));
    pool.run_indexed(count, task)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let root = SimRng::seed_from_u64(1);
        let out = replicate(0..100, &root, 7, |i, _| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let root = SimRng::seed_from_u64(42);
        let draw = |i: usize, rng: &mut SimRng| (i, rng.next_u64());
        let serial = replicate(0..37, &root, 1, draw);
        for workers in [0, 2, 4, 16] {
            assert_eq!(serial, replicate(0..37, &root, workers, draw), "workers = {workers}");
        }
    }

    #[test]
    fn offset_ranges_reuse_the_same_streams() {
        let root = SimRng::seed_from_u64(7);
        let draw = |i: usize, rng: &mut SimRng| (i, rng.next_u64());
        let full = replicate(0..20, &root, 4, draw);
        let tail = replicate(10..20, &root, 4, draw);
        assert_eq!(&full[10..], &tail[..]);
    }

    #[test]
    fn empty_range_is_fine() {
        let root = SimRng::seed_from_u64(3);
        let out: Vec<u64> = replicate(0..0, &root, 4, |_, rng| rng.next_u64());
        assert!(out.is_empty());
    }

    #[test]
    fn pool_runs_every_index_exactly_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        let out = pool.run_indexed(50, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
            i * 2
        });
        assert_eq!(out, (0..50).map(|i| i * 2).collect::<Vec<_>>());
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_resolves_auto_worker_count() {
        assert!(Pool::new(0).workers() >= 1);
        assert_eq!(Pool::new(3).workers(), 3);
        assert!(format!("{:?}", Pool::new(3)).contains('3'));
    }

    #[test]
    fn no_ambient_pool_outside_run_indexed() {
        assert!(Pool::current().is_none());
        let pool = Pool::new(2);
        pool.run_indexed(1, |_| assert!(Pool::current().is_some()));
        assert!(Pool::current().is_none());
    }

    #[test]
    fn nested_fan_outs_share_one_budget() {
        // A 4-worker pool fanning out 3 outer tasks, each of which fans out
        // 8 inner replications: the inner `replicate` calls must find the
        // ambient pool and the observed helper-thread high-water mark must
        // stay within the budget (3 helpers + the caller).
        let pool = Pool::new(4);
        let live = AtomicUsize::new(1); // the calling thread
        let peak = AtomicUsize::new(1);
        let root = SimRng::seed_from_u64(9);
        let outer = pool.run_indexed(3, |outer_idx| {
            let inner = replicate(0..8, &root, 4, |i, rng| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(1));
                let v = (i as u64) ^ rng.next_u64();
                live.fetch_sub(1, Ordering::SeqCst);
                v
            });
            (outer_idx, inner.len())
        });
        assert_eq!(outer, vec![(0, 8), (1, 8), (2, 8)]);
        // `live` counts in-flight work units; with a 4-worker budget no more
        // than 4 (+1 for the outer caller's own bookkeeping slack) may ever
        // run at once.
        assert!(peak.load(Ordering::SeqCst) <= 5, "peak {}", peak.load(Ordering::SeqCst));
    }

    #[test]
    fn nested_fan_outs_stay_deterministic() {
        let root = SimRng::seed_from_u64(11);
        let run = |pool: &Pool| {
            pool.run_indexed(3, |outer| {
                let root = root.derive_stream(outer as u64);
                replicate(0..6, &root, 8, |_, rng| rng.next_u64())
            })
        };
        let serial = run(&Pool::new(1));
        for workers in [2, 4, 8] {
            assert_eq!(serial, run(&Pool::new(workers)), "workers = {workers}");
        }
    }

    #[test]
    fn uneven_task_durations_do_not_perturb_order() {
        // Work stealing: the first index is slow, the rest are fast — the
        // results must still come back in index order and be complete.
        let pool = Pool::new(3);
        let out = pool.run_indexed(12, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out, (0..12).collect::<Vec<_>>());
    }
}
