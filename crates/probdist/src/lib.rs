//! Probability distributions, statistics, and survival analysis for
//! dependability simulation.
//!
//! This crate is the numerical foundation of the petascale cluster file
//! system dependability study. It provides:
//!
//! * **Lifetime distributions** used to model failure and repair processes:
//!   [`Exponential`], [`Weibull`], [`Deterministic`], [`LogNormal`],
//!   [`Gamma`], [`Uniform`], and [`Empirical`], all implementing the
//!   [`Distribution`] trait (sampling, CDF, PDF, hazard rate, quantiles,
//!   moments).
//! * **Failure-rate arithmetic** ([`rates`]): conversions between MTBF,
//!   annualized failure rate (AFR), and per-hour rates, as the paper mixes
//!   all three conventions (Table 5).
//! * **Statistics** ([`stats`]): streaming mean/variance accumulators,
//!   Student-t and normal confidence intervals used to report simulation
//!   results at the 95 % level, and batch-means estimation.
//! * **Survival analysis** ([`fitting`]): Kaplan–Meier estimation and
//!   maximum-likelihood Weibull/exponential fitting with right-censoring,
//!   reproducing the Table 4 analysis (`β ≈ 0.7`, MTBF ≈ 300 000 h).
//! * **Rare-event estimation** ([`rare`]): the estimator arithmetic of
//!   importance sampling (likelihood-ratio-weighted observations through
//!   [`stats::WeightedRunning`], effective sample size, variance-reduction
//!   factors) and multilevel splitting (per-level passage probabilities
//!   combined with the independent-stages variance approximation), plus
//!   the naive-Monte-Carlo sample-size projection both are measured
//!   against.
//! * **Telemetry** ([`telemetry`]): a lock-free metrics and span-timing
//!   layer — statically registered counters/gauges/histograms in
//!   per-thread sharded atomics, drop-timed pipeline-phase spans, a live
//!   stderr progress line, and text/CSV/JSON/Prometheus exposition.
//!   Off by default; never perturbs simulation statistics.
//!
//! # Example
//!
//! ```
//! use probdist::{Distribution, Weibull, SimRng};
//!
//! # fn main() -> Result<(), probdist::DistError> {
//! // Disk lifetime model used for the ABE scratch partition:
//! // Weibull with shape 0.7 and a mean of 300 000 hours.
//! let disk = Weibull::from_shape_and_mean(0.7, 300_000.0)?;
//! let mut rng = SimRng::seed_from_u64(42);
//! let lifetime = disk.sample(&mut rng);
//! assert!(lifetime > 0.0);
//! // Infant mortality: hazard decreases over time for shape < 1.
//! assert!(disk.hazard(10.0) > disk.hazard(10_000.0));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

#[cfg(feature = "chaos")]
pub mod chaos;
mod deterministic;
mod distribution;
mod empirical;
mod error;
mod exponential;
pub mod fitting;
mod gamma;
mod lognormal;
pub mod parallel;
pub mod rare;
pub mod rates;
mod rng;
pub(crate) mod special;
pub mod stats;
pub mod telemetry;
mod uniform;
mod weibull;

pub use deterministic::Deterministic;
pub use distribution::{Dist, Distribution};
pub use empirical::Empirical;
pub use error::DistError;
pub use exponential::Exponential;
pub use gamma::Gamma;
pub use lognormal::LogNormal;
pub use rates::{Afr, FailureRate, Mtbf, HOURS_PER_YEAR};
pub use rng::SimRng;
pub use uniform::Uniform;
pub use weibull::Weibull;

/// Numerical tolerance used throughout the crate for validating parameters
/// and comparing floating point results in invariant checks.
pub const EPSILON: f64 = 1e-12;

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Exponential>();
        assert_send_sync::<Weibull>();
        assert_send_sync::<Deterministic>();
        assert_send_sync::<LogNormal>();
        assert_send_sync::<Gamma>();
        assert_send_sync::<Uniform>();
        assert_send_sync::<Empirical>();
        assert_send_sync::<Dist>();
        assert_send_sync::<DistError>();
        assert_send_sync::<SimRng>();
    }
}
