use serde::{Deserialize, Serialize};

use crate::stats::{student_t_quantile, ConfidenceInterval};
use crate::DistError;

/// Numerically stable streaming accumulator for *weighted* observations:
/// the unbiased mean of the products `w·x` (the importance-sampling
/// estimator), the self-normalised weighted mean `Σwx / Σw` with its
/// weighted variance (West's incremental algorithm), and the effective
/// sample size `(Σw)² / Σw²`.
///
/// This is the statistics substrate of the rare-event estimators in
/// [`crate::rare`]: an importance-sampled replication reports its measure
/// `x` together with a likelihood-ratio weight `w = dP/dP'`, and the mean
/// of the products ([`WeightedRunning::mean_product`]) is the unbiased
/// estimate of the measure under the *original* law `P` — for non-hit
/// replications the product is zero, so the estimator's spread is carried
/// entirely by the hits and their weights. The Kish effective sample size
/// quantifies weight degeneracy — with unit weights it equals the
/// observation count, and it collapses towards 1 as a few huge weights
/// dominate.
///
/// With unit weights the accumulator reproduces
/// [`RunningStats`](crate::stats::RunningStats) bit for bit (count, mean,
/// variance, and standard error, on both the product and the
/// self-normalised view), which is pinned by a property test, so weighted
/// and unweighted estimation paths cannot drift apart.
///
/// # Example
///
/// ```
/// use probdist::stats::WeightedRunning;
///
/// let mut acc = WeightedRunning::new();
/// acc.push(1.0, 3.0); // value 1 with weight 3
/// acc.push(5.0, 1.0);
/// assert_eq!(acc.count(), 2);
/// assert_eq!(acc.mean_product(), 4.0); // (3·1 + 1·5) / 2
/// assert_eq!(acc.weighted_mean(), 2.0); // (3·1 + 1·5) / 4
/// assert!(acc.effective_sample_size() < 2.0); // skewed weights lose ESS
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedRunning {
    count: u64,
    nonzero: u64,
    sum_weights: f64,
    sum_sq_weights: f64,
    mean: f64,
    m2: f64,
    product_mean: f64,
    product_m2: f64,
    /// Observations rejected for a non-finite value or weight.
    non_finite: u64,
}

impl Default for WeightedRunning {
    fn default() -> Self {
        WeightedRunning::new()
    }
}

impl WeightedRunning {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        WeightedRunning {
            count: 0,
            nonzero: 0,
            sum_weights: 0.0,
            sum_sq_weights: 0.0,
            mean: 0.0,
            m2: 0.0,
            product_mean: 0.0,
            product_m2: 0.0,
            non_finite: 0,
        }
    }

    /// Adds one observation `x` with weight `w`.
    ///
    /// A zero weight counts the observation without influencing the mean or
    /// variance (an importance-sampled replication whose weight underflowed
    /// still spent a replication).
    ///
    /// A non-finite value or weight is **not** folded into the statistics;
    /// it is counted in [`WeightedRunning::non_finite_count`], which
    /// poisons [`WeightedRunning::confidence_interval`]. Use
    /// [`WeightedRunning::try_push`] to surface the rejection at the call
    /// site.
    ///
    /// # Panics
    ///
    /// Panics if `w` is negative (a likelihood ratio can never be — that is
    /// a programming error, not data corruption).
    pub fn push(&mut self, x: f64, w: f64) {
        assert!(w >= 0.0 || w.is_nan(), "weight must be non-negative, got {w}");
        if !x.is_finite() || !w.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.count += 1;
        if w > 0.0 && x != 0.0 {
            self.nonzero += 1;
        }
        // Unbiased product track: Welford over z = w·x (zero-weight
        // replications contribute an exact zero, as the estimator demands).
        let z = w * x;
        let delta_z = z - self.product_mean;
        self.product_mean += delta_z / self.count as f64;
        self.product_m2 += delta_z * (z - self.product_mean);
        if w == 0.0 {
            return;
        }
        self.sum_weights += w;
        self.sum_sq_weights += w * w;
        let delta = x - self.mean;
        self.mean += w * delta / self.sum_weights;
        self.m2 += w * delta * (x - self.mean);
    }

    /// Adds one observation, rejecting a non-finite value or weight with a
    /// typed error (the rejection is also counted in
    /// [`WeightedRunning::non_finite_count`]).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NonFiniteObservation`] when `x` or `w` is not
    /// finite.
    ///
    /// # Panics
    ///
    /// Panics if `w` is negative, like [`WeightedRunning::push`].
    pub fn try_push(&mut self, x: f64, w: f64) -> Result<(), DistError> {
        self.push(x, w);
        if x.is_finite() && w.is_finite() {
            Ok(())
        } else {
            Err(DistError::NonFiniteObservation { count: self.non_finite })
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &WeightedRunning) {
        self.non_finite += other.non_finite;
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            let non_finite = self.non_finite;
            *self = *other;
            self.non_finite = non_finite;
            return;
        }
        let total = self.count + other.count;
        let delta_z = other.product_mean - self.product_mean;
        self.product_mean += delta_z * other.count as f64 / total as f64;
        self.product_m2 += other.product_m2
            + delta_z * delta_z * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.nonzero += other.nonzero;
        if other.sum_weights == 0.0 {
            return;
        }
        if self.sum_weights == 0.0 {
            self.sum_weights = other.sum_weights;
            self.sum_sq_weights = other.sum_sq_weights;
            self.mean = other.mean;
            self.m2 = other.m2;
            return;
        }
        let total = self.sum_weights + other.sum_weights;
        let delta = other.mean - self.mean;
        self.mean += delta * other.sum_weights / total;
        self.m2 += other.m2 + delta * delta * self.sum_weights * other.sum_weights / total;
        self.sum_weights = total;
        self.sum_sq_weights += other.sum_sq_weights;
    }

    /// Number of observations pushed (including zero-weight ones, excluding
    /// rejected non-finite ones).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of observations rejected for a non-finite value or weight. A
    /// non-zero count poisons
    /// [`WeightedRunning::confidence_interval`].
    pub fn non_finite_count(&self) -> u64 {
        self.non_finite
    }

    /// Number of observations that actually contribute to the estimate:
    /// positive weight and a non-zero value. This is the support count a
    /// rare-event stopping rule checks before trusting a relative target
    /// (see [`StoppingRule::met_by_support`](crate::stats::StoppingRule::met_by_support)).
    pub fn nonzero_count(&self) -> u64 {
        self.nonzero
    }

    /// Sum of the weights.
    pub fn sum_weights(&self) -> f64 {
        self.sum_weights
    }

    /// Unbiased mean of the products `w·x` over **all** observations — the
    /// importance-sampling (Horvitz–Thompson) estimator of `E_P[x]`: under
    /// the biased law, `E[w·x] = E_P[x]` exactly. Returns `0.0` before any
    /// observation.
    pub fn mean_product(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.product_mean
        }
    }

    /// Unbiased sample variance of the products `w·x` (n−1 denominator).
    /// Returns `0.0` with fewer than two observations.
    pub fn product_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.product_m2 / (self.count - 1) as f64
        }
    }

    /// Standard error of [`WeightedRunning::mean_product`].
    pub fn product_std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.product_variance().sqrt() / (self.count as f64).sqrt()
        }
    }

    /// Weighted (self-normalised) mean `Σwx / Σw`. Returns `0.0` before any
    /// positively-weighted observation.
    ///
    /// This is the ratio-estimator view of the same data: consistent, and
    /// useful as a diagnostic (a healthy importance-sampling run has
    /// `Σw/n ≈ 1`, so the two means agree), but the rare-event estimators
    /// report [`WeightedRunning::mean_product`], which is unbiased at any
    /// sample size.
    pub fn weighted_mean(&self) -> f64 {
        if self.sum_weights == 0.0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Effective sample size `(Σw)² / Σw²` (Kish). Equals the count for
    /// unit weights and collapses towards 1 under extreme weight skew.
    /// Returns `0.0` before any positively-weighted observation.
    pub fn effective_sample_size(&self) -> f64 {
        if self.sum_sq_weights == 0.0 {
            0.0
        } else {
            self.sum_weights * self.sum_weights / self.sum_sq_weights
        }
    }

    /// Unbiased weighted sample variance (reliability-weights denominator
    /// `Σw − Σw²/Σw`). Reduces to the `n−1` formula for unit weights.
    /// Returns `0.0` while the denominator is not positive (fewer than two
    /// effective observations).
    pub fn variance(&self) -> f64 {
        if self.sum_weights == 0.0 {
            return 0.0;
        }
        let denominator = self.sum_weights - self.sum_sq_weights / self.sum_weights;
        if denominator <= 0.0 {
            0.0
        } else {
            self.m2 / denominator
        }
    }

    /// Standard error of the weighted mean: `sqrt(variance) / sqrt(ESS)`.
    /// Reduces to `s / sqrt(n)` for unit weights.
    pub fn std_error(&self) -> f64 {
        let ess = self.effective_sample_size();
        if ess == 0.0 {
            0.0
        } else {
            self.variance().sqrt() / ess.sqrt()
        }
    }

    /// Student-t confidence interval on the unbiased weighted-mean
    /// estimator [`WeightedRunning::mean_product`] — the interval the
    /// rare-event stopping criterion (relative half-width on the weighted
    /// mean, see
    /// [`StoppingRule::met_by_support`](crate::stats::StoppingRule::met_by_support))
    /// is evaluated on. With unit weights this is exactly the interval
    /// [`confidence_interval`](crate::stats::confidence_interval) computes
    /// from a [`RunningStats`](crate::stats::RunningStats).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::EmptyData`] with fewer than two observations,
    /// [`DistError::InvalidProbability`] for a level outside `(0, 1)`, and
    /// [`DistError::NonFiniteObservation`] when the accumulator rejected
    /// any non-finite contribution (the interval would describe an
    /// incomplete sample).
    pub fn confidence_interval(&self, level: f64) -> Result<ConfidenceInterval, DistError> {
        if !(level > 0.0 && level < 1.0) {
            return Err(DistError::InvalidProbability { value: level });
        }
        if self.non_finite > 0 {
            return Err(DistError::NonFiniteObservation { count: self.non_finite });
        }
        if self.count < 2 {
            return Err(DistError::EmptyData);
        }
        let t = student_t_quantile(self.count - 1, 0.5 + level / 2.0);
        Ok(ConfidenceInterval {
            point: self.mean_product(),
            half_width: t * self.product_std_error(),
            level,
            samples: self.count,
        })
    }
}

impl Extend<(f64, f64)> for WeightedRunning {
    fn extend<T: IntoIterator<Item = (f64, f64)>>(&mut self, iter: T) {
        for (x, w) in iter {
            self.push(x, w);
        }
    }
}

impl FromIterator<(f64, f64)> for WeightedRunning {
    fn from_iter<T: IntoIterator<Item = (f64, f64)>>(iter: T) -> Self {
        let mut acc = WeightedRunning::new();
        acc.extend(iter);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{confidence_interval, RunningStats};
    use proptest::prelude::*;

    #[test]
    fn empty_accumulator_defaults() {
        let acc = WeightedRunning::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.nonzero_count(), 0);
        assert_eq!(acc.weighted_mean(), 0.0);
        assert_eq!(acc.mean_product(), 0.0);
        assert_eq!(acc.product_variance(), 0.0);
        assert_eq!(acc.product_std_error(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.std_error(), 0.0);
        assert_eq!(acc.effective_sample_size(), 0.0);
        assert!(acc.confidence_interval(0.95).is_err());
        assert!(WeightedRunning::default() == acc);
    }

    /// Known-answer test: the weighted mean and the reliability-weights
    /// variance of a small hand-computed data set.
    #[test]
    fn weighted_mean_and_variance_hand_checked() {
        // Values 2, 4, 6 with weights 1, 2, 1: mean = (2 + 8 + 6)/4 = 4.
        let acc: WeightedRunning = [(2.0, 1.0), (4.0, 2.0), (6.0, 1.0)].into_iter().collect();
        assert!((acc.weighted_mean() - 4.0).abs() < 1e-12);
        // m2 = Σw(x-μ)² = 1·4 + 2·0 + 1·4 = 8; denominator = 4 − 6/4 = 2.5.
        assert!((acc.variance() - 8.0 / 2.5).abs() < 1e-12);
        // ESS = 16 / 6.
        assert!((acc.effective_sample_size() - 16.0 / 6.0).abs() < 1e-12);
        assert_eq!(acc.count(), 3);
        assert_eq!(acc.nonzero_count(), 3);
    }

    /// Known-answer test under extreme weight skew: one observation carrying
    /// essentially all the weight collapses the effective sample size to ~1
    /// and drags the mean to that observation.
    #[test]
    fn extreme_weight_skew_collapses_effective_sample_size() {
        let mut acc = WeightedRunning::new();
        acc.push(10.0, 1e12);
        for _ in 0..99 {
            acc.push(0.0, 1e-6);
        }
        assert_eq!(acc.count(), 100);
        assert!((acc.weighted_mean() - 10.0).abs() < 1e-9);
        let ess = acc.effective_sample_size();
        assert!(ess > 1.0 - 1e-9 && ess < 1.0 + 1e-6, "ESS {ess} must collapse to ~1");
        // Exact ESS: (W)²/Σw² with W = 1e12 + 99e-6.
        let w = 1e12 + 99.0 * 1e-6;
        let sq = 1e24 + 99.0 * 1e-12;
        assert!((ess - w * w / sq).abs() < 1e-9);
        // The dominating weight also blows up the product estimator's
        // interval: one run carries everything, so the relative half-width
        // is enormous — degeneracy is visible, never hidden.
        let interval = acc.confidence_interval(0.95).unwrap();
        assert!(interval.relative_half_width() > 1.0, "{interval}");
    }

    #[test]
    fn zero_weights_count_but_do_not_contribute() {
        let mut acc = WeightedRunning::new();
        acc.push(100.0, 0.0);
        acc.push(2.0, 1.0);
        acc.push(4.0, 1.0);
        assert_eq!(acc.count(), 3);
        assert_eq!(acc.nonzero_count(), 2);
        assert!((acc.weighted_mean() - 3.0).abs() < 1e-12);
        // The product mean counts the zero-weight replication as an exact
        // zero contribution (the unbiased-estimator requirement).
        assert!((acc.mean_product() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nonzero_count_tracks_contributing_observations() {
        let mut acc = WeightedRunning::new();
        acc.push(0.0, 1.0); // zero value: no support
        acc.push(1.0, 0.0); // zero weight: no support
        acc.push(1.0, 2.0); // contributes
        assert_eq!(acc.count(), 3);
        assert_eq!(acc.nonzero_count(), 1);
    }

    #[test]
    #[should_panic(expected = "weight must be non-negative")]
    fn negative_weights_are_rejected() {
        WeightedRunning::new().push(1.0, -0.5);
    }

    #[test]
    fn non_finite_contributions_poison_instead_of_corrupting() {
        let mut acc = WeightedRunning::new();
        acc.push(1.0, 1.0);
        acc.push(f64::NAN, 1.0); // non-finite value
        acc.push(2.0, f64::INFINITY); // non-finite weight
        acc.push(3.0, 1.0);
        // The finite statistics are exactly those of [(1,1), (3,1)].
        assert_eq!(acc.count(), 2);
        assert!((acc.weighted_mean() - 2.0).abs() < 1e-12);
        assert_eq!(acc.non_finite_count(), 2);
        // A poisoned accumulator refuses to produce an interval.
        assert_eq!(
            acc.confidence_interval(0.95),
            Err(DistError::NonFiniteObservation { count: 2 })
        );
        // try_push surfaces the rejection at the call site.
        let mut typed = WeightedRunning::new();
        assert_eq!(typed.try_push(1.0, 1.0), Ok(()));
        assert_eq!(
            typed.try_push(f64::NAN, 1.0),
            Err(DistError::NonFiniteObservation { count: 1 })
        );
        // Merge carries the poison flag.
        let mut clean = WeightedRunning::new();
        clean.push(1.0, 1.0);
        clean.push(2.0, 1.0);
        clean.merge(&typed);
        assert_eq!(clean.non_finite_count(), 1);
        assert!(clean.confidence_interval(0.95).is_err());
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<(f64, f64)> =
            (0..100).map(|i| ((i as f64).sin() + 2.0, 0.5 + (i % 7) as f64)).collect();
        let sequential: WeightedRunning = data.iter().copied().collect();
        let mut merged: WeightedRunning = data[..41].iter().copied().collect();
        let right: WeightedRunning = data[41..].iter().copied().collect();
        merged.merge(&right);
        assert_eq!(merged.count(), sequential.count());
        assert!((merged.weighted_mean() - sequential.weighted_mean()).abs() < 1e-12);
        assert!((merged.variance() - sequential.variance()).abs() < 1e-10);
        assert!((merged.effective_sample_size() - sequential.effective_sample_size()).abs() < 1e-9);

        // Merging an empty accumulator is the identity, both ways.
        let mut acc = sequential;
        acc.merge(&WeightedRunning::new());
        assert_eq!(acc, sequential);
        let mut empty = WeightedRunning::new();
        empty.merge(&sequential);
        assert_eq!(empty, sequential);
    }

    #[test]
    fn confidence_interval_matches_unweighted_for_unit_weights() {
        let values = [3.1, 4.1, 5.9, 2.6, 5.3, 5.8, 9.7, 9.3];
        let weighted: WeightedRunning = values.iter().map(|&x| (x, 1.0)).collect();
        let unweighted: RunningStats = values.iter().copied().collect();
        let wi = weighted.confidence_interval(0.95).unwrap();
        let ui = confidence_interval(&unweighted, 0.95).unwrap();
        assert_eq!(wi.point, ui.point);
        assert_eq!(wi.half_width, ui.half_width);
        assert_eq!(wi.samples, ui.samples);
        assert!(weighted.confidence_interval(1.5).is_err());
        assert!(weighted.confidence_interval(0.0).is_err());
    }

    proptest! {
        // Unit weights must reproduce the unweighted accumulator bit for
        // bit: same count, mean, variance, and standard error.
        #[test]
        fn unit_weights_reproduce_running_bit_for_bit(
            data in proptest::collection::vec(-1e3..1e3_f64, 2..200)
        ) {
            let weighted: WeightedRunning = data.iter().map(|&x| (x, 1.0)).collect();
            let unweighted: RunningStats = data.iter().copied().collect();
            prop_assert_eq!(weighted.count(), unweighted.count());
            prop_assert_eq!(weighted.weighted_mean(), unweighted.mean());
            prop_assert_eq!(weighted.variance(), unweighted.variance());
            prop_assert_eq!(weighted.std_error(), unweighted.std_error());
            prop_assert_eq!(weighted.mean_product(), unweighted.mean());
            prop_assert_eq!(weighted.product_variance(), unweighted.variance());
            prop_assert_eq!(weighted.product_std_error(), unweighted.std_error());
            prop_assert_eq!(weighted.effective_sample_size(), unweighted.count() as f64);
        }

        // Scaling every weight by a common positive factor changes neither
        // the mean, the variance, nor the effective sample size (beyond
        // floating-point noise).
        #[test]
        fn weights_are_scale_invariant(
            values in proptest::collection::vec(-1e3..1e3_f64, 2..100),
            scale in 0.01..100.0_f64
        ) {
            let data: Vec<(f64, f64)> = values
                .iter()
                .enumerate()
                .map(|(i, &x)| (x, 0.25 + (i % 7) as f64))
                .collect();
            let base: WeightedRunning = data.iter().copied().collect();
            let scaled: WeightedRunning =
                data.iter().map(|&(x, w)| (x, w * scale)).collect();
            prop_assert!((base.weighted_mean() - scaled.weighted_mean()).abs() < 1e-6);
            prop_assert!(
                (base.effective_sample_size() - scaled.effective_sample_size()).abs() < 1e-6
            );
            let rel = (base.variance() - scaled.variance()).abs()
                / base.variance().abs().max(1e-12);
            prop_assert!(rel < 1e-6);
        }
    }
}
