use serde::{Deserialize, Serialize};

use crate::special::std_normal_quantile;
use crate::stats::RunningStats;
use crate::DistError;

/// A two-sided confidence interval around a point estimate.
///
/// # Example
///
/// ```
/// use probdist::stats::{confidence_interval, RunningStats};
///
/// let acc: RunningStats = (0..50).map(|i| 0.97 + 0.001 * (i % 5) as f64).collect();
/// let ci = confidence_interval(&acc, 0.95).unwrap();
/// assert!(ci.contains(ci.point));
/// assert!(ci.half_width < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// The point estimate (sample mean).
    pub point: f64,
    /// Half-width of the interval; the interval is `point ± half_width`.
    pub half_width: f64,
    /// The confidence level (e.g. `0.95`).
    pub level: f64,
    /// Number of observations the interval is based on.
    pub samples: u64,
}

impl ConfidenceInterval {
    /// Lower endpoint of the interval.
    pub fn lower(&self) -> f64 {
        self.point - self.half_width
    }

    /// Upper endpoint of the interval.
    pub fn upper(&self) -> f64 {
        self.point + self.half_width
    }

    /// Whether `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower() && value <= self.upper()
    }

    /// Relative half-width `half_width / |point|`, or `f64::INFINITY` when
    /// the point estimate is zero. Used as a stopping criterion for
    /// sequential replication.
    pub fn relative_half_width(&self) -> f64 {
        if self.point == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.point.abs()
        }
    }

    /// A degenerate interval around a single deterministic value.
    pub fn exact(value: f64) -> Self {
        ConfidenceInterval { point: value, half_width: 0.0, level: 1.0, samples: 1 }
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.6} ± {:.6} ({:.0}% CI, n={})",
            self.point,
            self.half_width,
            self.level * 100.0,
            self.samples
        )
    }
}

/// Computes a Student-t confidence interval on the mean of the observations
/// accumulated in `stats`.
///
/// # Errors
///
/// Returns [`DistError::EmptyData`] if fewer than two observations have been
/// accumulated (a variance estimate requires at least two),
/// [`DistError::InvalidProbability`] if `level` is not in `(0, 1)`, and
/// [`DistError::NonFiniteObservation`] if the accumulator rejected any
/// non-finite observation — the interval would describe an incomplete
/// sample, so the corruption surfaces as a typed error instead.
pub fn confidence_interval(
    stats: &RunningStats,
    level: f64,
) -> Result<ConfidenceInterval, DistError> {
    if !(0.0..1.0).contains(&level) || level <= 0.0 {
        return Err(DistError::InvalidProbability { value: level });
    }
    if stats.non_finite_count() > 0 {
        return Err(DistError::NonFiniteObservation { count: stats.non_finite_count() });
    }
    if stats.count() < 2 {
        return Err(DistError::EmptyData);
    }
    let dof = stats.count() - 1;
    let t = student_t_quantile(dof, 0.5 + level / 2.0);
    Ok(ConfidenceInterval {
        point: stats.mean(),
        half_width: t * stats.std_error(),
        level,
        samples: stats.count(),
    })
}

/// Quantile of the Student-t distribution with `dof` degrees of freedom at
/// probability `p`.
///
/// Uses the Cornish–Fisher style expansion of the t quantile in terms of the
/// normal quantile (Abramowitz & Stegun 26.7.5), which is accurate to better
/// than 1e-3 for `dof >= 3` and converges to the exact normal quantile as
/// `dof → ∞`. For `dof` 1 and 2 closed forms are used.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)` or `dof == 0`.
pub fn student_t_quantile(dof: u64, p: f64) -> f64 {
    assert!(dof > 0, "degrees of freedom must be positive");
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");
    match dof {
        1 => (std::f64::consts::PI * (p - 0.5)).tan(),
        2 => {
            let a = 2.0 * p - 1.0;
            a * (2.0 / (1.0 - a * a)).sqrt()
        }
        _ => {
            let z = std_normal_quantile(p);
            let n = dof as f64;
            let z3 = z.powi(3);
            let z5 = z.powi(5);
            let z7 = z.powi(7);
            z + (z3 + z) / (4.0 * n)
                + (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * n * n)
                + (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / (384.0 * n.powi(3))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_quantile_matches_tables() {
        // Two-sided 95 % critical values from standard t tables.
        let cases =
            [(1u64, 12.706), (2, 4.303), (5, 2.571), (10, 2.228), (30, 2.042), (100, 1.984)];
        for (dof, expected) in cases {
            let t = student_t_quantile(dof, 0.975);
            let tol = if dof <= 2 { 0.01 } else { 0.02 };
            assert!((t - expected).abs() < tol, "dof {dof}: got {t}, want {expected}");
        }
    }

    #[test]
    fn t_quantile_converges_to_normal() {
        let t = student_t_quantile(1_000_000, 0.975);
        assert!((t - 1.960).abs() < 1e-3);
    }

    #[test]
    fn interval_from_constant_data_has_zero_width() {
        let acc: RunningStats = std::iter::repeat_n(0.5, 20).collect();
        let ci = confidence_interval(&acc, 0.95).unwrap();
        assert_eq!(ci.point, 0.5);
        assert_eq!(ci.half_width, 0.0);
        assert!(ci.contains(0.5));
        assert!(!ci.contains(0.51));
    }

    #[test]
    fn interval_requires_two_samples_and_valid_level() {
        let mut acc = RunningStats::new();
        assert!(confidence_interval(&acc, 0.95).is_err());
        acc.push(1.0);
        assert!(confidence_interval(&acc, 0.95).is_err());
        acc.push(2.0);
        assert!(confidence_interval(&acc, 0.95).is_ok());
        assert!(confidence_interval(&acc, 1.5).is_err());
        assert!(confidence_interval(&acc, 0.0).is_err());
    }

    #[test]
    #[cfg_attr(miri, ignore)] // heavy sampling loop
    fn interval_narrows_with_more_samples() {
        // Same spread, more samples → narrower interval.
        let few: RunningStats = (0..10).map(|i| (i % 2) as f64).collect();
        let many: RunningStats = (0..1000).map(|i| (i % 2) as f64).collect();
        let ci_few = confidence_interval(&few, 0.95).unwrap();
        let ci_many = confidence_interval(&many, 0.95).unwrap();
        assert!(ci_many.half_width < ci_few.half_width);
    }

    #[test]
    fn coverage_of_true_mean_is_roughly_nominal() {
        // Monte-Carlo check: ~95 % of intervals built from N(0,1)-like data
        // should cover the true mean 0.5 (we use uniform data, mean 0.5).
        use crate::SimRng;
        let mut rng = SimRng::seed_from_u64(77);
        let trials = 400;
        let mut covered = 0;
        for _ in 0..trials {
            let acc: RunningStats = (0..30).map(|_| rng.uniform01()).collect();
            let ci = confidence_interval(&acc, 0.95).unwrap();
            if ci.contains(0.5) {
                covered += 1;
            }
        }
        let coverage = covered as f64 / trials as f64;
        assert!(coverage > 0.90 && coverage <= 1.0, "coverage {coverage}");
    }

    #[test]
    fn exact_interval_and_display() {
        let ci = ConfidenceInterval::exact(0.972);
        assert_eq!(ci.lower(), 0.972);
        assert_eq!(ci.upper(), 0.972);
        assert_eq!(ci.relative_half_width(), 0.0);
        let text = ci.to_string();
        assert!(text.contains("0.972"));
    }

    #[test]
    fn relative_half_width_of_zero_point_is_infinite() {
        let ci = ConfidenceInterval { point: 0.0, half_width: 0.1, level: 0.95, samples: 10 };
        assert_eq!(ci.relative_half_width(), f64::INFINITY);
    }
}
