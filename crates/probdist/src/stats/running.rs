use serde::{Deserialize, Serialize};

use crate::DistError;

/// Numerically stable streaming accumulator for count, mean, variance,
/// minimum and maximum (Welford's algorithm).
///
/// Used by the simulation engine to accumulate reward observations across
/// replications without storing every sample.
///
/// # Non-finite observations
///
/// A NaN or ±inf observation would silently corrupt every statistic the
/// accumulator reports (one NaN makes the mean, variance, and any
/// confidence interval NaN forever). The accumulator therefore **rejects**
/// non-finite observations: [`RunningStats::try_push`] returns a typed
/// [`DistError::NonFiniteObservation`]; the infallible
/// [`RunningStats::push`] records the rejection in
/// [`RunningStats::non_finite_count`] and leaves the moments untouched, and
/// [`confidence_interval`](crate::stats::confidence_interval) refuses to
/// produce an interval from a poisoned accumulator.
///
/// # Example
///
/// ```
/// use probdist::stats::RunningStats;
///
/// let mut acc = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.count(), 4);
/// assert_eq!(acc.mean(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    /// Non-finite observations rejected (not folded into the moments).
    non_finite: u64,
}

impl Default for RunningStats {
    fn default() -> Self {
        RunningStats::new()
    }
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            non_finite: 0,
        }
    }

    /// Adds one observation. A non-finite observation is **not** folded
    /// into the statistics; it is counted in
    /// [`RunningStats::non_finite_count`] instead, which marks the
    /// accumulator poisoned for confidence-interval purposes. Use
    /// [`RunningStats::try_push`] to surface the rejection at the call
    /// site.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            self.non_finite += 1;
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds one observation, rejecting NaN and ±inf with a typed error
    /// (the observation is also counted in
    /// [`RunningStats::non_finite_count`]).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NonFiniteObservation`] when `x` is not finite.
    pub fn try_push(&mut self, x: f64) -> Result<(), DistError> {
        self.push(x);
        if x.is_finite() {
            Ok(())
        } else {
            Err(DistError::NonFiniteObservation { count: self.non_finite })
        }
    }

    /// Merges another accumulator into this one (parallel reduction of
    /// per-thread accumulators).
    pub fn merge(&mut self, other: &RunningStats) {
        self.non_finite += other.non_finite;
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            let non_finite = self.non_finite;
            *self = *other;
            self.non_finite = non_finite;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations accumulated so far (finite ones only).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of non-finite observations rejected so far. A non-zero count
    /// poisons the accumulator:
    /// [`confidence_interval`](crate::stats::confidence_interval) returns
    /// [`DistError::NonFiniteObservation`] instead of an interval computed
    /// from an incomplete sample.
    pub fn non_finite_count(&self) -> u64 {
        self.non_finite
    }

    /// Sample mean. Returns `0.0` before any observation.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (n−1 denominator). Returns `0.0` with fewer
    /// than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (`s / sqrt(n)`).
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation seen (`+inf` before any observation).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation seen (`-inf` before any observation).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = RunningStats::new();
        acc.extend(iter);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, variance};
    use proptest::prelude::*;

    #[test]
    fn empty_accumulator_defaults() {
        let acc = RunningStats::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.std_error(), 0.0);
    }

    #[test]
    fn matches_batch_formulas() {
        let data = [3.1, 4.1, 5.9, 2.6, 5.3, 5.8, 9.7, 9.3];
        let acc: RunningStats = data.iter().copied().collect();
        assert_eq!(acc.count(), data.len() as u64);
        assert!((acc.mean() - mean(&data)).abs() < 1e-12);
        assert!((acc.variance() - variance(&data)).abs() < 1e-12);
        assert_eq!(acc.min(), 2.6);
        assert_eq!(acc.max(), 9.7);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() + 2.0).collect();
        let sequential: RunningStats = data.iter().copied().collect();
        let a: RunningStats = data[..37].iter().copied().collect();
        let b: RunningStats = data[37..].iter().copied().collect();
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), sequential.count());
        assert!((merged.mean() - sequential.mean()).abs() < 1e-12);
        assert!((merged.variance() - sequential.variance()).abs() < 1e-10);
    }

    #[test]
    fn non_finite_observations_are_rejected_not_folded_in() {
        let mut acc = RunningStats::new();
        acc.push(1.0);
        acc.push(f64::NAN);
        acc.push(f64::INFINITY);
        acc.push(3.0);
        acc.push(f64::NEG_INFINITY);
        // The finite statistics are exactly those of [1, 3].
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.mean(), 2.0);
        assert_eq!(acc.min(), 1.0);
        assert_eq!(acc.max(), 3.0);
        assert!(acc.variance().is_finite());
        // ...and the rejections are visible.
        assert_eq!(acc.non_finite_count(), 3);
    }

    #[test]
    fn try_push_returns_a_typed_error() {
        let mut acc = RunningStats::new();
        assert_eq!(acc.try_push(1.0), Ok(()));
        assert_eq!(acc.try_push(f64::NAN), Err(DistError::NonFiniteObservation { count: 1 }));
        assert_eq!(acc.try_push(f64::INFINITY), Err(DistError::NonFiniteObservation { count: 2 }));
        assert_eq!(acc.try_push(2.0), Ok(()));
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.non_finite_count(), 2);
        let message = DistError::NonFiniteObservation { count: 2 }.to_string();
        assert!(message.contains("2 non-finite observations"), "{message}");
    }

    #[test]
    fn merge_carries_the_poison_flag() {
        let mut poisoned = RunningStats::new();
        poisoned.push(f64::NAN);
        let mut clean: RunningStats = [1.0, 2.0].iter().copied().collect();
        clean.merge(&poisoned);
        assert_eq!(clean.non_finite_count(), 1);
        assert_eq!(clean.count(), 2);

        // Merging into an empty accumulator keeps both sides' rejections.
        let mut empty = RunningStats::new();
        empty.push(f64::INFINITY);
        let data: RunningStats = [1.0, 2.0].iter().copied().collect();
        empty.merge(&data);
        assert_eq!(empty.non_finite_count(), 1);
        assert_eq!(empty.count(), 2);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let data = [1.0, 2.0, 3.0];
        let mut acc: RunningStats = data.iter().copied().collect();
        let before = acc;
        acc.merge(&RunningStats::new());
        assert_eq!(acc, before);

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    proptest! {
        #[test]
        fn welford_matches_naive(data in proptest::collection::vec(-1e3..1e3_f64, 2..200)) {
            let acc: RunningStats = data.iter().copied().collect();
            prop_assert!((acc.mean() - mean(&data)).abs() < 1e-9);
            prop_assert!((acc.variance() - variance(&data)).abs() < 1e-6);
        }

        #[test]
        fn merge_associative(data in proptest::collection::vec(-1e3..1e3_f64, 3..100), split in 1..99usize) {
            let k = split.min(data.len() - 1);
            let whole: RunningStats = data.iter().copied().collect();
            let mut left: RunningStats = data[..k].iter().copied().collect();
            let right: RunningStats = data[k..].iter().copied().collect();
            left.merge(&right);
            prop_assert_eq!(left.count(), whole.count());
            prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        }
    }
}
