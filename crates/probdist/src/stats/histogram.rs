use serde::{Deserialize, Serialize};

use crate::DistError;

/// Fixed-bin histogram over a closed interval, used to summarise reward
/// distributions (e.g. the distribution of weekly disk-replacement counts
/// behind Figure 3's averages).
///
/// Out-of-range observations are counted in saturating underflow/overflow
/// buckets so no data is silently dropped.
///
/// # Example
///
/// ```
/// use probdist::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
/// h.record(0.5);
/// h.record(9.99);
/// h.record(42.0); // overflow
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidInterval`] if `lo >= hi` or the bounds are
    /// not finite, and [`DistError::DegenerateData`] if `bins` is zero.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, DistError> {
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(DistError::InvalidInterval { lo, hi });
        }
        if bins == 0 {
            return Err(DistError::DegenerateData { reason: "histogram needs at least one bin" });
        }
        Ok(Histogram { lo, hi, bins: vec![0; bins], underflow: 0, overflow: 0 })
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Counts per bin, in ascending bin order.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Number of observations below the lower bound.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Number of observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of recorded observations (including under/overflow).
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The `(lower, upper)` edges of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin index {i} out of range");
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// Fraction of in-range observations falling in bin `i`, or `0.0` when
    /// the histogram is empty.
    pub fn fraction(&self, i: usize) -> f64 {
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            0.0
        } else {
            self.bins[i] as f64 / in_range as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validation() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
    }

    #[test]
    fn records_fall_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.record(0.0);
        h.record(1.9);
        h.record(2.0);
        h.record(9.999);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
    }

    #[test]
    fn under_and_overflow_are_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.record(-0.1);
        h.record(1.0);
        h.record(5.0);
        h.record(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn fractions_sum_to_one_over_in_range_data() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        for x in [0.5, 1.5, 2.5, 3.5, 3.6, 0.1] {
            h.record(x);
        }
        let sum: f64 = (0..4).map(|i| h.fraction(i)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_fraction_is_zero() {
        let h = Histogram::new(0.0, 1.0, 3).unwrap();
        assert_eq!(h.fraction(0), 0.0);
        assert_eq!(h.total(), 0);
    }
}
