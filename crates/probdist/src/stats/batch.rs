use serde::{Deserialize, Serialize};

use crate::stats::{confidence_interval, ConfidenceInterval, RunningStats};
use crate::DistError;

/// Batch-means estimator for steady-state measures taken from a single long
/// simulation run.
///
/// Observations from one trajectory are autocorrelated, so a naive
/// confidence interval on them is too narrow. Batch means groups
/// consecutive observations into fixed-size batches, treats the batch
/// averages as (approximately) independent, and builds the interval on
/// those.
///
/// This complements replication-based estimation in
/// [`sanet`](https://docs.rs/sanet): replications are used for the paper's
/// headline numbers, batch means is used for long-run ablations where a
/// warmed-up single trajectory is cheaper.
///
/// # Example
///
/// ```
/// use probdist::stats::BatchMeans;
///
/// let mut bm = BatchMeans::new(100).unwrap();
/// for i in 0..10_000 {
///     bm.push(if i % 2 == 0 { 1.0 } else { 0.0 });
/// }
/// let ci = bm.confidence_interval(0.95).unwrap();
/// assert!((ci.point - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: usize,
    current_sum: f64,
    current_count: usize,
    batches: RunningStats,
}

impl BatchMeans {
    /// Creates a batch-means accumulator with the given batch size.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::DegenerateData`] if `batch_size` is zero.
    pub fn new(batch_size: usize) -> Result<Self, DistError> {
        if batch_size == 0 {
            return Err(DistError::DegenerateData { reason: "batch size must be at least 1" });
        }
        Ok(BatchMeans {
            batch_size,
            current_sum: 0.0,
            current_count: 0,
            batches: RunningStats::new(),
        })
    }

    /// Adds one raw observation. When the current batch fills up its mean is
    /// pushed into the batch-level accumulator.
    pub fn push(&mut self, x: f64) {
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.batches.push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    /// Number of *complete* batches accumulated so far.
    pub fn batch_count(&self) -> u64 {
        self.batches.count()
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Mean over all complete batches.
    pub fn mean(&self) -> f64 {
        self.batches.mean()
    }

    /// Confidence interval on the steady-state mean, built from the batch
    /// averages.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than two complete batches are available or
    /// `level` is invalid.
    pub fn confidence_interval(&self, level: f64) -> Result<ConfidenceInterval, DistError> {
        confidence_interval(&self.batches, level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_batch_size() {
        assert!(BatchMeans::new(0).is_err());
    }

    #[test]
    fn batches_are_counted_only_when_complete() {
        let mut bm = BatchMeans::new(10).unwrap();
        for _ in 0..25 {
            bm.push(1.0);
        }
        assert_eq!(bm.batch_count(), 2);
        assert_eq!(bm.batch_size(), 10);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // heavy sampling loop
    fn mean_of_alternating_sequence_is_half() {
        let mut bm = BatchMeans::new(50).unwrap();
        for i in 0..5_000 {
            bm.push((i % 2) as f64);
        }
        assert!((bm.mean() - 0.5).abs() < 1e-12);
        let ci = bm.confidence_interval(0.95).unwrap();
        assert!(ci.half_width < 1e-9, "alternating data has identical batch means");
    }

    #[test]
    fn interval_requires_two_batches() {
        let mut bm = BatchMeans::new(100).unwrap();
        for _ in 0..150 {
            bm.push(1.0);
        }
        assert!(bm.confidence_interval(0.95).is_err());
        for _ in 0..50 {
            bm.push(1.0);
        }
        assert!(bm.confidence_interval(0.95).is_ok());
    }

    #[test]
    #[cfg_attr(miri, ignore)] // heavy sampling loop
    fn batch_means_widen_interval_for_correlated_data() {
        // Highly autocorrelated data: runs of 2000 zeros then 2000 ones.
        // With 500-observation batches each batch mean is either 0 or 1, so
        // the batch-means interval is much wider than the naive interval
        // that treats every observation as independent.
        let data: Vec<f64> =
            (0..10_000).map(|i| if (i / 2000) % 2 == 0 { 0.0 } else { 1.0 }).collect();
        let naive: RunningStats = data.iter().copied().collect();
        let naive_ci = confidence_interval(&naive, 0.95).unwrap();

        let mut bm = BatchMeans::new(500).unwrap();
        for &x in &data {
            bm.push(x);
        }
        let bm_ci = bm.confidence_interval(0.95).unwrap();
        assert!(bm_ci.half_width >= naive_ci.half_width);
    }
}
