//! Statistics used to estimate and report simulation results.
//!
//! The paper reports every simulation measure "at 95 % confidence level,
//! with intervals" (Section 5). This module provides the machinery to do
//! the same:
//!
//! * [`RunningStats`] — a numerically stable (Welford) streaming accumulator
//!   for mean and variance.
//! * [`ConfidenceInterval`] / [`confidence_interval`] — Student-t based
//!   intervals on the mean of independent replications.
//! * [`BatchMeans`] — batch-means estimation for steady-state measures taken
//!   from a single long run.
//! * [`Histogram`] — fixed-bin histogram for reward distributions.
//! * [`StoppingRule`] / [`run_to_precision`] — precision-targeted
//!   sequential stopping: run replication batches until every tracked CI
//!   is narrower than a relative half-width target.
//! * [`WeightedRunning`] — streaming accumulator for *weighted*
//!   observations (importance-sampling likelihood ratios): weighted
//!   mean/variance and effective sample size, feeding the same
//!   confidence/stopping machinery through
//!   [`WeightedRunning::confidence_interval`].

mod batch;
mod confidence;
mod histogram;
mod running;
mod stopping;
mod weighted;

pub use batch::BatchMeans;
pub use confidence::{confidence_interval, student_t_quantile, ConfidenceInterval};
pub use histogram::Histogram;
pub use running::RunningStats;
pub use stopping::{run_to_precision, StoppingRule, DEFAULT_MIN_NONZERO_OBSERVATIONS};
pub use weighted::WeightedRunning;

/// Convenience function: sample mean of a slice.
///
/// Returns `0.0` for an empty slice.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        0.0
    } else {
        data.iter().sum::<f64>() / data.len() as f64
    }
}

/// Convenience function: unbiased sample variance (n−1 denominator) of a
/// slice. Returns `0.0` for slices with fewer than two elements.
pub fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (data.len() - 1) as f64
}

/// Convenience function: sample standard deviation of a slice.
pub fn std_dev(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn mean_and_variance_hand_checked() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&data) - 5.0).abs() < 1e-12);
        assert!((variance(&data) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&data) - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
    }
}
