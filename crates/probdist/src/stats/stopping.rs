//! Precision-targeted sequential stopping for replicated experiments.
//!
//! The paper reports every simulation measure with a confidence interval;
//! the engineering question is how many replications that takes. A
//! [`StoppingRule`] answers it adaptively: run a minimum batch, then keep
//! doubling the replication count until every tracked measure's relative
//! CI half-width is below the target (or a hard cap is reached). The rule
//! lives here, crate-neutral, so the SAN experiment runner, the storage
//! Monte-Carlo, and the composed-model evaluator all stop the same way —
//! and so the batch schedule preserves the execution engine's determinism
//! guarantee: replication `i` always draws from the stream derived from
//! `(root seed, i)`, whether it runs in a fixed block or as part of an
//! adaptive batch, so an adaptive run that uses `n` replications is
//! bit-identical to a fixed run of `n`.

use crate::stats::ConfidenceInterval;
use crate::DistError;

/// Stopping rule for sequential replication: run at least
/// [`min_replications`](StoppingRule::min_replications), then stop as soon
/// as every tracked confidence interval is narrower than
/// [`relative_half_width`](StoppingRule::relative_half_width) (relative to
/// its point estimate), or when
/// [`max_replications`](StoppingRule::max_replications) is reached.
///
/// Construction is validated — see [`StoppingRule::new`] — so a rule in
/// hand is always runnable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoppingRule {
    relative_half_width: f64,
    min_replications: usize,
    max_replications: usize,
    min_nonzero_observations: usize,
}

/// Default minimum number of non-zero observations a rare-event measure
/// must produce before [`StoppingRule::met_by_support`] can declare its
/// relative target met: with fewer hits than this the relative half-width
/// is an artefact of a handful of lucky draws, not an estimate.
pub const DEFAULT_MIN_NONZERO_OBSERVATIONS: usize = 5;

impl Default for StoppingRule {
    /// ±1 % relative half-width, between 20 and 1000 replications.
    fn default() -> Self {
        StoppingRule {
            relative_half_width: 0.01,
            min_replications: 20,
            max_replications: 1000,
            min_nonzero_observations: DEFAULT_MIN_NONZERO_OBSERVATIONS,
        }
    }
}

impl StoppingRule {
    /// Creates a validated stopping rule.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NonFiniteParameter`] /
    /// [`DistError::NonPositiveParameter`] for a non-finite or
    /// non-positive `relative_half_width`, and
    /// [`DistError::InvalidStoppingRule`] when `min_replications < 2` (a
    /// confidence interval needs two observations) or
    /// `min_replications > max_replications`.
    pub fn new(
        relative_half_width: f64,
        min_replications: usize,
        max_replications: usize,
    ) -> Result<Self, DistError> {
        DistError::check_positive("relative_half_width", relative_half_width)?;
        if min_replications < 2 {
            return Err(DistError::InvalidStoppingRule {
                reason: format!(
                    "a confidence interval needs at least two replications, got min = \
                     {min_replications}"
                ),
            });
        }
        if min_replications > max_replications {
            return Err(DistError::InvalidStoppingRule {
                reason: format!(
                    "min_replications ({min_replications}) exceeds max_replications \
                     ({max_replications})"
                ),
            });
        }
        Ok(StoppingRule {
            relative_half_width,
            min_replications,
            max_replications,
            min_nonzero_observations: DEFAULT_MIN_NONZERO_OBSERVATIONS,
        })
    }

    /// Sets the minimum number of non-zero observations
    /// [`StoppingRule::met_by_support`] requires (default
    /// [`DEFAULT_MIN_NONZERO_OBSERVATIONS`]). Rare-event estimators raise
    /// this to demand more hits; `0` disables the support check.
    pub fn with_min_nonzero(mut self, observations: usize) -> Self {
        self.min_nonzero_observations = observations;
        self
    }

    /// The minimum non-zero-observation count required by
    /// [`StoppingRule::met_by_support`].
    pub fn min_nonzero_observations(&self) -> usize {
        self.min_nonzero_observations
    }

    /// The target relative half-width (e.g. `0.01` for ±1 %).
    pub fn relative_half_width(&self) -> f64 {
        self.relative_half_width
    }

    /// Replications to run before the first precision check.
    pub fn min_replications(&self) -> usize {
        self.min_replications
    }

    /// Hard cap on the number of replications.
    pub fn max_replications(&self) -> usize {
        self.max_replications
    }

    /// The next batch size given `completed` replications so far: the
    /// minimum first, then doubling (batch = completed), always clipped to
    /// the cap. Returns `0` once the cap is reached.
    pub fn next_batch(&self, completed: usize) -> usize {
        if completed >= self.max_replications {
            0
        } else if completed == 0 {
            self.min_replications
        } else {
            completed.min(self.max_replications - completed)
        }
    }

    /// Whether `interval` is precise enough under this rule.
    ///
    /// A degenerate interval (zero half-width) around a **non-zero** point
    /// is precise — the measure looks deterministic. A degenerate interval
    /// around **zero** is not: every observation was zero, which for a
    /// rare-event measure means the event simply has not been seen yet, and
    /// stopping would declare the target met vacuously. Any other interval
    /// around a zero point estimate is likewise never met (its relative
    /// width is unbounded).
    pub fn met_by(&self, interval: &ConfidenceInterval) -> bool {
        if interval.half_width == 0.0 {
            return interval.point != 0.0;
        }
        interval.relative_half_width() <= self.relative_half_width
    }

    /// Like [`StoppingRule::met_by`], but additionally requires at least
    /// [`StoppingRule::min_nonzero_observations`] observations with a
    /// non-zero contribution — the criterion rare-event estimators use, so
    /// a relative target cannot be declared met off a handful of hits (or
    /// an importance-sampling run whose effective sample size collapsed).
    pub fn met_by_support(&self, interval: &ConfidenceInterval, nonzero_observations: u64) -> bool {
        nonzero_observations >= self.min_nonzero_observations as u64 && self.met_by(interval)
    }
}

/// Runs replication batches until `is_precise` reports the collected
/// results meet the target, or the rule's cap is reached, and returns every
/// per-replication result in index order.
///
/// `run_batch` receives the replication-index range to execute
/// (`start..start + batch`) and must return one result per index, in index
/// order — exactly the contract of [`crate::parallel::replicate`], which
/// is what every engine passes through here. Because batches extend the
/// same index sequence, the collected results — and therefore every
/// statistic reduced from them — are bit-identical to a fixed-count run of
/// the same length.
///
/// `is_precise` is consulted after each batch, so the returned length is
/// always `min + k·batches` for some `k`, between the rule's minimum and
/// cap.
///
/// # Errors
///
/// Propagates the first error of either closure.
pub fn run_to_precision<T, E, B, P>(
    rule: &StoppingRule,
    mut run_batch: B,
    mut is_precise: P,
) -> Result<Vec<T>, E>
where
    B: FnMut(std::ops::Range<usize>) -> Result<Vec<T>, E>,
    P: FnMut(&[T]) -> Result<bool, E>,
{
    let mut collected: Vec<T> = Vec::new();
    loop {
        let batch = rule.next_batch(collected.len());
        if batch == 0 {
            break;
        }
        let start = collected.len();
        collected.extend(run_batch(start..start + batch)?);
        if is_precise(&collected)? {
            break;
        }
    }
    Ok(collected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{confidence_interval, RunningStats};

    #[test]
    fn default_rule_is_valid() {
        let rule = StoppingRule::default();
        assert_eq!(rule.relative_half_width(), 0.01);
        assert_eq!(rule.min_replications(), 20);
        assert_eq!(rule.max_replications(), 1000);
        assert_eq!(
            StoppingRule::new(0.01, 20, 1000).unwrap(),
            rule,
            "default must round-trip through the validated constructor"
        );
    }

    #[test]
    fn construction_rejects_bad_parameters() {
        assert!(matches!(
            StoppingRule::new(0.0, 2, 10),
            Err(DistError::NonPositiveParameter { .. })
        ));
        assert!(matches!(
            StoppingRule::new(-0.1, 2, 10),
            Err(DistError::NonPositiveParameter { .. })
        ));
        assert!(matches!(
            StoppingRule::new(f64::NAN, 2, 10),
            Err(DistError::NonFiniteParameter { .. })
        ));
        assert!(matches!(
            StoppingRule::new(f64::INFINITY, 2, 10),
            Err(DistError::NonFiniteParameter { .. })
        ));
        assert!(matches!(
            StoppingRule::new(0.1, 1, 10),
            Err(DistError::InvalidStoppingRule { .. })
        ));
        assert!(matches!(
            StoppingRule::new(0.1, 10, 5),
            Err(DistError::InvalidStoppingRule { .. })
        ));
        let err = StoppingRule::new(0.1, 10, 5).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn batch_schedule_doubles_up_to_the_cap() {
        let rule = StoppingRule::new(0.01, 8, 50).unwrap();
        assert_eq!(rule.next_batch(0), 8);
        assert_eq!(rule.next_batch(8), 8);
        assert_eq!(rule.next_batch(16), 16);
        assert_eq!(rule.next_batch(32), 18); // clipped to the cap
        assert_eq!(rule.next_batch(50), 0);
        assert_eq!(rule.next_batch(60), 0);
    }

    #[test]
    fn met_by_handles_degenerate_intervals() {
        let rule = StoppingRule::new(0.05, 2, 10).unwrap();
        let tight = ConfidenceInterval { point: 1.0, half_width: 0.01, level: 0.95, samples: 8 };
        let loose = ConfidenceInterval { point: 1.0, half_width: 0.2, level: 0.95, samples: 8 };
        let exact = ConfidenceInterval::exact(0.5);
        let zero_mean = ConfidenceInterval { point: 0.0, half_width: 0.1, level: 0.95, samples: 8 };
        assert!(rule.met_by(&tight));
        assert!(!rule.met_by(&loose));
        assert!(rule.met_by(&exact), "zero half-width around a non-zero point is precise");
        assert!(!rule.met_by(&zero_mean), "a zero point estimate can never satisfy the target");
    }

    /// Regression: a rare-event measure whose observations are all zero
    /// produces the degenerate interval `0 ± 0`, which used to satisfy any
    /// precision target vacuously (the "zero half-width is always precise"
    /// shortcut). A measure that has never seen its event must keep
    /// running.
    #[test]
    fn all_zero_observations_never_satisfy_the_target() {
        let rule = StoppingRule::new(0.05, 2, 10).unwrap();
        let zero_hit = ConfidenceInterval::exact(0.0);
        assert!(!rule.met_by(&zero_hit), "0 ± 0 is no information, not infinite precision");
        assert!(!rule.met_by_support(&zero_hit, 0));

        // The same degenerate interval from an actual all-zero accumulator.
        let stats: RunningStats = std::iter::repeat_n(0.0, 50).collect();
        let interval = confidence_interval(&stats, 0.95).unwrap();
        assert_eq!(interval.point, 0.0);
        assert_eq!(interval.half_width, 0.0);
        assert!(!rule.met_by(&interval));
    }

    /// Regression: a tight relative half-width off too few non-zero
    /// observations must not stop a rare-event run — the support check
    /// demands a minimum number of hits first.
    #[test]
    fn met_by_support_requires_minimum_nonzero_observations() {
        let rule = StoppingRule::new(0.05, 2, 10).unwrap();
        assert_eq!(rule.min_nonzero_observations(), DEFAULT_MIN_NONZERO_OBSERVATIONS);
        let tight = ConfidenceInterval { point: 1e-8, half_width: 1e-10, level: 0.95, samples: 64 };
        assert!(rule.met_by(&tight), "precision alone is met");
        assert!(!rule.met_by_support(&tight, 4), "4 hits < default minimum of 5");
        assert!(rule.met_by_support(&tight, 5));

        let strict = rule.with_min_nonzero(100);
        assert_eq!(strict.min_nonzero_observations(), 100);
        assert!(!strict.met_by_support(&tight, 99));
        assert!(strict.met_by_support(&tight, 100));

        // Disabling the support check reduces to plain met_by.
        let lax = rule.with_min_nonzero(0);
        assert!(lax.met_by_support(&tight, 0));
        assert!(!lax.met_by_support(&ConfidenceInterval::exact(0.0), 0));
    }

    #[test]
    fn run_to_precision_stops_early_when_precise() {
        let rule = StoppingRule::new(0.5, 4, 64).unwrap();
        let runs = run_to_precision::<usize, DistError, _, _>(
            &rule,
            |range| Ok(range.collect()),
            |collected| {
                let stats: RunningStats =
                    collected.iter().map(|&i| 10.0 + (i % 2) as f64).collect();
                Ok(rule.met_by(&confidence_interval(&stats, 0.95)?))
            },
        )
        .unwrap();
        assert_eq!(runs, vec![0, 1, 2, 3], "a low-variance measure stops at the minimum");
    }

    #[test]
    fn run_to_precision_runs_to_the_cap_when_noisy() {
        let rule = StoppingRule::new(1e-9, 4, 20).unwrap();
        let mut batches = Vec::new();
        let runs = run_to_precision::<usize, DistError, _, _>(
            &rule,
            |range| {
                batches.push(range.clone());
                Ok(range.collect())
            },
            |_| Ok(false),
        )
        .unwrap();
        assert_eq!(runs, (0..20).collect::<Vec<_>>());
        assert_eq!(batches, vec![0..4, 4..8, 8..16, 16..20]);
    }

    #[test]
    fn run_to_precision_propagates_errors() {
        let rule = StoppingRule::new(0.1, 4, 8).unwrap();
        let err = run_to_precision::<usize, DistError, _, _>(
            &rule,
            |_| Err(DistError::EmptyData),
            |_| Ok(true),
        )
        .unwrap_err();
        assert_eq!(err, DistError::EmptyData);
    }
}
