use serde::{Deserialize, Serialize, Value};

use crate::special::gamma_fn;
use crate::{DistError, Distribution, SimRng};

/// Weibull distribution with shape `β` and scale `η` (hours).
///
/// The paper's disk-failure analysis (Table 4) fits ABE's scratch-partition
/// disk replacements to a Weibull distribution with shape `β ≈ 0.7`,
/// capturing infant mortality (`β < 1` means a decreasing hazard rate).
/// The scale parameter is chosen so that the mean matches the estimated
/// MTBF of 300 000 hours (AFR ≈ 2.92 %).
///
/// Parameterisation: CDF `F(x) = 1 - exp(-(x/η)^β)`.
///
/// # Example
///
/// ```
/// use probdist::{Distribution, Weibull};
///
/// # fn main() -> Result<(), probdist::DistError> {
/// let disk = Weibull::from_shape_and_mean(0.7, 300_000.0)?;
/// assert!((disk.mean() - 300_000.0).abs() < 1e-6);
/// assert!((disk.shape() - 0.7).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
    /// Precomputed `1/β` so the sampling hot path multiplies instead of
    /// dividing before every `powf`.
    inv_shape: f64,
}

impl Weibull {
    /// Creates a Weibull distribution from shape `β` and scale `η`.
    ///
    /// # Errors
    ///
    /// Returns an error if either parameter is not finite and strictly
    /// positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, DistError> {
        let shape = DistError::check_positive("shape", shape)?;
        Ok(Weibull {
            shape,
            scale: DistError::check_positive("scale", scale)?,
            inv_shape: 1.0 / shape,
        })
    }

    /// Creates a Weibull distribution with the given shape whose *mean*
    /// equals `mean`.
    ///
    /// This is the parameterisation used throughout the paper: the shape is
    /// estimated from survival analysis and the scale is then chosen so the
    /// mean time between failures matches the observed replacement rate.
    ///
    /// # Errors
    ///
    /// Returns an error if `shape` or `mean` is not finite and strictly
    /// positive.
    pub fn from_shape_and_mean(shape: f64, mean: f64) -> Result<Self, DistError> {
        let shape = DistError::check_positive("shape", shape)?;
        let mean = DistError::check_positive("mean", mean)?;
        // mean = η Γ(1 + 1/β)  =>  η = mean / Γ(1 + 1/β)
        let scale = mean / gamma_fn(1.0 + 1.0 / shape);
        Weibull::new(shape, scale)
    }

    /// The shape parameter `β`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `η` in hours.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Whether the distribution exhibits infant mortality (`β < 1`,
    /// decreasing hazard rate).
    pub fn has_infant_mortality(&self) -> bool {
        self.shape < 1.0
    }
}

impl Distribution for Weibull {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF: x = η (-ln(1-U))^(1/β); use open uniform for safety.
        // β = 1 is exactly the exponential, so the `powf` (a no-op by IEEE
        // 754 semantics for `powf(x, 1.0)`) is skipped outright; other
        // shapes use the precomputed 1/β. Both paths are value-identical to
        // the textbook formula — pinned by tests below.
        let u = rng.uniform_open01();
        let neg_ln = -(1.0 - u).ln();
        if self.shape == 1.0 {
            self.scale * neg_ln
        } else {
            self.scale * neg_ln.powf(self.inv_shape)
        }
    }

    fn mean(&self) -> f64 {
        self.scale * gamma_fn(1.0 + 1.0 / self.shape)
    }

    fn variance(&self) -> f64 {
        let g1 = gamma_fn(1.0 + 1.0 / self.shape);
        let g2 = gamma_fn(1.0 + 2.0 / self.shape);
        self.scale * self.scale * (g2 - g1 * g1)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = x / self.scale;
        (self.shape / self.scale) * z.powf(self.shape - 1.0) * (-z.powf(self.shape)).exp()
    }

    fn hazard(&self, x: f64) -> f64 {
        // Closed form avoids 0/0 issues in the tails:
        // h(x) = (β/η) (x/η)^(β-1)
        if x <= 0.0 {
            if self.shape < 1.0 {
                f64::INFINITY
            } else if self.shape > 1.0 {
                0.0
            } else {
                1.0 / self.scale
            }
        } else {
            (self.shape / self.scale) * (x / self.scale).powf(self.shape - 1.0)
        }
    }

    fn quantile(&self, p: f64) -> Result<f64, DistError> {
        let p = DistError::check_probability(p)?;
        if p >= 1.0 {
            return Ok(f64::INFINITY);
        }
        Ok(self.scale * (-(1.0 - p).ln()).powf(self.inv_shape))
    }
}

// `inv_shape` is derived state: serialisation carries only the parameters,
// exactly as the former derived form did.
impl Serialize for Weibull {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("shape".to_string(), self.shape.to_value()),
            ("scale".to_string(), self.scale.to_value()),
        ])
    }
}

impl Deserialize for Weibull {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructor_validation() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, 0.0).is_err());
        assert!(Weibull::new(f64::NAN, 1.0).is_err());
        assert!(Weibull::from_shape_and_mean(0.7, -1.0).is_err());
    }

    #[test]
    fn shape_one_is_exponential() {
        let w = Weibull::new(1.0, 100.0).unwrap();
        // CDF matches exponential with mean 100.
        for x in [1.0, 50.0, 100.0, 500.0] {
            let expected = 1.0 - (-x / 100.0_f64).exp();
            assert!((w.cdf(x) - expected).abs() < 1e-12);
        }
        assert!((w.mean() - 100.0).abs() < 1e-9);
        assert!((w.variance() - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn from_shape_and_mean_recovers_mean() {
        for shape in [0.6, 0.7, 0.9, 1.0, 1.5, 3.0] {
            let w = Weibull::from_shape_and_mean(shape, 300_000.0).unwrap();
            assert!(
                (w.mean() - 300_000.0).abs() / 300_000.0 < 1e-10,
                "shape {shape} mean {}",
                w.mean()
            );
        }
    }

    #[test]
    fn infant_mortality_hazard_is_decreasing() {
        let w = Weibull::new(0.7, 300_000.0).unwrap();
        assert!(w.has_infant_mortality());
        let h1 = w.hazard(10.0);
        let h2 = w.hazard(1_000.0);
        let h3 = w.hazard(100_000.0);
        assert!(h1 > h2 && h2 > h3);
    }

    #[test]
    fn wear_out_hazard_is_increasing() {
        let w = Weibull::new(2.0, 1_000.0).unwrap();
        assert!(!w.has_infant_mortality());
        assert!(w.hazard(10.0) < w.hazard(100.0));
        assert!(w.hazard(100.0) < w.hazard(1_000.0));
    }

    #[test]
    fn quantile_inverts_cdf() {
        let w = Weibull::new(0.7, 300_000.0).unwrap();
        for p in [0.001, 0.1, 0.5, 0.9, 0.999] {
            let x = w.quantile(p).unwrap();
            assert!((w.cdf(x) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // heavy sampling loop
    fn sample_mean_converges() {
        let w = Weibull::from_shape_and_mean(0.7, 1_000.0).unwrap();
        let mut rng = SimRng::seed_from_u64(21);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| w.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1_000.0).abs() / 1_000.0 < 0.02, "sample mean {mean}");
    }

    #[test]
    fn powf_by_one_is_the_identity() {
        // The IEEE 754 guarantee the shape == 1 fast path leans on:
        // powf(x, 1.0) returns x exactly, so skipping it changes nothing.
        for x in [1e-300, 0.3, 1.0, 2.5, 6.9e3, 1.7e17, f64::MAX] {
            assert_eq!(x.powf(1.0), x);
        }
    }

    #[test]
    fn sample_fast_paths_are_value_identical_to_the_textbook_formula() {
        for shape in [0.6, 0.7, 1.0, 1.5, 3.0] {
            let w = Weibull::new(shape, 300_000.0).unwrap();
            let mut fast_rng = SimRng::seed_from_u64(99);
            let mut slow_rng = SimRng::seed_from_u64(99);
            for _ in 0..1_000 {
                let fast = w.sample(&mut fast_rng);
                let u = slow_rng.uniform_open01();
                let slow = w.scale() * (-(1.0 - u).ln()).powf(1.0 / w.shape());
                assert_eq!(fast.to_bits(), slow.to_bits(), "shape {shape}");
            }
        }
    }

    #[test]
    fn quantile_is_value_identical_to_the_textbook_formula() {
        for shape in [0.6, 0.7, 1.0, 1.5, 3.0] {
            let w = Weibull::new(shape, 300_000.0).unwrap();
            for p in [0.001, 0.1, 0.5, 0.9, 0.999] {
                let fast = w.quantile(p).unwrap();
                let slow = w.scale() * (-(1.0 - p).ln()).powf(1.0 / w.shape());
                assert_eq!(fast.to_bits(), slow.to_bits(), "shape {shape} p {p}");
            }
        }
    }

    #[test]
    fn serialisation_carries_only_the_parameters() {
        let w = Weibull::new(0.7, 300_000.0).unwrap();
        assert_eq!(serde::to_json(&w), "{\"shape\":0.7,\"scale\":300000}");
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        // trapezoidal integration of the pdf approximates the cdf
        let w = Weibull::new(1.5, 10.0).unwrap();
        let mut acc = 0.0;
        let dx = 0.001;
        let mut x = 0.0;
        while x < 20.0 {
            acc += 0.5 * (w.pdf(x) + w.pdf(x + dx)) * dx;
            x += dx;
        }
        assert!((acc - w.cdf(20.0)).abs() < 1e-3);
    }

    proptest! {
        #[test]
        fn samples_non_negative(shape in 0.3..4.0_f64, scale in 0.1..1e6_f64, seed in any::<u64>()) {
            let w = Weibull::new(shape, scale).unwrap();
            let mut rng = SimRng::seed_from_u64(seed);
            for _ in 0..16 {
                prop_assert!(w.sample(&mut rng) >= 0.0);
            }
        }

        #[test]
        fn cdf_monotone(shape in 0.3..4.0_f64, scale in 0.1..1e6_f64, a in 0.0..1e6_f64, b in 0.0..1e6_f64) {
            let w = Weibull::new(shape, scale).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(w.cdf(lo) <= w.cdf(hi) + 1e-15);
        }

        #[test]
        fn quantile_roundtrip(shape in 0.3..4.0_f64, scale in 1.0..1e5_f64, p in 0.01..0.99_f64) {
            let w = Weibull::new(shape, scale).unwrap();
            let x = w.quantile(p).unwrap();
            prop_assert!((w.cdf(x) - p).abs() < 1e-8);
        }
    }
}
