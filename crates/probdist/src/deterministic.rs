use serde::{Deserialize, Serialize};

use crate::{DistError, Distribution, SimRng};

/// Deterministic (degenerate) distribution: every sample equals a fixed
/// value.
///
/// The paper models disk replacement and software-repair completion as
/// *deterministic* events whose durations are swept across experiments
/// (1–12 hours for disk replacement, 2–6 hours for software fixes,
/// Section 4.3). A deterministic distribution makes those sweeps exact
/// rather than noisy.
///
/// # Example
///
/// ```
/// use probdist::{Deterministic, Distribution, SimRng};
///
/// # fn main() -> Result<(), probdist::DistError> {
/// let replace = Deterministic::new(4.0)?;
/// let mut rng = SimRng::seed_from_u64(0);
/// assert_eq!(replace.sample(&mut rng), 4.0);
/// assert_eq!(replace.variance(), 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Creates a deterministic distribution concentrated at `value` hours.
    ///
    /// # Errors
    ///
    /// Returns an error if `value` is negative or not finite. Zero is
    /// permitted (an instantaneous event).
    pub fn new(value: f64) -> Result<Self, DistError> {
        Ok(Deterministic { value: DistError::check_non_negative("value", value)? })
    }

    /// The fixed value returned by every sample.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl Distribution for Deterministic {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.value
    }

    fn mean(&self) -> f64 {
        self.value
    }

    fn variance(&self) -> f64 {
        0.0
    }

    fn cdf(&self, x: f64) -> f64 {
        if x >= self.value {
            1.0
        } else {
            0.0
        }
    }

    fn pdf(&self, _x: f64) -> f64 {
        // The density of a point mass is a Dirac delta; report 0 everywhere
        // (see the trait documentation).
        0.0
    }

    fn quantile(&self, p: f64) -> Result<f64, DistError> {
        DistError::check_probability(p)?;
        Ok(self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_negative_and_nan() {
        assert!(Deterministic::new(-1.0).is_err());
        assert!(Deterministic::new(f64::NAN).is_err());
        assert!(Deterministic::new(0.0).is_ok());
    }

    #[test]
    fn sampling_is_constant() {
        let d = Deterministic::new(3.5).unwrap();
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
    }

    #[test]
    fn cdf_is_a_step() {
        let d = Deterministic::new(2.0).unwrap();
        assert_eq!(d.cdf(1.999), 0.0);
        assert_eq!(d.cdf(2.0), 1.0);
        assert_eq!(d.cdf(100.0), 1.0);
    }

    #[test]
    fn moments() {
        let d = Deterministic::new(12.0).unwrap();
        assert_eq!(d.mean(), 12.0);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.std_dev(), 0.0);
    }

    #[test]
    fn quantile_is_constant() {
        let d = Deterministic::new(6.0).unwrap();
        assert_eq!(d.quantile(0.0).unwrap(), 6.0);
        assert_eq!(d.quantile(0.5).unwrap(), 6.0);
        assert_eq!(d.quantile(1.0).unwrap(), 6.0);
        assert!(d.quantile(2.0).is_err());
    }
}
