//! Special mathematical functions needed by the distributions and fitting
//! routines: log-gamma, the gamma function, the regularized incomplete gamma
//! function, and the error function.
//!
//! These are standard numerical recipes implementations, accurate to roughly
//! 1e-10 relative error over the ranges used by the simulator (all arguments
//! here are moderate: shapes in `[0.1, 50]`, normalized times in `[0, 1e3]`).

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, n = 9 coefficients).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = COEFFS[0];
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + 7.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// The gamma function `Γ(x)` for `x > 0`.
pub fn gamma_fn(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `a > 0`, `x >= 0`. Uses the series expansion for `x < a + 1` and the
/// continued fraction otherwise (Numerical Recipes `gammp`).
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_lower_gamma requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_lower_gamma requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cont_fraction(a, x)
    }
}

/// Series representation of `P(a, x)`.
fn gamma_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-14;
    let gln = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    (sum * (-x + a * x.ln() - gln).exp()).clamp(0.0, 1.0)
}

/// Continued-fraction representation of `Q(a, x) = 1 - P(a, x)`.
fn gamma_cont_fraction(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;
    let gln = ln_gamma(a);
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    ((-x + a * x.ln() - gln).exp() * h).clamp(0.0, 1.0)
}

/// Error function `erf(x)`, accurate to about 1.2e-7 (Abramowitz & Stegun
/// 7.1.26 rational approximation), sufficient for CDF evaluations in tests
/// and reward summaries.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inverse of the standard normal CDF (probit function).
///
/// Acklam's rational approximation, refined with one Newton step against the
/// erf-based CDF; absolute error is below about 1e-6 over `(0, 1)`, which is
/// ample for confidence-interval critical values.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit requires p in (0,1), got {p}");
    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley/Newton refinement step using the accurate erf-based CDF.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let cases = [(1.0, 1.0), (2.0, 1.0), (3.0, 2.0), (4.0, 6.0), (5.0, 24.0), (6.0, 120.0)];
        for (x, expected) in cases {
            assert!((ln_gamma(x).exp() - expected).abs() / expected < 1e-10, "Γ({x})");
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(π)
        let g = gamma_fn(0.5);
        assert!((g - std::f64::consts::PI.sqrt()).abs() < 1e-10);
        // Γ(3/2) = sqrt(π)/2
        assert!((gamma_fn(1.5) - std::f64::consts::PI.sqrt() / 2.0).abs() < 1e-10);
    }

    #[test]
    fn reg_lower_gamma_known_values() {
        // P(1, x) = 1 - exp(-x)
        for x in [0.1, 0.5, 1.0, 2.0, 5.0_f64] {
            let expected = 1.0 - (-x).exp();
            assert!((reg_lower_gamma(1.0, x) - expected).abs() < 1e-10, "P(1,{x})");
        }
        // P(a, 0) = 0; P(a, large) -> 1
        assert_eq!(reg_lower_gamma(3.0, 0.0), 0.0);
        assert!((reg_lower_gamma(3.0, 100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reg_lower_gamma_monotone_in_x() {
        let mut last = 0.0;
        for i in 0..200 {
            let x = i as f64 * 0.1;
            let v = reg_lower_gamma(2.5, x);
            assert!(v >= last - 1e-12);
            last = v;
        }
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-12);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-5);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
    }

    #[test]
    fn std_normal_cdf_symmetry() {
        for x in [0.0_f64, 0.5, 1.0, 2.0] {
            assert!((std_normal_cdf(x) + std_normal_cdf(-x) - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    fn probit_inverts_cdf() {
        for p in [0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999] {
            let x = std_normal_quantile(p);
            assert!((std_normal_cdf(x) - p).abs() < 1e-6, "p = {p}");
        }
    }

    #[test]
    fn probit_known_quantiles() {
        assert!(std_normal_quantile(0.5).abs() < 1e-6);
        assert!((std_normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
        assert!((std_normal_quantile(0.025) + 1.959_964).abs() < 1e-4);
    }
}
