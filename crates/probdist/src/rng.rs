/// Deterministic random number generator used throughout the simulation
/// stack.
///
/// `SimRng` is a self-contained xoshiro256++ generator (seeded through a
/// SplitMix64 expansion, as its authors recommend) with *stream
/// derivation*: from a single experiment seed, independent child streams can
/// be derived for each replication, each submodel, or each parameter point
/// so that changing the number of replications (or running them in
/// parallel) never perturbs the sample path of any other replication. This
/// is the property the paper's Möbius experiments rely on for reproducible
/// confidence intervals, and the property the `Study` runner relies on for
/// bit-identical serial and parallel statistics.
///
/// # Example
///
/// ```
/// use probdist::SimRng;
///
/// let mut a = SimRng::seed_from_u64(7).derive_stream(0);
/// let mut b = SimRng::seed_from_u64(7).derive_stream(0);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut c = SimRng::seed_from_u64(7).derive_stream(1);
/// assert_ne!(SimRng::seed_from_u64(7).derive_stream(0).next_u64(), c.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed into four non-zero state words with SplitMix64.
        let mut expander = seed;
        let mut state = [0u64; 4];
        for word in &mut state {
            expander = expander.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *word = split_mix64(expander);
        }
        SimRng { seed, state }
    }

    /// Returns the seed this generator (or its parent stream) was created
    /// with. Derived streams report the derived seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream identified by `stream`.
    ///
    /// The derivation uses a SplitMix64-style mix of the parent seed and the
    /// stream index, which gives well-separated seeds even for consecutive
    /// stream indices.
    pub fn derive_stream(&self, stream: u64) -> SimRng {
        let derived =
            split_mix64(self.seed ^ split_mix64(stream.wrapping_add(0x9E37_79B9_7F4A_7C15)));
        SimRng::seed_from_u64(derived)
    }

    /// Returns the next 64 random bits (one xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Returns the next 32 random bits (the high half of a 64-bit step).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Samples a uniform value in the half-open interval `[0, 1)`.
    pub fn uniform01(&mut self) -> f64 {
        // 53 random bits scaled by 2^-53: every double in [0, 1) with a
        // dyadic denominator is reachable, and 1.0 is not.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples a uniform value in the open interval `(0, 1)`.
    ///
    /// Useful for inverse-CDF sampling of distributions whose quantile
    /// function is unbounded at 0 or 1 (e.g. the exponential at 1).
    pub fn uniform_open01(&mut self) -> f64 {
        loop {
            let u = self.uniform01();
            if u > 0.0 && u < 1.0 {
                return u;
            }
        }
    }

    /// Samples a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "invalid range [{lo}, {hi})");
        if lo == hi {
            return lo;
        }
        lo + (hi - lo) * self.uniform01()
    }

    /// Samples an integer uniformly from `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty range");
        // Rejection sampling over the largest multiple of `n` that fits in
        // 64 bits, so every index is exactly equally likely.
        let n = n as u64;
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform01() < p
        }
    }

    /// Samples a standard normal variate using the Marsaglia polar method.
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.uniform01() - 1.0;
            let v = 2.0 * self.uniform01() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

/// SplitMix64 finalizer used for state expansion and stream derivation.
fn split_mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from_u64(123);
        let mut b = SimRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "independent seeds should rarely collide");
    }

    #[test]
    fn derived_streams_are_deterministic_and_distinct() {
        let root = SimRng::seed_from_u64(99);
        let mut s0a = root.derive_stream(0);
        let mut s0b = root.derive_stream(0);
        let mut s1 = root.derive_stream(1);
        assert_eq!(s0a.next_u64(), s0b.next_u64());
        let mut s0c = root.derive_stream(0);
        assert_ne!(s0c.next_u64(), s1.next_u64());
    }

    #[test]
    fn fill_bytes_is_deterministic_and_covers_partial_chunks() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        let mut buf_a = [0u8; 13];
        let mut buf_b = [0u8; 13];
        a.fill_bytes(&mut buf_a);
        b.fill_bytes(&mut buf_b);
        assert_eq!(buf_a, buf_b);
        assert!(buf_a.iter().any(|&x| x != 0));
    }

    #[test]
    #[cfg_attr(miri, ignore)] // heavy sampling loop
    fn uniform01_is_in_range() {
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let u = rng.uniform01();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // heavy sampling loop
    fn uniform01_mean_is_about_half() {
        let mut rng = SimRng::seed_from_u64(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.uniform01()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SimRng::seed_from_u64(5);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
    }

    #[test]
    #[cfg_attr(miri, ignore)] // heavy sampling loop
    fn bernoulli_frequency_matches_p() {
        let mut rng = SimRng::seed_from_u64(8);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
    }

    #[test]
    #[cfg_attr(miri, ignore)] // heavy sampling loop
    fn standard_normal_moments() {
        let mut rng = SimRng::seed_from_u64(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn uniform_range_degenerate_is_lo() {
        let mut rng = SimRng::seed_from_u64(3);
        assert_eq!(rng.uniform_range(4.0, 4.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn uniform_range_panics_on_reversed_bounds() {
        let mut rng = SimRng::seed_from_u64(3);
        let _ = rng.uniform_range(5.0, 4.0);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // heavy sampling loop
    fn uniform_index_covers_all_values() {
        let mut rng = SimRng::seed_from_u64(17);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.uniform_index(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
