use serde::{Deserialize, Serialize};

use crate::{DistError, Distribution, SimRng};

/// Exponential (memoryless) distribution with rate `λ` (per hour).
///
/// Used by the paper for all failure processes other than disk failures —
/// OSS hardware failures, software failures, transient network errors, and
/// RAID-controller failures all occur "at the rate of 1–2 per month"
/// (Section 4.3) and are modelled as exponential.
///
/// # Example
///
/// ```
/// use probdist::{Distribution, Exponential};
///
/// # fn main() -> Result<(), probdist::DistError> {
/// // 1.5 hardware failures per 720 hours (Table 5).
/// let hw = Exponential::new(1.5 / 720.0)?;
/// assert!((hw.mean() - 480.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate (events per
    /// hour).
    ///
    /// # Errors
    ///
    /// Returns an error if `rate` is not finite and strictly positive.
    pub fn new(rate: f64) -> Result<Self, DistError> {
        Ok(Exponential { rate: DistError::check_positive("rate", rate)? })
    }

    /// Creates an exponential distribution with the given mean (hours).
    ///
    /// # Errors
    ///
    /// Returns an error if `mean` is not finite and strictly positive.
    pub fn from_mean(mean: f64) -> Result<Self, DistError> {
        let mean = DistError::check_positive("mean", mean)?;
        Exponential::new(1.0 / mean)
    }

    /// The rate parameter `λ` (events per hour).
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF on an open uniform to avoid ln(0).
        -rng.uniform_open01().ln() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn quantile(&self, p: f64) -> Result<f64, DistError> {
        let p = DistError::check_probability(p)?;
        if p >= 1.0 {
            return Ok(f64::INFINITY);
        }
        Ok(-(1.0 - p).ln() / self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructor_rejects_bad_rates() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::from_mean(0.0).is_err());
    }

    #[test]
    fn mean_and_variance() {
        let d = Exponential::new(0.25).unwrap();
        assert!((d.mean() - 4.0).abs() < 1e-12);
        assert!((d.variance() - 16.0).abs() < 1e-12);
        assert!((d.std_dev() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_pdf_consistency() {
        let d = Exponential::from_mean(10.0).unwrap();
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.cdf(-5.0), 0.0);
        assert!((d.cdf(10.0) - (1.0 - (-1.0_f64).exp())).abs() < 1e-12);
        // hazard is constant for the exponential
        for x in [0.1, 1.0, 50.0] {
            assert!((d.hazard(x) - 0.1).abs() < 1e-9, "hazard at {x}");
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = Exponential::new(0.5).unwrap();
        for p in [0.01, 0.25, 0.5, 0.9, 0.99] {
            let x = d.quantile(p).unwrap();
            assert!((d.cdf(x) - p).abs() < 1e-10);
        }
        assert_eq!(d.quantile(1.0).unwrap(), f64::INFINITY);
        assert_eq!(d.quantile(0.0).unwrap(), 0.0);
        assert!(d.quantile(1.5).is_err());
    }

    #[test]
    #[cfg_attr(miri, ignore)] // heavy sampling loop
    fn sample_mean_converges() {
        let d = Exponential::from_mean(4.0).unwrap();
        let mut rng = SimRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "sample mean {mean}");
    }

    proptest! {
        #[test]
        fn samples_are_non_negative(rate in 1e-6..1e3_f64, seed in any::<u64>()) {
            let d = Exponential::new(rate).unwrap();
            let mut rng = SimRng::seed_from_u64(seed);
            for _ in 0..32 {
                prop_assert!(d.sample(&mut rng) >= 0.0);
            }
        }

        #[test]
        fn cdf_is_monotone(rate in 1e-3..1e2_f64, a in 0.0..1e4_f64, b in 0.0..1e4_f64) {
            let d = Exponential::new(rate).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(d.cdf(lo) <= d.cdf(hi) + 1e-15);
        }

        #[test]
        fn quantile_roundtrip(rate in 1e-3..1e2_f64, p in 0.001..0.999_f64) {
            let d = Exponential::new(rate).unwrap();
            let x = d.quantile(p).unwrap();
            prop_assert!((d.cdf(x) - p).abs() < 1e-9);
        }
    }
}
