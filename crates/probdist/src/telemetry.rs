//! Lock-free telemetry: sharded metrics, phase spans, and live progress.
//!
//! Long campaigns — million-replication studies, thousand-point design
//! sweeps, rare-event runs at 1e-10 — need to show *where the compute
//! went* without perturbing it. This module provides that layer for the
//! whole workspace:
//!
//! * **Statically registered metrics** ([`METRICS`], addressed by
//!   [`MetricId`]): counters, gauges, and histograms with a fixed
//!   compile-time schema, each tagged with its unit and its
//!   [`Determinism`] class.
//! * **Per-thread sharded accumulators**: every recording thread owns a
//!   private block of relaxed [`AtomicU64`] cells, registered once in a
//!   global shard list. Recording is one branch (the global enable flag)
//!   plus one uncontended `fetch_add` — no locks, no allocation, so the
//!   allocation-free replication hot path stays allocation-free.
//!   [`snapshot`] merges the shards; the pool's quiesce protocol
//!   (registry mutex) orders worker writes before the submitter reads.
//! * **Spans** ([`span`]): drop-timed phase durations (model build, lint
//!   passes, reach exploration, generator assembly, solve, replicate,
//!   checkpoint write, report render) recorded into `*_ns` histograms.
//! * **Progress** ([`start_progress`]): a sampler thread that reads only
//!   relaxed counters and paints a live stderr line — completed/scheduled
//!   replications, replications/s, ETA, deadline warnings.
//! * **Exposition**: [`TelemetrySnapshot`] renders as aligned text, CSV,
//!   JSON (via `serde`), and a Prometheus-style text format
//!   ([`TelemetrySnapshot::to_prometheus`]) suitable for file scraping.
//!
//! # Determinism contract
//!
//! Telemetry never touches an RNG stream, a result slot, or the merge
//! order, so **simulation statistics are bit-identical with telemetry on
//! or off**, at any worker count. The metrics themselves split into three
//! classes, tagged in the schema and in every rendering:
//!
//! * [`Determinism::Deterministic`] — pure functions of `(model, seed,
//!   replication set)`: events fired, activities re-examined, heap
//!   operations, resample restarts, replications completed, missions,
//!   loss events, chaos injections, checkpoint write/byte/resume counts,
//!   splitting level hits. Bit-identical at workers 1/2/8 (pinned by
//!   tests) — except under deadline truncation, where the completed
//!   prefix itself is timing-dependent.
//! * [`Determinism::Scheduling`] — dependent on how the pool interleaved
//!   claims: batches claimed, batch sizes, park/wake counts. These vary
//!   run to run even at a fixed worker count (the claim loop races).
//! * [`Determinism::WallClock`] — durations in nanoseconds: spans, busy
//!   and idle time. Never comparable across runs.
//!
//! The whole layer is **off by default**: every recording call starts
//! with one relaxed load of the global enable flag, so a run without
//! [`set_enabled`]`(true)` (or an [`enable_scoped`] guard) pays one
//! predictable branch per flush point — unmeasurable against a
//! microsecond-scale replication.

use std::io::IsTerminal;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex, PoisonError};
use std::time::{Duration, Instant};

use serde::Serialize;

/// What a metric measures and how it accumulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone sum of recorded increments.
    Counter,
    /// Last recorded value (an `f64`).
    Gauge,
    /// Count / sum / min / max of recorded observations.
    Histogram,
}

impl MetricKind {
    /// Lower-case schema name (`"counter"`, `"gauge"`, `"histogram"`).
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Reproducibility class of a metric — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Determinism {
    /// A pure function of `(model, seed, replication set)`:
    /// worker-count-invariant and bit-identical run to run.
    Deterministic,
    /// Depends on how the pool interleaved batch claims; varies run to
    /// run even at a fixed worker count.
    Scheduling,
    /// A wall-clock duration; never comparable across runs.
    WallClock,
}

impl Determinism {
    /// Lower-case schema tag (`"deterministic"`, `"scheduling"`,
    /// `"wall_clock"`).
    pub fn name(self) -> &'static str {
        match self {
            Determinism::Deterministic => "deterministic",
            Determinism::Scheduling => "scheduling",
            Determinism::WallClock => "wall_clock",
        }
    }
}

/// One entry of the static metric registry.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// The metric's identifier (its index into [`METRICS`]).
    pub id: MetricId,
    /// Stable exported name (also the Prometheus exposition name).
    pub name: &'static str,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// Unit of the recorded values (`"count"`, `"bytes"`, `"ns"`, …).
    pub unit: &'static str,
    /// Reproducibility class, rendered in every sink.
    pub determinism: Determinism,
    /// One-line description (the Prometheus `# HELP` text).
    pub help: &'static str,
}

macro_rules! metrics {
    ($( $variant:ident = $name:literal, $kind:ident, $unit:literal,
        $det:ident, $help:literal; )*) => {
        /// Identifier of one statically registered metric; doubles as the
        /// index into [`METRICS`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum MetricId {
            $( #[doc = $help] $variant, )*
        }

        /// The static metric registry, indexed by `MetricId as usize`.
        pub const METRICS: &[MetricDef] = &[
            $( MetricDef {
                id: MetricId::$variant,
                name: $name,
                kind: MetricKind::$kind,
                unit: $unit,
                determinism: Determinism::$det,
                help: $help,
            }, )*
        ];
    };
}

metrics! {
    // Replication progress (the pair the live progress line reads).
    ReplicationsCompleted = "replications_completed_total", Counter,
        "count", Deterministic,
        "Replication work units completed across every fan-out";
    ReplicationsScheduled = "replications_scheduled_total", Counter,
        "count", Deterministic,
        "Replication work units scheduled (grows as adaptive batches are planned)";

    // SAN simulation kernels.
    SanEventsFired = "san_events_fired_total", Counter,
        "count", Deterministic,
        "Activity completions executed by the SAN kernels";
    SanReexaminations = "san_activities_reexamined_total", Counter,
        "count", Deterministic,
        "Activities re-examined after firings (calendar revisits + reference rescans)";
    SanHeapOps = "san_heap_ops_total", Counter,
        "count", Deterministic,
        "Event-calendar indexed-heap operations (push/upsert/remove)";
    SanRestarts = "san_restarts_total", Counter,
        "count", Deterministic,
        "Activity timers resampled because a marking change invalidated them";

    // Worker pool.
    PoolBatchesClaimed = "pool_batches_claimed_total", Counter,
        "count", Scheduling,
        "Adaptive batches claimed from fan-out index counters";
    PoolParks = "pool_parks_total", Counter,
        "count", Scheduling,
        "Times a pool worker parked on the work condvar";
    PoolWakes = "pool_wakes_total", Counter,
        "count", Scheduling,
        "Times a parked pool worker woke to rescan the registry";

    // Storage kernels (raidsim).
    RaidMissions = "raid_missions_total", Counter,
        "count", Deterministic,
        "Storage Monte-Carlo missions executed (RAID + replication kernels)";
    RaidLossEvents = "raid_loss_events_total", Counter,
        "count", Deterministic,
        "Data-loss events observed across storage missions";
    SplittingLevelHits = "splitting_level_hits_total", Counter,
        "count", Deterministic,
        "Trials that reached the next exposure level in multilevel splitting";

    // Checkpointing.
    CheckpointWrites = "checkpoint_writes_total", Counter,
        "count", Deterministic,
        "Checkpoint files written (atomic write + rename pairs)";
    CheckpointBytes = "checkpoint_bytes_written_total", Counter,
        "bytes", Deterministic,
        "Payload bytes written to checkpoint files";
    CheckpointResumeHits = "checkpoint_resume_hits_total", Counter,
        "count", Deterministic,
        "Replications served from a checkpoint instead of re-simulated";

    // Chaos injection sites (recorded only under the `chaos` feature).
    ChaosWorkUnitInjections = "chaos_injections_work_unit_total", Counter,
        "count", Deterministic,
        "Chaos faults (stalls + panics) injected at the work-unit site";
    ChaosRewardInjections = "chaos_injections_reward_total", Counter,
        "count", Deterministic,
        "Chaos non-finite rewards injected at the reward site";

    // Rare-event estimators.
    RareWeightEss = "rare_weight_ess", Gauge,
        "samples", Deterministic,
        "Kish effective sample size of the last importance-sampled estimate";

    // Pool timing histograms.
    PoolBatchSize = "pool_batch_size", Histogram,
        "count", Scheduling,
        "Size distribution of claimed adaptive batches";
    PoolBusyNs = "pool_session_busy_ns", Histogram,
        "ns", WallClock,
        "Wall-clock time workers spent attached to fan-out sessions";
    PoolIdleNs = "pool_park_idle_ns", Histogram,
        "ns", WallClock,
        "Wall-clock time workers spent parked between fan-outs";

    // Pipeline phase spans.
    SpanModelBuild = "span_model_build_ns", Histogram,
        "ns", WallClock,
        "Model construction (SAN assembly + reward compilation)";
    SpanLint = "span_lint_ns", Histogram,
        "ns", WallClock,
        "Whole static-lint pass over one model";
    SpanLintDeclaration = "span_lint_declaration_ns", Histogram,
        "ns", WallClock,
        "Lint pass 1: declaration soundness probing";
    SpanLintStructural = "span_lint_structural_ns", Histogram,
        "ns", WallClock,
        "Lint pass 2: structural analysis";
    SpanLintReward = "span_lint_reward_ns", Histogram,
        "ns", WallClock,
        "Lint pass 3: reward and sweep linting";
    SpanReachExplore = "span_reach_explore_ns", Histogram,
        "ns", WallClock,
        "Reachability exploration of the marking graph";
    SpanGeneratorAssembly = "span_generator_assembly_ns", Histogram,
        "ns", WallClock,
        "Sparse CTMC generator assembly from the reachable set";
    SpanSolve = "span_solve_ns", Histogram,
        "ns", WallClock,
        "Analytic solve (steady-state / transient) of an assembled chain";
    SpanReplicate = "span_replicate_ns", Histogram,
        "ns", WallClock,
        "One replication batch through the experiment runner";
    SpanCheckpointWrite = "span_checkpoint_write_ns", Histogram,
        "ns", WallClock,
        "Checkpoint serialisation + write (excluding the rename)";
    SpanCheckpointRename = "span_checkpoint_rename_ns", Histogram,
        "ns", WallClock,
        "Atomic rename publishing a written checkpoint";
    SpanReportRender = "span_report_render_ns", Histogram,
        "ns", WallClock,
        "Rendering one report through a sink (text/CSV/JSON)";
}

/// Cells per metric in a shard: `[count-or-value, sum, min, max]`.
/// Counters use cell 0 only; histograms use all four.
const STRIDE: usize = 4;

/// The global enable flag. Off by default; every recording call starts
/// with one relaxed load of this.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// One thread's private accumulator block.
struct Shard {
    cells: Box<[AtomicU64]>,
}

impl Shard {
    fn new() -> Shard {
        let cells: Vec<AtomicU64> = (0..METRICS.len() * STRIDE)
            .map(|i| {
                // Min cells start saturated so the first observation wins.
                AtomicU64::new(if i % STRIDE == 2 { u64::MAX } else { 0 })
            })
            .collect();
        Shard { cells: cells.into_boxed_slice() }
    }
}

/// Every shard ever registered. Shards are never removed: a dead thread's
/// final counts stay visible (counters are monotone), and the `Arc` keeps
/// the cells alive for snapshotting.
static SHARDS: LazyLock<Mutex<Vec<Arc<Shard>>>> = LazyLock::new(|| Mutex::new(Vec::new()));

/// Gauges live in one global block (last write wins — per-thread shards
/// cannot express "last"). Gauge writes are rare (once per estimate), so
/// the shared cell costs nothing.
static GAUGES: LazyLock<Box<[AtomicU64]>> =
    LazyLock::new(|| (0..METRICS.len()).map(|_| AtomicU64::new(0)).collect());

thread_local! {
    /// This thread's shard, registered globally on first use.
    static LOCAL: Arc<Shard> = {
        let shard = Arc::new(Shard::new());
        SHARDS.lock().unwrap_or_else(PoisonError::into_inner).push(Arc::clone(&shard));
        shard
    };
}

/// Whether telemetry is currently recording. One relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off, process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enables recording until the guard drops, then restores the previous
/// state. The scoped form the study runner and tests use.
#[must_use]
pub fn enable_scoped() -> EnabledGuard {
    let previous = ENABLED.swap(true, Ordering::Relaxed);
    EnabledGuard { previous }
}

/// Restores the previous enable state on drop — see [`enable_scoped`].
pub struct EnabledGuard {
    previous: bool,
}

impl Drop for EnabledGuard {
    fn drop(&mut self) {
        ENABLED.store(self.previous, Ordering::Relaxed);
    }
}

#[inline]
fn base(id: MetricId) -> usize {
    id as usize * STRIDE
}

/// Adds `n` to a counter. No-op when disabled or `n == 0`.
#[inline]
pub fn counter_add(id: MetricId, n: u64) {
    if n == 0 || !enabled() {
        return;
    }
    LOCAL.with(|shard| {
        shard.cells[base(id)].fetch_add(n, Ordering::Relaxed);
    });
}

/// Increments a counter by one. No-op when disabled.
#[inline]
pub fn counter_inc(id: MetricId) {
    counter_add(id, 1);
}

/// Sets a gauge to `value` (last write wins). No-op when disabled.
#[inline]
pub fn gauge_set(id: MetricId, value: f64) {
    if !enabled() {
        return;
    }
    GAUGES[id as usize].store(value.to_bits(), Ordering::Relaxed);
}

/// Records one histogram observation. No-op when disabled.
#[inline]
pub fn observe(id: MetricId, value: u64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|shard| {
        let b = base(id);
        shard.cells[b].fetch_add(1, Ordering::Relaxed);
        shard.cells[b + 1].fetch_add(value, Ordering::Relaxed);
        shard.cells[b + 2].fetch_min(value, Ordering::Relaxed);
        shard.cells[b + 3].fetch_max(value, Ordering::Relaxed);
    });
}

/// The current merged value of a counter (sum over every shard). Works
/// whether or not recording is enabled — reading is always allowed.
pub fn counter_value(id: MetricId) -> u64 {
    let shards = SHARDS.lock().unwrap_or_else(PoisonError::into_inner);
    shards.iter().map(|s| s.cells[base(id)].load(Ordering::Relaxed)).sum()
}

/// A drop-timed phase span: construct via [`span`], record on drop into
/// the metric's `*_ns` histogram. Costs one `Instant::now()` at each end
/// when enabled, nothing at all when disabled.
#[must_use]
pub struct Span {
    id: MetricId,
    start: Option<Instant>,
}

impl Span {
    /// Nanoseconds elapsed so far, `None` when telemetry was disabled at
    /// construction.
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.start.map(|s| u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            observe(self.id, u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

/// Starts a span over the given `span_*_ns` histogram. When telemetry is
/// disabled the returned guard is inert (no clock read at either end).
pub fn span(id: MetricId) -> Span {
    Span { id, start: enabled().then(Instant::now) }
}

// ---------------------------------------------------------------------
// Snapshots and rendering
// ---------------------------------------------------------------------

/// One metric's merged value at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricSample {
    /// Stable metric name from the registry.
    pub name: String,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: String,
    /// Unit of `value` (and of `min`/`max` for histograms).
    pub unit: String,
    /// Reproducibility tag: `"deterministic"`, `"scheduling"`, or
    /// `"wall_clock"`.
    pub determinism: String,
    /// Counter total, gauge value, or histogram sum.
    pub value: f64,
    /// Observation count — histograms only.
    pub count: Option<u64>,
    /// Smallest observation — histograms with at least one observation.
    pub min: Option<f64>,
    /// Largest observation — histograms with at least one observation.
    pub max: Option<f64>,
}

/// A merged view of every registered metric at one instant, produced by
/// [`snapshot`]. Renders as text, CSV, JSON (via `serde`), and
/// Prometheus-style exposition.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TelemetrySnapshot {
    /// One sample per registry entry, in registry order.
    pub samples: Vec<MetricSample>,
}

/// Merges every shard into a [`TelemetrySnapshot`]. Reading is always
/// allowed (enabled or not); concurrent recording is safe — each cell is
/// read with one relaxed load, so a snapshot taken mid-run is a
/// consistent-enough monotone view, and one taken after the pool
/// quiesced is exact (the registry mutex ordered all worker writes).
pub fn snapshot() -> TelemetrySnapshot {
    let shards: Vec<Arc<Shard>> = SHARDS.lock().unwrap_or_else(PoisonError::into_inner).clone();
    let samples = METRICS
        .iter()
        .map(|def| {
            let b = base(def.id);
            match def.kind {
                MetricKind::Counter => {
                    let total: u64 =
                        shards.iter().map(|s| s.cells[b].load(Ordering::Relaxed)).sum();
                    sample_of(def, total as f64, None, None, None)
                }
                MetricKind::Gauge => {
                    let bits = GAUGES[def.id as usize].load(Ordering::Relaxed);
                    sample_of(def, f64::from_bits(bits), None, None, None)
                }
                MetricKind::Histogram => {
                    let mut count = 0u64;
                    let mut sum = 0u64;
                    let mut min = u64::MAX;
                    let mut max = 0u64;
                    for s in &shards {
                        count += s.cells[b].load(Ordering::Relaxed);
                        sum += s.cells[b + 1].load(Ordering::Relaxed);
                        min = min.min(s.cells[b + 2].load(Ordering::Relaxed));
                        max = max.max(s.cells[b + 3].load(Ordering::Relaxed));
                    }
                    let (lo, hi) = if count == 0 {
                        (None, None)
                    } else {
                        (Some(min as f64), Some(max as f64))
                    };
                    sample_of(def, sum as f64, Some(count), lo, hi)
                }
            }
        })
        .collect();
    TelemetrySnapshot { samples }
}

fn sample_of(
    def: &MetricDef,
    value: f64,
    count: Option<u64>,
    min: Option<f64>,
    max: Option<f64>,
) -> MetricSample {
    MetricSample {
        name: def.name.to_string(),
        kind: def.kind.name().to_string(),
        unit: def.unit.to_string(),
        determinism: def.determinism.name().to_string(),
        value,
        count,
        min,
        max,
    }
}

impl TelemetrySnapshot {
    /// The sample with the given registry name, if present.
    pub fn get(&self, name: &str) -> Option<&MetricSample> {
        self.samples.iter().find(|s| s.name == name)
    }

    /// The difference of this snapshot against an earlier `baseline`:
    /// counter values and histogram count/sum are subtracted, so the
    /// result covers exactly the work between the two snapshots. Gauges
    /// keep their current value (they are absolute), and histogram
    /// min/max keep the current (process-lifetime) extremes — both are
    /// noted in the schema rather than fudged.
    pub fn delta_since(&self, baseline: &TelemetrySnapshot) -> TelemetrySnapshot {
        let samples = self
            .samples
            .iter()
            .map(|s| {
                let mut out = s.clone();
                if let Some(b) = baseline.get(&s.name) {
                    if s.kind != "gauge" {
                        out.value = (s.value - b.value).max(0.0);
                    }
                    if let (Some(c), Some(bc)) = (s.count, b.count) {
                        out.count = Some(c.saturating_sub(bc));
                        if out.count == Some(0) {
                            out.min = None;
                            out.max = None;
                        }
                    }
                }
                out
            })
            .collect();
        TelemetrySnapshot { samples }
    }

    /// Samples that recorded anything (non-zero counters/histograms, and
    /// every gauge that was ever set).
    pub fn active(&self) -> impl Iterator<Item = &MetricSample> {
        self.samples.iter().filter(|s| s.value != 0.0 || s.count.unwrap_or(0) != 0)
    }

    /// Aligned human-readable table of every metric (zero rows included,
    /// so the full schema is visible).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;

        let mut out = String::new();
        let _ = writeln!(out, "telemetry ({} metrics)", self.samples.len());
        let name_w = self.samples.iter().map(|s| s.name.len()).max().unwrap_or(4).max(6);
        let _ = writeln!(
            out,
            "{:<name_w$}  {:<9}  {:<5}  {:<13}  {:>16}  {:>10}",
            "metric", "kind", "unit", "determinism", "value", "count"
        );
        for s in &self.samples {
            let count = s.count.map_or(String::from("-"), |c| c.to_string());
            let _ = writeln!(
                out,
                "{:<name_w$}  {:<9}  {:<5}  {:<13}  {:>16}  {:>10}",
                s.name,
                s.kind,
                s.unit,
                s.determinism,
                format_value(s.value),
                count
            );
        }
        out
    }

    /// RFC-4180 CSV: one header plus one row per metric.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;

        let mut out = String::from("metric,kind,unit,determinism,value,count,min,max\r\n");
        for s in &self.samples {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{}\r",
                s.name,
                s.kind,
                s.unit,
                s.determinism,
                format_value(s.value),
                s.count.map_or(String::new(), |c| c.to_string()),
                s.min.map_or(String::new(), format_value),
                s.max.map_or(String::new(), format_value),
            );
        }
        out
    }

    /// Pretty-printed JSON document (`{"samples": [...]}`), the
    /// machine-readable artifact format CI archives.
    pub fn to_json(&self) -> String {
        serde::to_json_pretty(self)
    }

    /// Prometheus-style text exposition, suitable for writing to a file a
    /// scraper watches. Counters and gauges expose one line; histograms
    /// expose `_count` / `_sum` / `_min` / `_max` gauges. Every line
    /// carries a `determinism` label.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;

        let mut out = String::new();
        for s in &self.samples {
            let _ = writeln!(out, "# HELP {} {}", s.name, help_of(&s.name));
            match s.kind.as_str() {
                "counter" => {
                    let _ = writeln!(out, "# TYPE {} counter", s.name);
                    let _ = writeln!(
                        out,
                        "{}{{determinism=\"{}\"}} {}",
                        s.name,
                        s.determinism,
                        format_value(s.value)
                    );
                }
                "gauge" => {
                    let _ = writeln!(out, "# TYPE {} gauge", s.name);
                    let _ = writeln!(
                        out,
                        "{}{{determinism=\"{}\"}} {}",
                        s.name,
                        s.determinism,
                        format_value(s.value)
                    );
                }
                _ => {
                    let _ = writeln!(out, "# TYPE {} summary", s.name);
                    let count = s.count.unwrap_or(0);
                    let _ = writeln!(
                        out,
                        "{}_count{{determinism=\"{}\"}} {count}",
                        s.name, s.determinism
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{{determinism=\"{}\"}} {}",
                        s.name,
                        s.determinism,
                        format_value(s.value)
                    );
                    if let (Some(min), Some(max)) = (s.min, s.max) {
                        let _ = writeln!(
                            out,
                            "{}_min{{determinism=\"{}\"}} {}",
                            s.name,
                            s.determinism,
                            format_value(min)
                        );
                        let _ = writeln!(
                            out,
                            "{}_max{{determinism=\"{}\"}} {}",
                            s.name,
                            s.determinism,
                            format_value(max)
                        );
                    }
                }
            }
        }
        out
    }

    /// Writes [`TelemetrySnapshot::to_prometheus`] to `path` atomically
    /// (write to `path.tmp`, then rename), so a scraper never reads a
    /// torn file.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be written or renamed.
    pub fn write_prometheus(&self, path: &str) -> std::io::Result<()> {
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, self.to_prometheus())?;
        std::fs::rename(&tmp, path)
    }
}

fn help_of(name: &str) -> &'static str {
    METRICS.iter().find(|d| d.name == name).map_or("", |d| d.help)
}

/// Renders an f64 without a trailing `.0` for integral values, matching
/// the counter-dominated output.
fn format_value(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{value:.0}")
    } else {
        format!("{value}")
    }
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Telemetry options a run spec carries — see
/// `RunSpec::with_telemetry` in `cfs-model`. Constructing one opts the
/// run into metric recording and a [`TelemetrySnapshot`] on its report;
/// the builder methods add the live progress line and the Prometheus
/// exposition file.
#[derive(Debug, Clone, PartialEq, Serialize, serde::Deserialize)]
pub struct TelemetryConfig {
    /// Paint a live progress line on stderr while the run executes.
    pub progress: bool,
    /// Sampler period for the progress line, milliseconds (default 500).
    pub progress_interval_ms: u64,
    /// When set, write the Prometheus-style exposition to this file after
    /// the run (atomic rename, scraper-safe).
    pub exposition_path: Option<String>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig::new()
    }
}

impl TelemetryConfig {
    /// Metrics recording + snapshot on the report; no progress line, no
    /// exposition file.
    pub fn new() -> TelemetryConfig {
        TelemetryConfig { progress: false, progress_interval_ms: 500, exposition_path: None }
    }

    /// Enables the live stderr progress line.
    #[must_use]
    pub fn with_progress(mut self) -> TelemetryConfig {
        self.progress = true;
        self
    }

    /// Sets the progress sampler period in milliseconds.
    #[must_use]
    pub fn with_progress_interval_ms(mut self, ms: u64) -> TelemetryConfig {
        self.progress_interval_ms = ms;
        self
    }

    /// Writes the Prometheus exposition to `path` when the run finishes.
    #[must_use]
    pub fn with_exposition_path(mut self, path: impl Into<String>) -> TelemetryConfig {
        self.exposition_path = Some(path.into());
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description when the sampler interval is zero or the
    /// exposition path is empty.
    pub fn validate(&self) -> Result<(), String> {
        if self.progress_interval_ms == 0 {
            return Err("telemetry progress_interval_ms must be at least 1".to_string());
        }
        if self.exposition_path.as_deref() == Some("") {
            return Err("telemetry exposition_path must not be empty".to_string());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Live progress
// ---------------------------------------------------------------------

/// Handle to the progress sampler thread started by [`start_progress`];
/// stops (and joins) the thread on drop, painting a final line.
pub struct ProgressSampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for ProgressSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Starts the live progress sampler: a thread that wakes every
/// `interval`, reads the replication counters with relaxed loads (it
/// never takes a lock the hot path could contend on), and paints a
/// stderr line with completed/scheduled counts, the run-average
/// replication rate, and an ETA extrapolated from the currently
/// scheduled work — which grows as the adaptive stopping rule schedules
/// further batches, so the ETA tightens as the run converges.
///
/// `deadline` is the run's wall-clock budget when one was configured:
/// the line warns when the ETA overshoots the remaining budget and
/// announces truncation once the budget is spent.
///
/// On a terminal the line repaints in place (`\r`); on a pipe it prints
/// one full line per sample. The sampler stops when the returned handle
/// drops.
pub fn start_progress(interval: Duration, deadline: Option<Duration>) -> ProgressSampler {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let completed0 = counter_value(MetricId::ReplicationsCompleted);
    let scheduled0 = counter_value(MetricId::ReplicationsScheduled);
    let handle = std::thread::Builder::new()
        .name("cfs-telemetry-progress".to_string())
        .spawn(move || {
            let start = Instant::now();
            let tty = std::io::stderr().is_terminal();
            loop {
                let stopping = stop_flag.load(Ordering::Relaxed);
                let elapsed = start.elapsed().as_secs_f64();
                let done = counter_value(MetricId::ReplicationsCompleted) - completed0;
                let scheduled = counter_value(MetricId::ReplicationsScheduled) - scheduled0;
                let rate = if elapsed > 0.0 { done as f64 / elapsed } else { 0.0 };
                let remaining = scheduled.saturating_sub(done);
                let eta = if rate > 0.0 { remaining as f64 / rate } else { f64::INFINITY };
                let mut line = format!(
                    "[telemetry] {done}/{scheduled} replications · {} repl/s · ETA {}",
                    format_rate(rate),
                    format_eta(eta),
                );
                if let Some(budget) = deadline {
                    let left = budget.as_secs_f64() - elapsed;
                    if left <= 0.0 {
                        line.push_str(" · deadline expired, truncating");
                    } else if eta > left {
                        line.push_str(" · WARNING: ETA exceeds deadline");
                    }
                }
                if tty {
                    eprint!("\r{line}\x1b[K");
                } else {
                    eprintln!("{line}");
                }
                if stopping {
                    if tty {
                        eprintln!();
                    }
                    return;
                }
                std::thread::sleep(interval);
            }
        })
        .expect("failed to spawn telemetry progress thread");
    ProgressSampler { stop, handle: Some(handle) }
}

fn format_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

fn format_eta(eta: f64) -> String {
    if !eta.is_finite() {
        return "?".to_string();
    }
    if eta >= 3600.0 {
        format!("{:.1}h", eta / 3600.0)
    } else if eta >= 60.0 {
        format!("{:.1}m", eta / 60.0)
    } else {
        format!("{eta:.1}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Telemetry state is process-global; tests that record serialize on
    /// this lock so concurrent test threads cannot pollute each other's
    /// deltas.
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn registry_is_consistent() {
        for (index, def) in METRICS.iter().enumerate() {
            assert_eq!(def.id as usize, index, "{} is out of order", def.name);
            assert!(!def.name.is_empty() && !def.help.is_empty());
        }
        // Names are unique.
        let mut names: Vec<&str> = METRICS.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), METRICS.len(), "metric names must be unique");
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _guard = locked();
        set_enabled(false);
        let before = counter_value(MetricId::SanEventsFired);
        counter_add(MetricId::SanEventsFired, 1000);
        observe(MetricId::PoolBatchSize, 7);
        gauge_set(MetricId::RareWeightEss, 42.0);
        assert_eq!(counter_value(MetricId::SanEventsFired), before);
        let span = span(MetricId::SpanLint);
        assert!(span.elapsed_ns().is_none(), "disabled spans never read the clock");
        drop(span);
    }

    #[test]
    fn counters_accumulate_across_threads_and_delta_subtracts() {
        let _guard = locked();
        let _on = enable_scoped();
        let baseline = snapshot();
        counter_add(MetricId::SanEventsFired, 5);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    counter_add(MetricId::SanEventsFired, 10);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let delta = snapshot().delta_since(&baseline);
        assert_eq!(delta.get("san_events_fired_total").unwrap().value, 45.0);
    }

    #[test]
    fn histograms_track_count_sum_min_max() {
        let _guard = locked();
        let _on = enable_scoped();
        let baseline = snapshot();
        observe(MetricId::PoolBatchSize, 3);
        observe(MetricId::PoolBatchSize, 9);
        observe(MetricId::PoolBatchSize, 6);
        let delta = snapshot().delta_since(&baseline);
        let s = delta.get("pool_batch_size").unwrap();
        assert_eq!(s.count, Some(3));
        assert_eq!(s.value, 18.0);
        // min/max are process-lifetime extremes, so only bound them.
        assert!(s.min.unwrap() <= 3.0);
        assert!(s.max.unwrap() >= 9.0);
    }

    #[test]
    fn gauges_keep_the_last_value() {
        let _guard = locked();
        let _on = enable_scoped();
        gauge_set(MetricId::RareWeightEss, 12.5);
        gauge_set(MetricId::RareWeightEss, 99.25);
        let snap = snapshot();
        assert_eq!(snap.get("rare_weight_ess").unwrap().value, 99.25);
    }

    #[test]
    fn spans_record_into_their_histogram() {
        let _guard = locked();
        let _on = enable_scoped();
        let baseline = snapshot();
        {
            let s = span(MetricId::SpanLint);
            assert!(s.elapsed_ns().is_some());
        }
        let delta = snapshot().delta_since(&baseline);
        let s = delta.get("span_lint_ns").unwrap();
        assert_eq!(s.count, Some(1));
        assert_eq!(s.determinism, "wall_clock");
    }

    #[test]
    fn renderings_cover_the_schema() {
        let _guard = locked();
        let _on = enable_scoped();
        counter_add(MetricId::SanEventsFired, 3);
        observe(MetricId::PoolBatchSize, 4);
        let snap = snapshot();

        let text = snap.to_text();
        assert!(text.contains("san_events_fired_total"), "{text}");
        assert!(text.contains("deterministic"), "{text}");

        let csv = snap.to_csv();
        assert!(csv.starts_with("metric,kind,unit,determinism,value,count,min,max\r\n"));
        assert!(csv.contains("pool_batch_size,histogram,count,scheduling"), "{csv}");

        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE san_events_fired_total counter"), "{prom}");
        assert!(prom.contains("# HELP san_events_fired_total"), "{prom}");
        assert!(prom.contains("pool_batch_size_count{determinism=\"scheduling\"}"), "{prom}");
        assert!(prom.contains("# TYPE rare_weight_ess gauge"), "{prom}");

        let json = serde::to_json(&snap);
        assert!(json.contains("\"samples\""), "{json}");
        assert!(json.contains("\"determinism\":\"deterministic\""), "{json}");
    }

    #[test]
    fn prometheus_exposition_writes_atomically() {
        let _guard = locked();
        let dir = std::env::temp_dir().join("cfs-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        let path = path.to_str().unwrap();
        snapshot().write_prometheus(path).unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("# TYPE replications_completed_total counter"), "{body}");
        assert!(!std::path::Path::new(&format!("{path}.tmp")).exists());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn config_builder_and_validation() {
        let config = TelemetryConfig::new();
        assert!(!config.progress);
        assert!(config.validate().is_ok());
        let config = config.with_progress().with_progress_interval_ms(100);
        assert!(config.progress);
        assert_eq!(config.progress_interval_ms, 100);
        assert!(config.validate().is_ok());
        assert!(config.clone().with_progress_interval_ms(0).validate().is_err());
        let with_path = TelemetryConfig::new().with_exposition_path("metrics.prom");
        assert_eq!(with_path.exposition_path.as_deref(), Some("metrics.prom"));
        assert!(with_path.validate().is_ok());
        let mut empty = TelemetryConfig::new();
        empty.exposition_path = Some(String::new());
        assert!(empty.validate().is_err());
    }

    #[test]
    fn config_serialises_with_stable_field_names() {
        let config = TelemetryConfig::new()
            .with_progress()
            .with_progress_interval_ms(250)
            .with_exposition_path("out.prom");
        let value = serde::json::parse(&serde::to_json(&config)).unwrap();
        assert_eq!(value.get("progress").and_then(serde::Value::as_bool), Some(true));
        assert_eq!(value.get("progress_interval_ms").and_then(serde::Value::as_u64), Some(250));
        assert_eq!(value.get("exposition_path").and_then(serde::Value::as_str), Some("out.prom"));
    }

    #[test]
    fn progress_sampler_starts_and_stops() {
        let _guard = locked();
        let _on = enable_scoped();
        counter_add(MetricId::ReplicationsScheduled, 10);
        counter_add(MetricId::ReplicationsCompleted, 10);
        let sampler = start_progress(Duration::from_millis(5), Some(Duration::from_secs(60)));
        std::thread::sleep(Duration::from_millis(15));
        drop(sampler); // must join without hanging
    }

    #[test]
    fn rate_and_eta_formatting() {
        assert_eq!(format_rate(1_500_000.0), "1.50M");
        assert_eq!(format_rate(2_500.0), "2.5k");
        assert_eq!(format_rate(42.0), "42");
        assert_eq!(format_eta(f64::INFINITY), "?");
        assert_eq!(format_eta(7200.0), "2.0h");
        assert_eq!(format_eta(90.0), "1.5m");
        assert_eq!(format_eta(2.25), "2.2s");
    }
}
