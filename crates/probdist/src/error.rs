use std::error::Error;
use std::fmt;

/// Error type returned by constructors and fitting routines in this crate.
///
/// All variants carry enough context to diagnose which parameter was
/// rejected and why, so that model-construction errors surface with a
/// meaningful message rather than a `NaN` deep inside a simulation run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DistError {
    /// A distribution parameter was not strictly positive.
    NonPositiveParameter {
        /// Human-readable name of the offending parameter (e.g. `"shape"`).
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A distribution parameter was not finite (NaN or infinite).
    NonFiniteParameter {
        /// Human-readable name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A probability argument was outside `[0, 1]`.
    InvalidProbability {
        /// The rejected value.
        value: f64,
    },
    /// An interval `[lo, hi]` had `lo > hi` (or equal where forbidden).
    InvalidInterval {
        /// Lower bound supplied.
        lo: f64,
        /// Upper bound supplied.
        hi: f64,
    },
    /// An empirical distribution or a fitting routine was given no samples.
    EmptyData,
    /// A fitting routine was given data it cannot fit (e.g. all samples
    /// censored, or all observations identical where spread is required).
    DegenerateData {
        /// Explanation of why the data is unusable.
        reason: &'static str,
    },
    /// An iterative estimator (e.g. Weibull MLE Newton–Raphson) failed to
    /// converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// A sequential stopping rule was malformed (e.g. fewer than two
    /// minimum replications, or a minimum above the maximum).
    InvalidStoppingRule {
        /// Explanation of the rejected combination.
        reason: String,
    },
    /// A streaming statistics accumulator was offered a non-finite
    /// observation (NaN or ±inf), or an estimate was requested from an
    /// accumulator that has rejected at least one — a poisoned accumulator
    /// reports how many contributions it refused instead of silently
    /// corrupting every downstream confidence interval.
    NonFiniteObservation {
        /// Number of non-finite observations rejected by the accumulator.
        count: u64,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::NonPositiveParameter { name, value } => {
                write!(f, "parameter `{name}` must be > 0, got {value}")
            }
            DistError::NonFiniteParameter { name, value } => {
                write!(f, "parameter `{name}` must be finite, got {value}")
            }
            DistError::InvalidProbability { value } => {
                write!(f, "probability must lie in [0, 1], got {value}")
            }
            DistError::InvalidInterval { lo, hi } => {
                write!(f, "invalid interval: lower bound {lo} exceeds upper bound {hi}")
            }
            DistError::EmptyData => write!(f, "no data points provided"),
            DistError::DegenerateData { reason } => {
                write!(f, "data cannot be fitted: {reason}")
            }
            DistError::NoConvergence { iterations } => {
                write!(f, "estimator failed to converge after {iterations} iterations")
            }
            DistError::InvalidStoppingRule { reason } => {
                write!(f, "invalid stopping rule: {reason}")
            }
            DistError::NonFiniteObservation { count } => {
                write!(
                    f,
                    "accumulator rejected {count} non-finite observation{} (NaN or ±inf); \
                     its estimates are unavailable",
                    if *count == 1 { "" } else { "s" }
                )
            }
        }
    }
}

impl Error for DistError {}

impl DistError {
    /// Validates that `value` is finite and strictly positive, returning it
    /// on success.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NonFiniteParameter`] or
    /// [`DistError::NonPositiveParameter`] when the check fails.
    pub fn check_positive(name: &'static str, value: f64) -> Result<f64, DistError> {
        if !value.is_finite() {
            return Err(DistError::NonFiniteParameter { name, value });
        }
        if value <= 0.0 {
            return Err(DistError::NonPositiveParameter { name, value });
        }
        Ok(value)
    }

    /// Validates that `value` is finite and non-negative, returning it on
    /// success.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NonFiniteParameter`] or
    /// [`DistError::NonPositiveParameter`] when the check fails.
    pub fn check_non_negative(name: &'static str, value: f64) -> Result<f64, DistError> {
        if !value.is_finite() {
            return Err(DistError::NonFiniteParameter { name, value });
        }
        if value < 0.0 {
            return Err(DistError::NonPositiveParameter { name, value });
        }
        Ok(value)
    }

    /// Validates that `p` is a probability in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidProbability`] when `p` is outside the
    /// unit interval or not finite.
    pub fn check_probability(p: f64) -> Result<f64, DistError> {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(DistError::InvalidProbability { value: p });
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_positive_accepts_positive() {
        assert_eq!(DistError::check_positive("x", 1.5), Ok(1.5));
    }

    #[test]
    fn check_positive_rejects_zero_and_negative() {
        assert!(matches!(
            DistError::check_positive("x", 0.0),
            Err(DistError::NonPositiveParameter { name: "x", .. })
        ));
        assert!(matches!(
            DistError::check_positive("x", -3.0),
            Err(DistError::NonPositiveParameter { .. })
        ));
    }

    #[test]
    fn check_positive_rejects_nan_and_inf() {
        assert!(matches!(
            DistError::check_positive("x", f64::NAN),
            Err(DistError::NonFiniteParameter { .. })
        ));
        assert!(matches!(
            DistError::check_positive("x", f64::INFINITY),
            Err(DistError::NonFiniteParameter { .. })
        ));
    }

    #[test]
    fn check_non_negative_accepts_zero() {
        assert_eq!(DistError::check_non_negative("x", 0.0), Ok(0.0));
    }

    #[test]
    fn check_probability_bounds() {
        assert_eq!(DistError::check_probability(0.0), Ok(0.0));
        assert_eq!(DistError::check_probability(1.0), Ok(1.0));
        assert!(DistError::check_probability(1.0001).is_err());
        assert!(DistError::check_probability(-0.1).is_err());
        assert!(DistError::check_probability(f64::NAN).is_err());
    }

    #[test]
    fn display_is_informative() {
        let err = DistError::NonPositiveParameter { name: "shape", value: -1.0 };
        let msg = err.to_string();
        assert!(msg.contains("shape"));
        assert!(msg.contains("-1"));
    }
}
