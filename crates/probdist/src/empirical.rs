use serde::{Deserialize, Serialize};

use crate::{DistError, Distribution, SimRng};

/// Empirical distribution that resamples from an observed data set
/// (bootstrap resampling with linear interpolation between order
/// statistics for the CDF and quantile function).
///
/// This is how measured repair durations from the failure-log analysis can
/// be plugged straight into the simulation model without committing to a
/// parametric family — e.g. the ten outage durations of Table 1.
///
/// # Example
///
/// ```
/// use probdist::{Distribution, Empirical};
///
/// # fn main() -> Result<(), probdist::DistError> {
/// // Table 1 outage durations in hours.
/// let outages = Empirical::new(vec![
///     12.95, 18.18, 8.12, 1.67, 15.5, 12.42, 3.47, 3.36, 0.4, 1.93,
/// ])?;
/// assert!(outages.mean() > 7.0 && outages.mean() < 8.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Empirical {
    /// Observations sorted in ascending order.
    sorted: Vec<f64>,
}

impl Empirical {
    /// Creates an empirical distribution from a set of observations.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::EmptyData`] if `data` is empty and
    /// [`DistError::NonFiniteParameter`] /
    /// [`DistError::NonPositiveParameter`] if any observation is not finite
    /// or negative.
    pub fn new(data: Vec<f64>) -> Result<Self, DistError> {
        if data.is_empty() {
            return Err(DistError::EmptyData);
        }
        for &x in &data {
            DistError::check_non_negative("observation", x)?;
        }
        let mut sorted = data;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("observations are finite"));
        Ok(Empirical { sorted })
    }

    /// Number of observations backing the distribution.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the distribution has no observations (never true for a
    /// successfully constructed value; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The observations in ascending order.
    pub fn observations(&self) -> &[f64] {
        &self.sorted
    }

    /// The smallest observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// The largest observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }
}

impl Distribution for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sorted[rng.uniform_index(self.sorted.len())]
    }

    fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    fn variance(&self) -> f64 {
        if self.sorted.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        self.sorted.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (self.sorted.len() - 1) as f64
    }

    fn cdf(&self, x: f64) -> f64 {
        let n = self.sorted.len();
        let below = self.sorted.partition_point(|&v| v <= x);
        below as f64 / n as f64
    }

    fn pdf(&self, _x: f64) -> f64 {
        // A discrete empirical distribution has no density; see the trait
        // documentation.
        0.0
    }

    fn quantile(&self, p: f64) -> Result<f64, DistError> {
        let p = DistError::check_probability(p)?;
        let n = self.sorted.len();
        if n == 1 {
            return Ok(self.sorted[0]);
        }
        // Linear interpolation between order statistics (type-7 quantile).
        let h = p * (n - 1) as f64;
        let lo = h.floor() as usize;
        let hi = h.ceil() as usize;
        let frac = h - lo as f64;
        Ok(self.sorted[lo] * (1.0 - frac) + self.sorted[hi.min(n - 1)] * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_empty_and_invalid_data() {
        assert_eq!(Empirical::new(vec![]), Err(DistError::EmptyData));
        assert!(Empirical::new(vec![1.0, f64::NAN]).is_err());
        assert!(Empirical::new(vec![1.0, -2.0]).is_err());
    }

    #[test]
    fn mean_and_variance_match_hand_computation() {
        let e = Empirical::new(vec![2.0, 4.0, 6.0, 8.0]).unwrap();
        assert_eq!(e.mean(), 5.0);
        // sample variance with n-1 denominator: (9+1+1+9)/3
        assert!((e.variance() - 20.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_step_function_over_observations() {
        let e = Empirical::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.cdf(100.0), 1.0);
    }

    #[test]
    fn quantile_interpolates() {
        let e = Empirical::new(vec![0.0, 10.0]).unwrap();
        assert_eq!(e.quantile(0.0).unwrap(), 0.0);
        assert_eq!(e.quantile(0.5).unwrap(), 5.0);
        assert_eq!(e.quantile(1.0).unwrap(), 10.0);
    }

    #[test]
    fn samples_come_from_data() {
        let data = vec![1.5, 2.5, 9.0];
        let e = Empirical::new(data.clone()).unwrap();
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..100 {
            let s = e.sample(&mut rng);
            assert!(data.contains(&s));
        }
    }

    #[test]
    fn min_max_and_len() {
        let e = Empirical::new(vec![3.0, 1.0, 2.0]).unwrap();
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 3.0);
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
    }

    proptest! {
        #[test]
        fn cdf_monotone(mut data in proptest::collection::vec(0.0..1e3_f64, 1..50), a in 0.0..1e3_f64, b in 0.0..1e3_f64) {
            data.iter_mut().for_each(|x| *x = x.abs());
            let e = Empirical::new(data).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(e.cdf(lo) <= e.cdf(hi) + 1e-15);
        }

        #[test]
        fn quantile_within_observed_range(data in proptest::collection::vec(0.0..1e3_f64, 1..50), p in 0.0..1.0_f64) {
            let e = Empirical::new(data).unwrap();
            let q = e.quantile(p).unwrap();
            prop_assert!(q >= e.min() - 1e-12 && q <= e.max() + 1e-12);
        }
    }
}
