use serde::{Deserialize, Serialize};

use crate::special::{ln_gamma, reg_lower_gamma};
use crate::{DistError, Distribution, SimRng};

/// Gamma distribution with shape `k` and scale `θ` (hours).
///
/// The gamma family generalises the exponential (shape 1) and Erlang
/// distributions. It is used as an alternative repair/rebuild-time model and
/// as the stage distribution when approximating deterministic delays with
/// phase-type distributions in analytic cross-checks.
///
/// # Example
///
/// ```
/// use probdist::{Distribution, Gamma};
///
/// # fn main() -> Result<(), probdist::DistError> {
/// let rebuild = Gamma::from_mean_and_shape(8.0, 4.0)?;
/// assert!((rebuild.mean() - 8.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution with shape `k` and scale `θ`.
    ///
    /// # Errors
    ///
    /// Returns an error if either parameter is not finite and strictly
    /// positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, DistError> {
        Ok(Gamma {
            shape: DistError::check_positive("shape", shape)?,
            scale: DistError::check_positive("scale", scale)?,
        })
    }

    /// Creates a gamma distribution with the given mean and shape.
    ///
    /// # Errors
    ///
    /// Returns an error if either argument is not finite and strictly
    /// positive.
    pub fn from_mean_and_shape(mean: f64, shape: f64) -> Result<Self, DistError> {
        let mean = DistError::check_positive("mean", mean)?;
        let shape = DistError::check_positive("shape", shape)?;
        Gamma::new(shape, mean / shape)
    }

    /// The shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Marsaglia–Tsang sampling for shape >= 1.
    fn sample_shape_ge_one(shape: f64, rng: &mut SimRng) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = rng.standard_normal();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = rng.uniform_open01();
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Distribution for Gamma {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Marsaglia–Tsang; boost trick for shape < 1.
        if self.shape >= 1.0 {
            self.scale * Gamma::sample_shape_ge_one(self.shape, rng)
        } else {
            let g = Gamma::sample_shape_ge_one(self.shape + 1.0, rng);
            let u = rng.uniform_open01();
            self.scale * g * u.powf(1.0 / self.shape)
        }
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            reg_lower_gamma(self.shape, x / self.scale)
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = x / self.scale;
        ((self.shape - 1.0) * z.ln() - z - ln_gamma(self.shape)).exp() / self.scale
    }

    fn quantile(&self, p: f64) -> Result<f64, DistError> {
        let p = DistError::check_probability(p)?;
        if p == 0.0 {
            return Ok(0.0);
        }
        if p == 1.0 {
            return Ok(f64::INFINITY);
        }
        // Bisection on the CDF: robust, and quantiles are only used in
        // reporting paths, never in the simulation hot loop.
        let mut lo = 0.0;
        let mut hi = self.mean().max(1.0);
        while self.cdf(hi) < p {
            hi *= 2.0;
            if !hi.is_finite() {
                return Ok(f64::INFINITY);
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 * hi.max(1.0) {
                break;
            }
        }
        Ok(0.5 * (lo + hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructor_validation() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, -1.0).is_err());
        assert!(Gamma::from_mean_and_shape(0.0, 1.0).is_err());
    }

    #[test]
    fn shape_one_is_exponential() {
        let g = Gamma::new(1.0, 5.0).unwrap();
        for x in [0.5, 1.0, 5.0, 20.0] {
            let expected = 1.0 - (-x / 5.0_f64).exp();
            assert!((g.cdf(x) - expected).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn moments() {
        let g = Gamma::new(4.0, 2.0).unwrap();
        assert_eq!(g.mean(), 8.0);
        assert_eq!(g.variance(), 16.0);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // heavy sampling loop
    fn sample_mean_converges_small_shape() {
        let g = Gamma::new(0.5, 2.0).unwrap();
        let mut rng = SimRng::seed_from_u64(3);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| g.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "sample mean {mean}");
    }

    #[test]
    #[cfg_attr(miri, ignore)] // heavy sampling loop
    fn sample_mean_converges_large_shape() {
        let g = Gamma::from_mean_and_shape(8.0, 4.0).unwrap();
        let mut rng = SimRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| g.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 8.0).abs() < 0.08, "sample mean {mean}");
    }

    #[test]
    fn quantile_inverts_cdf() {
        let g = Gamma::new(2.5, 3.0).unwrap();
        for p in [0.05, 0.5, 0.95] {
            let x = g.quantile(p).unwrap();
            assert!((g.cdf(x) - p).abs() < 1e-8, "p={p}");
        }
    }

    proptest! {
        #[test]
        fn samples_positive(shape in 0.2..5.0_f64, scale in 0.1..100.0_f64, seed in any::<u64>()) {
            let g = Gamma::new(shape, scale).unwrap();
            let mut rng = SimRng::seed_from_u64(seed);
            for _ in 0..16 {
                prop_assert!(g.sample(&mut rng) >= 0.0);
            }
        }

        #[test]
        fn cdf_bounded(shape in 0.2..5.0_f64, scale in 0.1..100.0_f64, x in 0.0..1e4_f64) {
            let g = Gamma::new(shape, scale).unwrap();
            let c = g.cdf(x);
            prop_assert!((0.0..=1.0).contains(&c));
        }
    }
}
