//! Seeded, deterministic fault injection for resilience testing.
//!
//! This module only exists when the crate is built with the `chaos`
//! feature; without it the execution engine contains **no** injection code
//! at all (zero overhead, not merely disabled). With the feature on but no
//! configuration installed, every hook is a single relaxed atomic load.
//!
//! # Model
//!
//! A [`ChaosConfig`] describes fault probabilities; [`scoped`] installs it
//! process-wide and returns a guard that uninstalls it on drop. Every
//! injection decision is a **pure function of `(seed, site, index)`** — a
//! fresh [`SimRng`] stream per decision, no shared mutable state — so a
//! chaos run is exactly as reproducible as a clean run: the same seed
//! injects the same faults into the same work units regardless of worker
//! count or scheduling. Scopes serialise on an internal lock, so
//! concurrent tests cannot interleave configurations.
//!
//! Three fault classes match the three ways a real study dies:
//!
//! * **panics** in a work unit (a bug in a model's rate closure),
//! * **stalls** (a worker descheduled, an NFS hiccup while logging),
//! * **non-finite rewards** (numerical corruption in reward arithmetic).
//!
//! Panics surface through the engine's typed
//! [`WorkUnitPanic`](crate::parallel::WorkUnitPanic) payload; stalls only
//! delay (determinism suites prove they change no statistic); NaNs must be
//! caught by the runtime non-finite guards downstream.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

use crate::SimRng;

/// Stream-derivation constant for work-unit (panic/stall) decisions.
const SITE_WORK_UNIT: u64 = 0xC4A0_5C4A_0001;
/// Stream-derivation constant for reward-corruption decisions.
const SITE_REWARD: u64 = 0xC4A0_5C4A_0002;

/// A fault-injection plan: per-work-unit probabilities for panics and
/// stalls, a per-reward-value probability for NaN corruption, and an
/// optional targeted panic at one exact work-unit index (the deterministic
/// "kill at `k`" used by checkpoint/resume tests).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    seed: u64,
    panic_probability: f64,
    stall_probability: f64,
    stall: Duration,
    nan_probability: f64,
    panic_on_index: Option<u64>,
}

impl ChaosConfig {
    /// A plan that injects nothing; add faults with the builder methods.
    pub fn new(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            panic_probability: 0.0,
            stall_probability: 0.0,
            stall: Duration::from_millis(1),
            nan_probability: 0.0,
            panic_on_index: None,
        }
    }

    /// Probability that a work unit panics before running.
    #[must_use]
    pub fn with_panic_probability(mut self, p: f64) -> ChaosConfig {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.panic_probability = p;
        self
    }

    /// Probability that a work unit sleeps for `stall` before running.
    #[must_use]
    pub fn with_stall(mut self, p: f64, stall: Duration) -> ChaosConfig {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.stall_probability = p;
        self.stall = stall;
        self
    }

    /// Probability that a reward value is replaced with NaN.
    #[must_use]
    pub fn with_nan_probability(mut self, p: f64) -> ChaosConfig {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.nan_probability = p;
        self
    }

    /// Unconditionally panic the work unit with exactly this index — the
    /// deterministic kill switch for checkpoint/resume tests.
    #[must_use]
    pub fn with_panic_on_index(mut self, index: u64) -> ChaosConfig {
        self.panic_on_index = Some(index);
        self
    }

    /// One deterministic decision stream per `(seed, site, index)`.
    fn decisions(&self, site: u64, index: u64) -> SimRng {
        SimRng::seed_from_u64(self.seed ^ site).derive_stream(index)
    }
}

/// Fast-path flag: hooks bail on one relaxed load when no plan is active.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn config_slot() -> &'static Mutex<Option<ChaosConfig>> {
    static SLOT: OnceLock<Mutex<Option<ChaosConfig>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn scope_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Uninstalls the chaos plan when dropped. Holds the scope lock, so
/// concurrent [`scoped`] callers queue instead of clobbering each other's
/// plans — chaos tests may run in parallel.
pub struct ChaosGuard {
    _scope: MutexGuard<'static, ()>,
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::Relaxed);
        *config_slot().lock().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

/// Installs `config` as the process-wide chaos plan until the returned
/// guard drops. Scopes serialise: a second caller blocks until the first
/// guard is gone.
pub fn scoped(config: ChaosConfig) -> ChaosGuard {
    let scope = scope_lock().lock().unwrap_or_else(PoisonError::into_inner);
    *config_slot().lock().unwrap_or_else(PoisonError::into_inner) = Some(config);
    ACTIVE.store(true, Ordering::Relaxed);
    ChaosGuard { _scope: scope }
}

/// Whether a chaos plan is currently installed.
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

fn current() -> Option<ChaosConfig> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    config_slot().lock().unwrap_or_else(PoisonError::into_inner).clone()
}

/// Fault-injection hook at the work-unit boundary (called by the engine
/// before each replication task): may stall, then may panic, per the
/// installed plan's deterministic decision stream for `index`.
///
/// # Panics
///
/// Panics deliberately when the plan says so — that is the injected fault.
pub fn work_unit(index: u64) {
    let Some(config) = current() else { return };
    let mut decisions = config.decisions(SITE_WORK_UNIT, index);
    if config.stall_probability > 0.0 && decisions.bernoulli(config.stall_probability) {
        crate::telemetry::counter_inc(crate::telemetry::MetricId::ChaosWorkUnitInjections);
        std::thread::sleep(config.stall);
    }
    if config.panic_on_index == Some(index)
        || (config.panic_probability > 0.0 && decisions.bernoulli(config.panic_probability))
    {
        crate::telemetry::counter_inc(crate::telemetry::MetricId::ChaosWorkUnitInjections);
        panic!("chaos: injected panic at work unit {index}");
    }
}

/// Fault-injection hook for reward values: returns NaN instead of `value`
/// when the plan's decision stream for `(index, slot)` says so.
pub fn corrupt_reward(index: u64, slot: usize, value: f64) -> f64 {
    let Some(config) = current() else { return value };
    if config.nan_probability == 0.0 {
        return value;
    }
    let mut decisions = config.decisions(SITE_REWARD, index).derive_stream(slot as u64);
    if decisions.bernoulli(config.nan_probability) {
        crate::telemetry::counter_inc(crate::telemetry::MetricId::ChaosRewardInjections);
        f64::NAN
    } else {
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_hooks_are_transparent() {
        assert!(!is_active());
        work_unit(7); // must not panic
        assert_eq!(corrupt_reward(7, 0, 1.25), 1.25);
    }

    #[test]
    fn scoped_plan_installs_and_uninstalls() {
        {
            let _guard = scoped(ChaosConfig::new(1));
            assert!(is_active());
        }
        assert!(!is_active());
    }

    #[test]
    fn targeted_panic_fires_on_exactly_its_index() {
        let _guard = scoped(ChaosConfig::new(1).with_panic_on_index(17));
        work_unit(16);
        work_unit(18);
        let err = std::panic::catch_unwind(|| work_unit(17)).expect_err("index 17 must panic");
        let message = err.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("injected panic at work unit 17"), "{message}");
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_index() {
        let plan = ChaosConfig::new(42).with_nan_probability(0.5);
        let _guard = scoped(plan);
        let first: Vec<bool> = (0..64).map(|i| corrupt_reward(i, 0, 1.0).is_nan()).collect();
        let again: Vec<bool> = (0..64).map(|i| corrupt_reward(i, 0, 1.0).is_nan()).collect();
        assert_eq!(first, again, "same plan, same decisions");
        let hits = first.iter().filter(|&&nan| nan).count();
        assert!((10..=54).contains(&hits), "p=0.5 over 64 draws hit {hits} times");
    }

    #[test]
    fn distinct_seeds_give_distinct_fault_patterns() {
        let pattern = |seed: u64| -> Vec<bool> {
            let _guard = scoped(ChaosConfig::new(seed).with_nan_probability(0.5));
            (0..64).map(|i| corrupt_reward(i, 0, 1.0).is_nan()).collect()
        };
        assert_ne!(pattern(1), pattern(2));
    }

    #[test]
    fn stall_only_delays() {
        let _guard = scoped(ChaosConfig::new(3).with_stall(1.0, Duration::from_millis(1)));
        let before = std::time::Instant::now();
        work_unit(0);
        assert!(before.elapsed() >= Duration::from_millis(1));
    }
}
