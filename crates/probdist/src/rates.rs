//! Failure-rate arithmetic: conversions between MTBF (hours), annualized
//! failure rate (AFR, percent per year), and per-hour rates.
//!
//! The paper's Table 5 parameterises disk reliability both as "Disk MTBF
//! 100 000–3 000 000 hours" and as "Annualized Failure Rate 0.40 %–8.6 %",
//! and the figure labels use AFR while the simulation uses hourly rates.
//! These newtypes keep the three conventions from being mixed up
//! (C-NEWTYPE).

use serde::{Deserialize, Serialize};

use crate::DistError;

/// Number of hours in one year, used for AFR ↔ MTBF conversions (365 days,
/// the convention used by disk vendors and by the paper: an MTBF of
/// 100 000 h is quoted as AFR 8.76 %, and 300 000 h as 2.92 %).
pub const HOURS_PER_YEAR: f64 = 8760.0;

/// Mean time between failures, in hours.
///
/// # Example
///
/// ```
/// use probdist::{Mtbf, Afr};
///
/// # fn main() -> Result<(), probdist::DistError> {
/// let mtbf = Mtbf::new(300_000.0)?;
/// let afr = mtbf.to_afr();
/// assert!((afr.percent() - 2.92).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Mtbf(f64);

impl Mtbf {
    /// Creates an MTBF value from hours.
    ///
    /// # Errors
    ///
    /// Returns an error unless `hours` is finite and strictly positive.
    pub fn new(hours: f64) -> Result<Self, DistError> {
        Ok(Mtbf(DistError::check_positive("mtbf_hours", hours)?))
    }

    /// MTBF in hours.
    pub fn hours(&self) -> f64 {
        self.0
    }

    /// The corresponding constant failure rate (failures per hour).
    pub fn to_rate(&self) -> FailureRate {
        FailureRate(1.0 / self.0)
    }

    /// The corresponding annualized failure rate, using the vendor (and
    /// paper) convention `AFR = hours-per-year / MTBF`. This is the expected
    /// number of failures per unit-year, quoted as a percentage; it matches
    /// the figure labels of the paper exactly (100 000 h ↔ 8.76 %,
    /// 200 000 h ↔ 4.38 %, 300 000 h ↔ 2.92 %, 1 000 000 h ↔ 0.88 %).
    pub fn to_afr(&self) -> Afr {
        Afr(100.0 * HOURS_PER_YEAR / self.0)
    }
}

/// Annualized failure rate, stored in **percent** per year (e.g. `2.92`
/// means 2.92 % of the population fails per year).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Afr(f64);

impl Afr {
    /// Creates an AFR from a percentage in `(0, 100)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `percent` is not finite, not strictly positive,
    /// or at least 100 (a population cannot lose 100 % per year under an
    /// exponential model with finite rate).
    pub fn new(percent: f64) -> Result<Self, DistError> {
        let percent = DistError::check_positive("afr_percent", percent)?;
        if percent >= 100.0 {
            return Err(DistError::InvalidProbability { value: percent / 100.0 });
        }
        Ok(Afr(percent))
    }

    /// The AFR as a percentage per year.
    pub fn percent(&self) -> f64 {
        self.0
    }

    /// The AFR as a probability (fraction failing per year).
    pub fn fraction(&self) -> f64 {
        self.0 / 100.0
    }

    /// The corresponding MTBF: `MTBF = hours-per-year / (AFR / 100)`.
    pub fn to_mtbf(&self) -> Mtbf {
        Mtbf(HOURS_PER_YEAR / self.fraction())
    }

    /// The corresponding constant failure rate (failures per hour).
    pub fn to_rate(&self) -> FailureRate {
        self.to_mtbf().to_rate()
    }
}

/// A constant failure (or repair) rate in events per hour.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct FailureRate(f64);

impl FailureRate {
    /// Creates a rate from events per hour.
    ///
    /// # Errors
    ///
    /// Returns an error unless the rate is finite and strictly positive.
    pub fn new(per_hour: f64) -> Result<Self, DistError> {
        Ok(FailureRate(DistError::check_positive("rate_per_hour", per_hour)?))
    }

    /// Creates a rate expressed as `events` occurrences per `hours` hours —
    /// the form used in Table 5 ("1–2 per 720 hours").
    ///
    /// # Errors
    ///
    /// Returns an error unless both arguments are finite and strictly
    /// positive.
    pub fn per_hours(events: f64, hours: f64) -> Result<Self, DistError> {
        let events = DistError::check_positive("events", events)?;
        let hours = DistError::check_positive("hours", hours)?;
        FailureRate::new(events / hours)
    }

    /// The rate in events per hour.
    pub fn per_hour(&self) -> f64 {
        self.0
    }

    /// The mean time between events, in hours.
    pub fn mtbf(&self) -> Mtbf {
        Mtbf(1.0 / self.0)
    }

    /// Expected number of events over `hours` hours.
    pub fn expected_events(&self, hours: f64) -> f64 {
        self.0 * hours
    }
}

impl From<Mtbf> for FailureRate {
    fn from(m: Mtbf) -> Self {
        m.to_rate()
    }
}

impl From<Afr> for FailureRate {
    fn from(a: Afr) -> Self {
        a.to_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtbf_300k_hours_is_about_2_92_percent_afr() {
        // This is the paper's headline disk parameter: MTBF = 300 000 h
        // "or annualized failure rate (AFR) = 2.92 %".
        let afr = Mtbf::new(300_000.0).unwrap().to_afr();
        assert!((afr.percent() - 2.92).abs() < 0.02, "afr = {}", afr.percent());
    }

    #[test]
    fn afr_roundtrips_through_mtbf() {
        for pct in [0.4, 0.88, 2.92, 4.38, 8.6, 8.76] {
            let afr = Afr::new(pct).unwrap();
            let back = afr.to_mtbf().to_afr();
            assert!((back.percent() - pct).abs() < 1e-9, "pct {pct}");
        }
    }

    #[test]
    fn table5_mtbf_range_maps_into_afr_range() {
        // Table 5: MTBF 100 000–3 000 000 h corresponds to AFR 8.76 %–0.29 %;
        // the figure labels quote 8.76 % for the pessimistic end.
        let high = Mtbf::new(100_000.0).unwrap().to_afr().percent();
        let low = Mtbf::new(3_000_000.0).unwrap().to_afr().percent();
        assert!((high - 8.76).abs() < 1e-9, "high {high}");
        assert!((low - 0.292).abs() < 1e-9, "low {low}");
    }

    #[test]
    fn figure_label_afrs_match_round_mtbfs() {
        // The tuples in Figures 2 and 3 use AFRs 8.76, 4.38, 2.92, 0.88 —
        // i.e. MTBFs of 100k, 200k, 300k and ~1M hours.
        for (mtbf, afr) in
            [(100_000.0, 8.76), (200_000.0, 4.38), (300_000.0, 2.92), (1_000_000.0, 0.876)]
        {
            let got = Mtbf::new(mtbf).unwrap().to_afr().percent();
            assert!((got - afr).abs() < 0.005, "mtbf {mtbf}: got {got}, want {afr}");
        }
    }

    #[test]
    fn failure_rate_per_hours_matches_table5_hardware_rate() {
        // "Hardware failure rate 1-2 per 720 hours"
        let r = FailureRate::per_hours(1.5, 720.0).unwrap();
        assert!((r.per_hour() - 1.5 / 720.0).abs() < 1e-15);
        assert!((r.mtbf().hours() - 480.0).abs() < 1e-9);
        assert!((r.expected_events(720.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn constructors_reject_bad_input() {
        assert!(Mtbf::new(0.0).is_err());
        assert!(Afr::new(0.0).is_err());
        assert!(Afr::new(100.0).is_err());
        assert!(Afr::new(150.0).is_err());
        assert!(FailureRate::new(-1.0).is_err());
        assert!(FailureRate::per_hours(1.0, 0.0).is_err());
    }

    #[test]
    fn conversions_via_from_impls() {
        let r1: FailureRate = Mtbf::new(1000.0).unwrap().into();
        assert!((r1.per_hour() - 1e-3).abs() < 1e-15);
        let r2: FailureRate = Afr::new(50.0).unwrap().into();
        assert!(r2.per_hour() > 0.0);
    }
}
