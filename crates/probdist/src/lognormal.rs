use serde::{Deserialize, Serialize};

use crate::special::{std_normal_cdf, std_normal_quantile};
use crate::{DistError, Distribution, SimRng};

/// Log-normal distribution parameterised by the mean `μ` and standard
/// deviation `σ` of the underlying normal.
///
/// Repair-time data from large installations is frequently heavy-tailed;
/// the log-normal is provided as an alternative repair-time model for the
/// ablation study comparing deterministic, exponential, and heavy-tailed
/// repairs (DESIGN.md §6).
///
/// # Example
///
/// ```
/// use probdist::{Distribution, LogNormal};
///
/// # fn main() -> Result<(), probdist::DistError> {
/// let repair = LogNormal::from_mean_and_cv(4.0, 1.0)?;
/// assert!((repair.mean() - 4.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution with normal-scale parameters `mu`
    /// and `sigma`.
    ///
    /// # Errors
    ///
    /// Returns an error if `mu` is not finite or `sigma` is not finite and
    /// strictly positive.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistError> {
        if !mu.is_finite() {
            return Err(DistError::NonFiniteParameter { name: "mu", value: mu });
        }
        Ok(LogNormal { mu, sigma: DistError::check_positive("sigma", sigma)? })
    }

    /// Creates a log-normal distribution with the given mean and coefficient
    /// of variation (`cv = std_dev / mean`).
    ///
    /// # Errors
    ///
    /// Returns an error if `mean` or `cv` is not finite and strictly
    /// positive.
    pub fn from_mean_and_cv(mean: f64, cv: f64) -> Result<Self, DistError> {
        let mean = DistError::check_positive("mean", mean)?;
        let cv = DistError::check_positive("cv", cv)?;
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        LogNormal::new(mu, sigma2.sqrt())
    }

    /// The location parameter `μ` of the underlying normal.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The scale parameter `σ` of the underlying normal.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * rng.standard_normal()).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        ((s2).exp_m1()) * (2.0 * self.mu + s2).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            std_normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn quantile(&self, p: f64) -> Result<f64, DistError> {
        let p = DistError::check_probability(p)?;
        if p == 0.0 {
            return Ok(0.0);
        }
        if p == 1.0 {
            return Ok(f64::INFINITY);
        }
        Ok((self.mu + self.sigma * std_normal_quantile(p)).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructor_validation() {
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::from_mean_and_cv(0.0, 1.0).is_err());
        assert!(LogNormal::from_mean_and_cv(4.0, 0.0).is_err());
    }

    #[test]
    fn from_mean_and_cv_recovers_moments() {
        let d = LogNormal::from_mean_and_cv(10.0, 0.5).unwrap();
        assert!((d.mean() - 10.0).abs() < 1e-9);
        assert!((d.std_dev() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_median_at_exp_mu() {
        let d = LogNormal::new(1.0, 0.7).unwrap();
        let median = 1.0_f64.exp();
        assert!((d.cdf(median) - 0.5).abs() < 1e-6);
        assert!((d.quantile(0.5).unwrap() - median).abs() / median < 1e-6);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // heavy sampling loop
    fn sample_mean_converges() {
        let d = LogNormal::from_mean_and_cv(4.0, 0.8).unwrap();
        let mut rng = SimRng::seed_from_u64(13);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "sample mean {mean}");
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = LogNormal::new(0.5, 1.2).unwrap();
        for p in [0.05, 0.25, 0.5, 0.75, 0.95] {
            let x = d.quantile(p).unwrap();
            assert!((d.cdf(x) - p).abs() < 1e-5, "p={p}");
        }
    }

    proptest! {
        #[test]
        fn samples_positive(mu in -2.0..5.0_f64, sigma in 0.1..2.0_f64, seed in any::<u64>()) {
            let d = LogNormal::new(mu, sigma).unwrap();
            let mut rng = SimRng::seed_from_u64(seed);
            for _ in 0..16 {
                prop_assert!(d.sample(&mut rng) > 0.0);
            }
        }

        #[test]
        fn cdf_monotone(mu in -2.0..5.0_f64, sigma in 0.1..2.0_f64, a in 0.0..100.0_f64, b in 0.0..100.0_f64) {
            let d = LogNormal::new(mu, sigma).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(d.cdf(lo) <= d.cdf(hi) + 1e-12);
        }
    }
}
