//! Reproductions of Tables 1–5: the log-analysis tables (from the synthetic
//! ABE failure log) and the model-parameter table.

use faultlog::analysis::{
    DiskReplacementAnalysis, JobAnalysis, MountFailureAnalysis, OutageAnalysis,
};
use faultlog::generator::{LogGenConfig, LogGenerator};
use faultlog::FailureLog;
use probdist::fitting::WeibullFit;

use crate::params::{ModelParameters, ParameterTable};
use crate::report::TextTable;
use crate::CfsError;

/// Generates the calibrated synthetic ABE failure log used by Tables 1–4.
///
/// # Errors
///
/// Propagates generator errors.
pub fn abe_failure_log(seed: u64) -> Result<FailureLog, CfsError> {
    Ok(LogGenerator::new(LogGenConfig::abe_calibrated()).generate(seed)?)
}

/// Result of the Table 1 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Result {
    /// The outage analysis over the synthetic log.
    pub analysis: OutageAnalysis,
    /// SAN availability over the window (paper: 0.97–0.98).
    pub availability: f64,
}

/// Reproduces Table 1: user-visible Lustre-FS outages and the availability
/// they imply.
///
/// # Errors
///
/// Propagates log-generation and analysis errors.
pub fn table1_outages(seed: u64) -> Result<Table1Result, CfsError> {
    let log = abe_failure_log(seed)?;
    let analysis = OutageAnalysis::from_log(&log)?;
    let availability = analysis.availability();
    Ok(Table1Result { analysis, availability })
}

impl Table1Result {
    /// Renders the table in the paper's format.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table 1. User notification of outage of the Lustre-FS (synthetic log)",
            &["Cause of Failure", "Start time", "End time", "Hours"],
        );
        for row in self.analysis.rows() {
            t.add_row(&[
                row.cause.clone(),
                row.start.to_string(),
                row.end.to_string(),
                format!("{:.2}", row.hours),
            ]);
        }
        t.add_row(&[
            "SAN availability".into(),
            String::new(),
            String::new(),
            format!("{:.4}", self.availability),
        ]);
        t
    }
}

/// Result of the Table 2 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Result {
    /// Per-day mount-failure counts.
    pub analysis: MountFailureAnalysis,
}

/// Reproduces Table 2: Lustre mount failures reported by compute nodes,
/// aggregated per day.
///
/// # Errors
///
/// Propagates log-generation and analysis errors.
pub fn table2_mount_failures(seed: u64) -> Result<Table2Result, CfsError> {
    let log = abe_failure_log(seed)?;
    Ok(Table2Result { analysis: MountFailureAnalysis::from_log(&log)? })
}

impl Table2Result {
    /// Renders the table in the paper's format.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table 2. Lustre mount failure notification by compute nodes (synthetic log)",
            &["Date", "Nodes reporting"],
        );
        for day in self.analysis.days() {
            t.add_row(&[day.date.to_string(), day.nodes.to_string()]);
        }
        t
    }
}

/// Result of the Table 3 reproduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Result {
    /// Job statistics over the synthetic log.
    pub analysis: JobAnalysis,
}

/// Reproduces Table 3: job execution statistics (total jobs, transient
/// network failures, other failures).
///
/// # Errors
///
/// Propagates log-generation and analysis errors.
pub fn table3_jobs(seed: u64) -> Result<Table3Result, CfsError> {
    let log = abe_failure_log(seed)?;
    Ok(Table3Result { analysis: JobAnalysis::from_log(&log)? })
}

impl Table3Result {
    /// Renders the table in the paper's format.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table 3. Job execution statistics for the ABE cluster (synthetic log)",
            &["Measure", "Value"],
        );
        let a = &self.analysis;
        t.add_row(&["Total jobs submitted".into(), a.total_jobs.to_string()]);
        t.add_row(&[
            "Failures due to transient network errors".into(),
            a.transient_failures.to_string(),
        ]);
        t.add_row(&[
            "Failures due to other/file system errors".into(),
            a.other_failures.to_string(),
        ]);
        t.add_row(&[
            "Transient : other failure ratio".into(),
            format!("{:.2}", a.transient_to_other_ratio()),
        ]);
        t.add_row(&["Job submissions per hour".into(), format!("{:.1}", a.jobs_per_hour())]);
        t
    }
}

/// Result of the Table 4 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Result {
    /// Weekly replacement counts and totals.
    pub analysis: DiskReplacementAnalysis,
    /// Weibull survival fit of the disk lifetimes (paper: β ≈ 0.70,
    /// σ ≈ 0.19).
    pub weibull: WeibullFit,
    /// Mean replacements per week (paper: 0–2).
    pub mean_per_week: f64,
}

/// Reproduces Table 4: disk failure/replacement log and its Weibull survival
/// analysis.
///
/// # Errors
///
/// Propagates log-generation, analysis, and fitting errors.
pub fn table4_disk_failures(seed: u64) -> Result<Table4Result, CfsError> {
    let log = abe_failure_log(seed)?;
    let disks = LogGenConfig::abe_calibrated().disks;
    let analysis = DiskReplacementAnalysis::from_log(&log, disks)?;
    let weibull = analysis.weibull_fit(&log)?;
    let mean_per_week = analysis.mean_per_week();
    Ok(Table4Result { analysis, weibull, mean_per_week })
}

impl Table4Result {
    /// Renders the table in the paper's format.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table 4. Disk failure log and Weibull survival analysis (synthetic log)",
            &["Measure", "Value"],
        );
        t.add_row(&[
            "Total disk replacements".into(),
            self.analysis.total_replacements().to_string(),
        ]);
        t.add_row(&["Mean replacements per week".into(), format!("{:.2}", self.mean_per_week)]);
        t.add_row(&["Weibull shape (beta)".into(), format!("{:.3}", self.weibull.shape)]);
        t.add_row(&["Shape standard error".into(), format!("{:.3}", self.weibull.shape_std_error)]);
        t.add_row(&["Observed failures".into(), self.weibull.failures.to_string()]);
        t.add_row(&["Censored observations".into(), self.weibull.censored.to_string()]);
        t
    }
}

/// Reproduces Table 5: the simulation model parameters with their ranges and
/// provenance.
pub fn table5_parameters(params: &ModelParameters) -> TextTable {
    let table = ParameterTable::new(params);
    let mut t = TextTable::new(
        "Table 5. ABE cluster's simulation model parameters",
        &["Model parameter", "Values (range)", "ABE value", "Source"],
    );
    for row in table.rows() {
        t.add_row(&[
            row.name.to_string(),
            row.range.to_string(),
            row.abe_value.clone(),
            row.source.label().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_availability_is_in_band_and_renders() {
        let r = table1_outages(1).unwrap();
        assert!(r.availability > 0.94 && r.availability < 1.0);
        let text = r.to_table().render();
        assert!(text.contains("I/O hardware") || text.contains("File system"));
        assert!(text.contains("SAN availability"));
    }

    #[test]
    fn table2_has_storm_days() {
        let r = table2_mount_failures(2).unwrap();
        assert!(!r.analysis.days().is_empty());
        assert!(r.to_table().len() >= r.analysis.days().len());
    }

    #[test]
    fn table3_ratio_matches_paper_shape() {
        let r = table3_jobs(3).unwrap();
        assert!(r.analysis.total_jobs > 40_000);
        let ratio = r.analysis.transient_to_other_ratio();
        assert!(ratio > 3.0 && ratio < 12.0);
        assert!(r.to_table().render().contains("Total jobs submitted"));
    }

    #[test]
    fn table4_recovers_infant_mortality() {
        let r = table4_disk_failures(4).unwrap();
        // Small sample (≈ a dozen failures): accept a generous band around
        // the paper's 0.696 +/- 0.19.
        assert!(r.weibull.shape > 0.3 && r.weibull.shape < 1.3, "shape {}", r.weibull.shape);
        assert!(r.mean_per_week > 0.1 && r.mean_per_week < 3.5);
        assert!(r.to_table().render().contains("Weibull shape"));
    }

    #[test]
    fn table5_lists_all_parameters() {
        let t = table5_parameters(&ModelParameters::abe());
        assert_eq!(t.len(), 14);
        let text = t.render();
        assert!(text.contains("Disk MTBF"));
        assert!(text.contains("OSS Units"));
    }
}
