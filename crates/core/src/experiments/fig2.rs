//! Figure 2: availability of the storage hardware (RAID6 tiers and their
//! controllers, in isolation from the rest of the SAN) as the file system is
//! scaled from ABE's 96 TB to the 12 PB of a petascale machine.
//!
//! Each series is labelled with the tuple the paper uses:
//! `(Weibull shape β, AFR %, RAID configuration, disk replacement hours)`.

use serde::{Deserialize, Serialize};

use probdist::stats::ConfidenceInterval;
use raidsim::scaling::{config_from_plan, figure2_capacity_points_tb, plan_for_capacity};
use raidsim::{DiskModel, RaidGeometry, StorageConfig, StorageSimulator};

use crate::report::{fmt_ci, TextTable};
use crate::run::RunSpec;
use crate::CfsError;

/// One storage-reliability configuration (one curve of Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig2Config {
    /// Weibull shape parameter of disk lifetimes.
    pub weibull_shape: f64,
    /// Disk annualized failure rate, percent.
    pub afr_percent: f64,
    /// RAID geometry of every tier.
    pub geometry: RaidGeometry,
    /// Disk replacement time, hours.
    pub replacement_hours: f64,
}

impl Fig2Config {
    /// The tuple label used in the paper's legend, e.g. `(0.7,2.92,8+2,4)`.
    pub fn label(&self) -> String {
        format!(
            "({},{},{},{})",
            self.weibull_shape,
            self.afr_percent,
            self.geometry.label(),
            self.replacement_hours
        )
    }

    /// The configurations plotted in the paper's Figure 2, plus the (8+3)
    /// Blue Waters variant discussed in the text.
    pub fn paper_series() -> Vec<Fig2Config> {
        vec![
            Fig2Config {
                weibull_shape: 0.6,
                afr_percent: 8.76,
                geometry: RaidGeometry::raid6_8p2(),
                replacement_hours: 4.0,
            },
            Fig2Config {
                weibull_shape: 0.6,
                afr_percent: 4.38,
                geometry: RaidGeometry::raid6_8p2(),
                replacement_hours: 4.0,
            },
            Fig2Config {
                weibull_shape: 0.7,
                afr_percent: 8.76,
                geometry: RaidGeometry::raid6_8p2(),
                replacement_hours: 4.0,
            },
            // The ABE baseline.
            Fig2Config {
                weibull_shape: 0.7,
                afr_percent: 2.92,
                geometry: RaidGeometry::raid6_8p2(),
                replacement_hours: 4.0,
            },
            // The Blue Waters (8+3) design point under pessimistic disks.
            Fig2Config {
                weibull_shape: 0.6,
                afr_percent: 8.76,
                geometry: RaidGeometry::raid_8p3(),
                replacement_hours: 4.0,
            },
        ]
    }

    /// Builds the storage configuration for a given usable capacity.
    ///
    /// # Errors
    ///
    /// Propagates planning/validation errors.
    pub fn storage_for_capacity(&self, capacity_tb: f64) -> Result<StorageConfig, CfsError> {
        let disk = DiskModel {
            weibull_shape: self.weibull_shape,
            mtbf_hours: probdist::Afr::new(self.afr_percent)?.to_mtbf().hours(),
            capacity_gb: 250.0,
        };
        let template = StorageConfig {
            geometry: self.geometry,
            disk,
            replacement_hours: self.replacement_hours,
            rebuild_hours: 6.0,
            ..StorageConfig::abe_scratch()
        };
        let plan = plan_for_capacity(capacity_tb, disk.capacity_gb, self.geometry)?;
        Ok(config_from_plan(&plan, &template)?)
    }
}

/// One point of a Figure 2 curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Point {
    /// Usable capacity in terabytes.
    pub capacity_tb: f64,
    /// Total number of disks at this scale.
    pub total_disks: u32,
    /// Storage availability with its confidence interval.
    pub availability: ConfidenceInterval,
    /// Probability that at least one unrecoverable tier failure occurs
    /// during the mission.
    pub prob_any_data_loss: f64,
}

/// One curve of Figure 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Series {
    /// The configuration tuple label.
    pub label: String,
    /// The configuration.
    pub config: Fig2Config,
    /// Points in increasing capacity order.
    pub points: Vec<Fig2Point>,
}

/// The full Figure 2 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Result {
    /// One series per configuration tuple.
    pub series: Vec<Fig2Series>,
    /// Mission length, hours.
    pub horizon_hours: f64,
    /// Replications actually executed per point (the maximum across
    /// points, when an adaptive precision target lets points stop early).
    pub replications: usize,
}

impl Fig2Result {
    /// Renders the figure as a table (capacity × configuration →
    /// availability).
    pub fn to_table(&self) -> TextTable {
        let mut headers: Vec<String> = vec!["TB".to_string(), "Disks".to_string()];
        headers.extend(self.series.iter().map(|s| s.label.clone()));
        let header_refs: Vec<&str> = headers.iter().map(std::string::String::as_str).collect();
        let mut t = TextTable::new(
            "Figure 2. Availability of storage with respect to disk failures",
            &header_refs,
        );
        if let Some(first) = self.series.first() {
            for (i, point) in first.points.iter().enumerate() {
                let mut row =
                    vec![format!("{:.0}", point.capacity_tb), point.total_disks.to_string()];
                for series in &self.series {
                    row.push(fmt_ci(&series.points[i].availability, 5));
                }
                t.add_row(&row);
            }
        }
        t
    }
}

/// Runs the Figure 2 experiment: storage availability versus capacity for
/// every configuration tuple, under the given run spec.
///
/// `capacities_tb` defaults to the paper's 96 TB → 12 PB doubling sweep when
/// empty.
///
/// # Errors
///
/// Propagates configuration and simulation errors.
pub fn figure2_storage_availability_with(
    capacities_tb: &[f64],
    spec: &RunSpec,
) -> Result<Fig2Result, CfsError> {
    spec.validate()?;
    let capacities: Vec<f64> = if capacities_tb.is_empty() {
        figure2_capacity_points_tb()
    } else {
        capacities_tb.to_vec()
    };

    let mut series = Vec::new();
    let mut replications_used = 0usize;
    for (series_idx, config) in Fig2Config::paper_series().into_iter().enumerate() {
        let mut points = Vec::new();
        for (cap_idx, &capacity_tb) in capacities.iter().enumerate() {
            let storage = config.storage_for_capacity(capacity_tb)?;
            let total_disks = storage.total_disks();
            let simulator = StorageSimulator::new(storage)?;
            let summary = crate::experiments::run_storage(
                &simulator,
                spec,
                spec.base_seed().wrapping_add((series_idx * 1000 + cap_idx) as u64),
            )?;
            replications_used = replications_used.max(summary.replications);
            points.push(Fig2Point {
                capacity_tb,
                total_disks,
                availability: summary.availability,
                prob_any_data_loss: summary.prob_any_data_loss,
            });
        }
        series.push(Fig2Series { label: config.label(), config, points });
    }
    Ok(Fig2Result { series, horizon_hours: spec.horizon_hours(), replications: replications_used })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_paper_legend() {
        let series = Fig2Config::paper_series();
        let labels: Vec<String> = series.iter().map(super::Fig2Config::label).collect();
        assert!(labels.contains(&"(0.7,2.92,8+2,4)".to_string()));
        assert!(labels.contains(&"(0.6,8.76,8+2,4)".to_string()));
        assert!(labels.iter().any(|l| l.contains("8+3")));
    }

    #[test]
    fn storage_for_capacity_scales_disk_count() {
        let abe = Fig2Config::paper_series()[3];
        let small = abe.storage_for_capacity(96.0).unwrap();
        let large = abe.storage_for_capacity(768.0).unwrap();
        assert_eq!(small.total_disks(), 480);
        assert_eq!(large.total_disks(), 3840);
        assert!((small.disk.mtbf_hours - 300_000.0).abs() < 1.0);
    }

    #[test]
    fn small_sweep_preserves_the_figure_shape() {
        // Small replication count and two capacities keep the test quick
        // while still checking the headline observations: ABE-scale
        // availability ≈ 1 for every configuration, and the ABE disk
        // configuration stays ≥ the pessimistic one at the larger scale.
        let spec = RunSpec::new().with_horizon_hours(4380.0).with_replications(8).with_base_seed(3);
        let result = figure2_storage_availability_with(&[96.0, 1536.0], &spec).unwrap();
        assert_eq!(result.series.len(), 5);
        for series in &result.series {
            assert_eq!(series.points.len(), 2);
            assert!(series.points[0].availability.point > 0.999, "{}", series.label);
        }
        let abe_cfg = &result.series[3];
        let pessimistic = &result.series[0];
        assert!(
            abe_cfg.points[1].availability.point >= pessimistic.points[1].availability.point - 1e-6
        );
        let table = result.to_table();
        assert_eq!(table.len(), 2);
        assert!(table.render().contains("(0.7,2.92,8+2,4)"));
    }
}
