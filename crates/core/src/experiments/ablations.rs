//! Ablation studies for the design choices called out in DESIGN.md §6:
//! RAID parity width, spare-OSS standby, correlated-failure probability, and
//! disk replacement/repair time.

use serde::{Deserialize, Serialize};

use probdist::stats::ConfidenceInterval;
use raidsim::scaling::{config_from_plan, plan_for_capacity};
use raidsim::{DiskModel, RaidGeometry, StorageConfig, StorageSimulator};

use crate::analysis::evaluate;
use crate::config::ClusterConfig;
use crate::report::{fmt_ci, TextTable};
use crate::run::RunSpec;
use crate::CfsError;

/// One configuration of an ablation sweep and the availability it achieves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationPoint {
    /// Description of the configuration (e.g. "8+3", "p = 0.03").
    pub label: String,
    /// The availability measure the ablation tracks (storage availability
    /// for storage-side ablations, CFS availability for cluster-side ones).
    pub availability: ConfidenceInterval,
    /// A secondary measure where meaningful (data-loss events per mission,
    /// cluster utility, …), with its label.
    pub secondary: Option<(String, f64)>,
}

/// A named ablation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationResult {
    /// Name of the ablation.
    pub name: String,
    /// The swept configurations.
    pub points: Vec<AblationPoint>,
    /// Replications actually executed (the maximum across swept
    /// configurations, when an adaptive precision target lets points stop
    /// early).
    pub replications: usize,
}

impl AblationResult {
    /// Renders the ablation as a table.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            format!("Ablation: {}", self.name),
            &["Configuration", "Availability", "Secondary measure"],
        );
        for p in &self.points {
            let secondary = p
                .secondary
                .as_ref()
                .map(|(label, value)| format!("{label} = {value:.4}"))
                .unwrap_or_default();
            t.add_row(&[p.label.clone(), fmt_ci(&p.availability, 5), secondary]);
        }
        t
    }
}

/// Petascale storage configuration used by the storage-side ablations:
/// pessimistic disks (Weibull 0.6, AFR 8.76 %) at 12 PB.
fn pessimistic_petascale_storage(
    geometry: RaidGeometry,
    replacement_hours: f64,
) -> Result<StorageConfig, CfsError> {
    let disk = DiskModel { weibull_shape: 0.6, mtbf_hours: 100_000.0, capacity_gb: 250.0 };
    let template =
        StorageConfig { geometry, disk, replacement_hours, ..StorageConfig::abe_scratch() };
    let plan = plan_for_capacity(12_288.0, disk.capacity_gb, geometry)?;
    Ok(config_from_plan(&plan, &template)?)
}

/// Ablation: (8+1) vs (8+2) vs (8+3) parity at petascale with pessimistic
/// disks — the Blue Waters design argument.
///
/// # Errors
///
/// Propagates configuration and simulation errors.
pub fn ablation_raid_parity_with(spec: &RunSpec) -> Result<AblationResult, CfsError> {
    spec.validate()?;
    let mut points = Vec::new();
    let mut replications = 0usize;
    for geometry in [RaidGeometry::raid5_8p1(), RaidGeometry::raid6_8p2(), RaidGeometry::raid_8p3()]
    {
        let storage = pessimistic_petascale_storage(geometry, 4.0)?;
        let simulator = StorageSimulator::new(storage)?;
        let summary = crate::experiments::run_storage(&simulator, spec, spec.base_seed())?;
        replications = replications.max(summary.replications);
        points.push(AblationPoint {
            label: geometry.label(),
            availability: summary.availability,
            secondary: Some(("data-loss events".into(), summary.data_loss_events.point)),
        });
    }
    Ok(AblationResult {
        name: "RAID parity width at petascale (0.6, 8.76% AFR)".into(),
        points,
        replications,
    })
}

/// Ablation: disk replacement time (1 h, 4 h, 12 h) at petascale with
/// pessimistic disks — the Table 5 "average time to replace disks" sweep.
///
/// # Errors
///
/// Propagates configuration and simulation errors.
pub fn ablation_repair_time_with(spec: &RunSpec) -> Result<AblationResult, CfsError> {
    spec.validate()?;
    let mut points = Vec::new();
    let mut replications = 0usize;
    for hours in [1.0, 4.0, 12.0] {
        let storage = pessimistic_petascale_storage(RaidGeometry::raid6_8p2(), hours)?;
        let simulator = StorageSimulator::new(storage)?;
        let summary = crate::experiments::run_storage(&simulator, spec, spec.base_seed())?;
        replications = replications.max(summary.replications);
        points.push(AblationPoint {
            label: format!("replacement = {hours} h"),
            availability: summary.availability,
            secondary: Some(("data-loss events".into(), summary.data_loss_events.point)),
        });
    }
    Ok(AblationResult {
        name: "Disk replacement time at petascale (8+2, 0.6, 8.76% AFR)".into(),
        points,
        replications,
    })
}

/// Ablation: standby spare OSS on/off at petascale (the Section 5.2
/// mitigation).
///
/// # Errors
///
/// Propagates configuration and simulation errors.
pub fn ablation_spare_oss_with(spec: &RunSpec) -> Result<AblationResult, CfsError> {
    spec.validate()?;
    let base = ClusterConfig::petascale();
    let spared = base.clone().with_spare_oss();
    let mut points = Vec::new();
    let mut replications = 0usize;
    for config in [base, spared] {
        let result = evaluate(&config, spec)?;
        replications = replications.max(result.replications);
        points.push(AblationPoint {
            label: config.name.clone(),
            availability: result.cfs_availability,
            secondary: Some(("cluster utility".into(), result.cluster_utility.point)),
        });
    }
    Ok(AblationResult { name: "Standby spare OSS at petascale".into(), points, replications })
}

/// Ablation: correlated-failure propagation probability `p` (Section 4.3)
/// at petascale.
///
/// # Errors
///
/// Propagates configuration and simulation errors.
pub fn ablation_correlation_with(spec: &RunSpec) -> Result<AblationResult, CfsError> {
    spec.validate()?;
    let mut points = Vec::new();
    let mut replications = 0usize;
    for p in [0.0, 0.0075, 0.03] {
        let mut config = ClusterConfig::petascale();
        config.params.correlation_probability = p;
        config.name = format!("p = {p}");
        let result = evaluate(&config, spec)?;
        replications = replications.max(result.replications);
        points.push(AblationPoint {
            label: config.name.clone(),
            availability: result.cfs_availability,
            secondary: Some(("mean OSS pairs down".into(), result.mean_oss_pairs_down.point)),
        });
    }
    Ok(AblationResult {
        name: "Correlated-failure probability at petascale".into(),
        points,
        replications,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(replications: usize, seed: u64) -> RunSpec {
        RunSpec::new()
            .with_horizon_hours(4380.0)
            .with_replications(replications)
            .with_base_seed(seed)
    }

    #[test]
    fn raid_parity_ablation_orders_geometries() {
        let result = ablation_raid_parity_with(&spec(8, 3)).unwrap();
        assert_eq!(result.points.len(), 3);
        let avail: Vec<f64> = result.points.iter().map(|p| p.availability.point).collect();
        // 8+1 <= 8+2 <= 8+3 (allowing tiny Monte-Carlo noise).
        assert!(avail[0] <= avail[1] + 1e-6);
        assert!(avail[1] <= avail[2] + 1e-6);
        assert!(result.to_table().render().contains("8+3"));
    }

    #[test]
    fn repair_time_ablation_prefers_fast_replacement() {
        let result = ablation_repair_time_with(&spec(8, 5)).unwrap();
        let one_hour = result.points[0].availability.point;
        let twelve_hours = result.points[2].availability.point;
        assert!(one_hour >= twelve_hours - 1e-6);
    }

    #[test]
    fn correlation_ablation_shows_monotone_damage() {
        let result = ablation_correlation_with(&spec(6, 7)).unwrap();
        let none = result.points[0].availability.point;
        let high = result.points[2].availability.point;
        assert!(none > high, "correlation should reduce availability: {none} vs {high}");
    }

    #[test]
    fn spare_oss_ablation_reports_both_configurations() {
        let result = ablation_spare_oss_with(&spec(6, 9)).unwrap();
        assert_eq!(result.points.len(), 2);
        assert!(result.points[1].availability.point >= result.points[0].availability.point - 0.01);
        assert!(result.to_table().render().contains("spare"));
    }
}
