//! Experiment drivers: one per table and figure of the paper's evaluation,
//! plus the ablations called out in DESIGN.md.
//!
//! Every driver takes a [`crate::run::RunSpec`], returns a structured
//! result, and can render itself as a [`crate::report::TextTable`] whose
//! rows mirror the paper's presentation. These are the functions the
//! [`crate::scenario::Scenario`] implementations wrap; run them through a
//! [`crate::study::Study`] unless you need the raw result structs.
//! Monte-Carlo drivers honour the spec's replication policy — a fixed
//! count, or precision-targeted batches when
//! [`crate::run::RunSpec::with_precision_target`] is set — and record the
//! replication count actually used in their results.
//!
//! | Paper artefact | Driver |
//! |---|---|
//! | Table 1 (outages / SAN availability) | [`tables::table1_outages`] |
//! | Table 2 (mount failures per day) | [`tables::table2_mount_failures`] |
//! | Table 3 (job statistics) | [`tables::table3_jobs`] |
//! | Table 4 (disk failures, Weibull fit) | [`tables::table4_disk_failures`] |
//! | Table 5 (model parameters) | [`tables::table5_parameters`] |
//! | Figure 2 (storage availability vs scale) | [`fig2::figure2_storage_availability_with`] |
//! | Figure 3 (disk replacements per week) | [`fig3::figure3_disk_replacements_with`] |
//! | Figure 4 (CFS availability and CU vs scale) | [`fig4::figure4_cfs_availability_with`] |
//! | Ablations (§6 of DESIGN.md) | [`ablations`] |

pub mod ablations;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod tables;

pub use ablations::{
    ablation_correlation_with, ablation_raid_parity_with, ablation_repair_time_with,
    ablation_spare_oss_with, AblationPoint, AblationResult,
};
pub use fig2::{figure2_storage_availability_with, Fig2Config, Fig2Point, Fig2Result, Fig2Series};
pub use fig3::{figure3_disk_replacements_with, Fig3Point, Fig3Result, Fig3Series};
pub use fig4::{figure4_cfs_availability_with, Fig4Point, Fig4Result};
pub use tables::{
    table1_outages, table2_mount_failures, table3_jobs, table4_disk_failures, table5_parameters,
    Table1Result, Table2Result, Table3Result, Table4Result,
};

use crate::run::RunSpec;
use crate::CfsError;
use raidsim::{StorageSimulator, StorageSummary};

/// Runs one storage Monte-Carlo point under the spec's replication policy:
/// a fixed `run_with` block, or adaptive `run_until` batches when the spec
/// carries a precision target. Every storage-side driver funnels through
/// here so fixed and adaptive execution stay interchangeable.
pub(crate) fn run_storage(
    simulator: &StorageSimulator,
    spec: &RunSpec,
    seed: u64,
) -> Result<StorageSummary, CfsError> {
    let summary = match spec.stopping_rule()? {
        None => simulator.run_with(
            spec.horizon_hours(),
            spec.replications(),
            seed,
            spec.confidence_level(),
            spec.workers(),
        )?,
        Some(rule) => simulator.run_until(
            spec.horizon_hours(),
            &rule,
            seed,
            spec.confidence_level(),
            spec.workers(),
        )?,
    };
    Ok(summary)
}
