//! Figure 3: average number of disks that must be replaced per week to
//! sustain availability, as the scratch partition grows from ABE's 480
//! disks to 4800 disks, for four disk AFRs (0.88 %, 2.92 %, 4.38 %,
//! 8.76 %) at Weibull shape 0.7.

use serde::{Deserialize, Serialize};

use probdist::stats::ConfidenceInterval;
use raidsim::replacement::expected_replacements_per_week;
use raidsim::scaling::figure3_disk_counts;
use raidsim::{DiskModel, StorageConfig, StorageSimulator};

use crate::report::{fmt_ci, TextTable};
use crate::run::RunSpec;
use crate::CfsError;

/// One point of a Figure 3 curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Point {
    /// Number of disks in the scratch partition.
    pub disks: u32,
    /// Simulated replacements per week (Monte-Carlo, with CI).
    pub simulated_per_week: ConfidenceInterval,
    /// Analytic (renewal-function) replacements per week.
    pub analytic_per_week: f64,
}

/// One curve of Figure 3 (one AFR).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Series {
    /// The configuration tuple label, e.g. `(0.7,2.92,8+2,4)`.
    pub label: String,
    /// Disk AFR in percent.
    pub afr_percent: f64,
    /// Points in increasing disk-count order.
    pub points: Vec<Fig3Point>,
}

/// The full Figure 3 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// One series per AFR.
    pub series: Vec<Fig3Series>,
    /// Mission length, hours.
    pub horizon_hours: f64,
    /// Replications actually executed per point (the maximum across
    /// points, when an adaptive precision target lets points stop early).
    pub replications: usize,
}

/// The AFRs plotted in the paper's Figure 3 (percent per year).
pub const FIGURE3_AFRS: [f64; 4] = [8.76, 2.92, 4.38, 0.88];

impl Fig3Result {
    /// Renders the figure as a table (disk count × AFR → replacements per
    /// week).
    pub fn to_table(&self) -> TextTable {
        let mut headers: Vec<String> = vec!["Disks".to_string()];
        for s in &self.series {
            headers.push(format!("{} sim", s.label));
            headers.push(format!("{} analytic", s.label));
        }
        let header_refs: Vec<&str> = headers.iter().map(std::string::String::as_str).collect();
        let mut t = TextTable::new(
            "Figure 3. Average number of disks that need to be replaced per week",
            &header_refs,
        );
        if let Some(first) = self.series.first() {
            for (i, point) in first.points.iter().enumerate() {
                let mut row = vec![point.disks.to_string()];
                for series in &self.series {
                    row.push(fmt_ci(&series.points[i].simulated_per_week, 2));
                    row.push(format!("{:.2}", series.points[i].analytic_per_week));
                }
                t.add_row(&row);
            }
        }
        t
    }
}

/// Runs the Figure 3 experiment under the given run spec.
///
/// `disk_counts` defaults to the paper's 480…4800 sweep when empty.
///
/// # Errors
///
/// Propagates configuration and simulation errors.
pub fn figure3_disk_replacements_with(
    disk_counts: &[u32],
    spec: &RunSpec,
) -> Result<Fig3Result, CfsError> {
    spec.validate()?;
    let horizon_hours = spec.horizon_hours();
    let counts: Vec<u32> =
        if disk_counts.is_empty() { figure3_disk_counts() } else { disk_counts.to_vec() };

    let mut series = Vec::new();
    let mut replications_used = 0usize;
    for (series_idx, &afr) in FIGURE3_AFRS.iter().enumerate() {
        let disk = DiskModel { capacity_gb: 250.0, ..DiskModel::with_afr(afr, 0.7)? };
        let mut points = Vec::new();
        for (count_idx, &disks) in counts.iter().enumerate() {
            if disks == 0 || disks % 10 != 0 {
                return Err(CfsError::InvalidConfig {
                    reason: format!(
                        "disk count {disks} must be a positive multiple of the 10-disk tier size"
                    ),
                });
            }
            let tiers = disks / 10;
            let storage =
                StorageConfig { tiers, ddn_units: 1, disk, ..StorageConfig::abe_scratch() };
            let simulator = StorageSimulator::new(storage)?;
            let summary = crate::experiments::run_storage(
                &simulator,
                spec,
                spec.base_seed().wrapping_add((series_idx * 100 + count_idx) as u64),
            )?;
            replications_used = replications_used.max(summary.replications);
            let analytic = expected_replacements_per_week(disks, &disk, horizon_hours)?;
            points.push(Fig3Point {
                disks,
                simulated_per_week: summary.replacements_per_week,
                analytic_per_week: analytic,
            });
        }
        series.push(Fig3Series { label: format!("(0.7,{afr},8+2,4)"), afr_percent: afr, points });
    }
    Ok(Fig3Result { series, horizon_hours, replications: replications_used })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(replications: usize, seed: u64) -> RunSpec {
        RunSpec::new()
            .with_horizon_hours(4380.0)
            .with_replications(replications)
            .with_base_seed(seed)
    }

    #[test]
    fn rejects_invalid_disk_counts() {
        assert!(figure3_disk_replacements_with(&[0], &spec(4, 1)).is_err());
        assert!(figure3_disk_replacements_with(&[487], &spec(4, 1)).is_err());
    }

    #[test]
    fn abe_point_matches_the_observed_replacement_rate() {
        // 480 disks at AFR 2.92 % should give the paper's 0–2 replacements
        // per week.
        let result = figure3_disk_replacements_with(&[480], &spec(8, 5)).unwrap();
        let abe_series =
            result.series.iter().find(|s| (s.afr_percent - 2.92).abs() < 1e-9).unwrap();
        let point = &abe_series.points[0];
        assert!(
            point.simulated_per_week.point > 0.2 && point.simulated_per_week.point < 3.0,
            "simulated {}",
            point.simulated_per_week.point
        );
        assert!((point.analytic_per_week - point.simulated_per_week.point).abs() < 1.0);
    }

    #[test]
    fn replacements_grow_with_disks_and_afr() {
        let result = figure3_disk_replacements_with(&[480, 2400], &spec(8, 9)).unwrap();
        for series in &result.series {
            assert!(
                series.points[1].simulated_per_week.point
                    > series.points[0].simulated_per_week.point
            );
            assert!(series.points[1].analytic_per_week > series.points[0].analytic_per_week);
        }
        // Higher AFR → more replacements at the same scale.
        let worst = result.series.iter().find(|s| s.afr_percent == 8.76).unwrap();
        let best = result.series.iter().find(|s| s.afr_percent == 0.88).unwrap();
        assert!(
            worst.points[1].simulated_per_week.point
                > best.points[1].simulated_per_week.point * 3.0
        );

        let table = result.to_table();
        assert_eq!(table.len(), 2);
        assert!(table.render().contains("(0.7,8.76,8+2,4)"));
    }
}
