//! Figure 4: availability and utility of the ABE cluster as it is scaled to
//! a petaflop–petabyte system — four curves: storage availability, CFS
//! availability, cluster utility (CU), and CFS availability with a standby
//! spare OSS.

use serde::{Deserialize, Serialize};

use probdist::stats::ConfidenceInterval;

use crate::analysis::evaluate;
use crate::config::ClusterConfig;
use crate::report::{fmt_ci, TextTable};
use crate::run::RunSpec;
use crate::CfsError;

/// One scale point of Figure 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Point {
    /// Scratch capacity at this scale point, terabytes.
    pub capacity_tb: f64,
    /// Number of compute nodes.
    pub compute_nodes: u32,
    /// Number of OSS fail-over pairs (excluding metadata).
    pub oss_pairs: u32,
    /// Number of DDN units.
    pub ddn_units: u32,
    /// Storage (RAID subsystem) availability.
    pub storage_availability: ConfidenceInterval,
    /// CFS availability.
    pub cfs_availability: ConfidenceInterval,
    /// Cluster utility.
    pub cluster_utility: ConfidenceInterval,
    /// CFS availability with the standby spare OSS mitigation.
    pub cfs_availability_spare_oss: ConfidenceInterval,
}

/// The full Figure 4 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Result {
    /// Points in increasing scale order.
    pub points: Vec<Fig4Point>,
    /// Simulation horizon per replication, hours.
    pub horizon_hours: f64,
    /// Replications actually executed per configuration (the maximum
    /// across scale points, when an adaptive precision target lets points
    /// stop early).
    pub replications: usize,
}

/// The default capacity sweep for Figure 4 (a subset of the Figure 2 sweep,
/// since each point simulates the full composed model).
pub fn figure4_capacity_points_tb() -> Vec<f64> {
    vec![96.0, 384.0, 1536.0, 6144.0, 12_288.0]
}

impl Fig4Result {
    /// Renders the figure as a table.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Figure 4. Availability and utility of the ABE cluster when scaled to a petaflop-petabyte system",
            &[
                "TB",
                "Nodes",
                "OSS",
                "DDN",
                "Storage-availability",
                "CFS-Availability",
                "CU",
                "CFS-Availability-spare-OSS",
            ],
        );
        for p in &self.points {
            t.add_row(&[
                format!("{:.0}", p.capacity_tb),
                p.compute_nodes.to_string(),
                p.oss_pairs.to_string(),
                p.ddn_units.to_string(),
                fmt_ci(&p.storage_availability, 4),
                fmt_ci(&p.cfs_availability, 4),
                fmt_ci(&p.cluster_utility, 4),
                fmt_ci(&p.cfs_availability_spare_oss, 4),
            ]);
        }
        t
    }
}

/// Runs the Figure 4 experiment under the given run spec.
///
/// `capacities_tb` defaults to [`figure4_capacity_points_tb`] when empty.
///
/// # Errors
///
/// Propagates configuration and simulation errors.
pub fn figure4_cfs_availability_with(
    capacities_tb: &[f64],
    spec: &RunSpec,
) -> Result<Fig4Result, CfsError> {
    spec.validate()?;
    let capacities: Vec<f64> = if capacities_tb.is_empty() {
        figure4_capacity_points_tb()
    } else {
        capacities_tb.to_vec()
    };

    let mut points = Vec::new();
    let mut replications_used = 0usize;
    for (idx, &capacity_tb) in capacities.iter().enumerate() {
        let config = ClusterConfig::scaled_to_capacity(capacity_tb)?;
        let spared = config.clone().with_spare_oss();
        let base = evaluate(&config, &spec.offset_seed(idx as u64))?;
        let with_spare = evaluate(&spared, &spec.offset_seed(1000 + idx as u64))?;
        replications_used = replications_used.max(base.replications).max(with_spare.replications);
        points.push(Fig4Point {
            capacity_tb,
            compute_nodes: config.compute_nodes,
            oss_pairs: config.oss_pairs,
            ddn_units: config.storage.ddn_units,
            storage_availability: base.storage_availability,
            cfs_availability: base.cfs_availability,
            cluster_utility: base.cluster_utility,
            cfs_availability_spare_oss: with_spare.cfs_availability,
        });
    }
    Ok(Fig4Result { points, horizon_hours: spec.horizon_hours(), replications: replications_used })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_point_sweep_reproduces_the_figure_shape() {
        // ABE endpoint and the petascale endpoint with a modest replication
        // count: CFS availability declines with scale, storage availability
        // stays ≈ 1, CU sits below CFS availability, and the spare OSS
        // recovers part of the loss at petascale.
        let spec =
            RunSpec::new().with_horizon_hours(8760.0).with_replications(12).with_base_seed(7);
        let result = figure4_cfs_availability_with(&[96.0, 12_288.0], &spec).unwrap();
        assert_eq!(result.points.len(), 2);
        let abe = &result.points[0];
        let peta = &result.points[1];

        assert!(
            abe.cfs_availability.point > 0.95,
            "ABE availability {}",
            abe.cfs_availability.point
        );
        assert!(
            peta.cfs_availability.point < abe.cfs_availability.point - 0.02,
            "petascale availability {} should be clearly below ABE {}",
            peta.cfs_availability.point,
            abe.cfs_availability.point
        );
        assert!(abe.storage_availability.point > 0.999);
        assert!(peta.storage_availability.point > 0.999);
        assert!(peta.cluster_utility.point < peta.cfs_availability.point);
        assert!(
            peta.cfs_availability_spare_oss.point > peta.cfs_availability.point,
            "spare OSS should help at petascale"
        );

        let table = result.to_table();
        assert_eq!(table.len(), 2);
        assert!(table.render().contains("CFS-Availability-spare-OSS"));
    }
}
