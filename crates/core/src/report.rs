//! The unified report sink: aligned text tables, CSV, and JSON rendering
//! for every experiment result.
//!
//! Every experiment in [`crate::experiments`] renders its results as a
//! [`TextTable`]; a [`Report`] collects the [`ScenarioOutput`]s of a
//! [`crate::study::Study`] run and renders them all in any
//! [`ReportFormat`], replacing the per-driver rendering paths that used to
//! live here and in [`csv`].

pub mod csv;

use std::fmt::Write as _;

use serde::Serialize;

use crate::run::RunSpec;
use crate::scenario::ScenarioOutput;

/// A simple column-aligned text table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(std::string::ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated.
    pub fn add_row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.iter().take(self.headers.len()).cloned().collect();
        while row.len() < self.headers.len() {
            row.push(String::new());
        }
        self.rows.push(row);
    }

    /// Appends a row of displayable values.
    pub fn add_display_row<T: std::fmt::Display>(&mut self, cells: &[T]) {
        let cells: Vec<String> = cells.iter().map(std::string::ToString::to_string).collect();
        self.add_row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as CSV (headers plus data rows, RFC-4180 quoting).
    /// This is the generic replacement for the per-figure CSV exporters in
    /// [`csv`].
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&csv::record(&self.headers));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&csv::record(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let columns = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(std::string::String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.len());
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let separator: String =
            widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+");
        let _ = writeln!(out, "{separator}");
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!(" {:<width$} ", h, width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header_line.join("|"));
        let _ = writeln!(out, "{separator}");
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("|"));
        }
        let _ = writeln!(out, "{separator}");
        out
    }
}

/// Formats a point estimate with its confidence half-width, e.g.
/// `0.9721 ±0.0012`.
pub fn fmt_ci(interval: &probdist::stats::ConfidenceInterval, decimals: usize) -> String {
    format!("{:.prec$} ±{:.prec$}", interval.point, interval.half_width, prec = decimals)
}

/// Output format of a [`Report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// Aligned plain-text tables plus a metrics summary.
    Text,
    /// One tidy CSV of every scenario's metrics
    /// (`scenario,metric,value,ci_half_width`).
    Csv,
    /// The full report (spec, tables, and metrics) as indented JSON.
    Json,
}

impl ReportFormat {
    /// Parses a format name (`text` / `csv` / `json`), case-insensitively
    /// and ignoring surrounding whitespace (names typically arrive from
    /// command lines and environment variables).
    pub fn parse(name: &str) -> Option<ReportFormat> {
        match name.trim().to_ascii_lowercase().as_str() {
            "text" | "txt" => Some(ReportFormat::Text),
            "csv" => Some(ReportFormat::Csv),
            "json" => Some(ReportFormat::Json),
            _ => None,
        }
    }

    /// The canonical lower-case name, the inverse of [`ReportFormat::parse`].
    pub fn name(&self) -> &'static str {
        match self {
            ReportFormat::Text => "text",
            ReportFormat::Csv => "csv",
            ReportFormat::Json => "json",
        }
    }
}

/// A scenario failure contained by a fault-tolerant study run: the
/// scenario panicked or returned an error, the study kept the worker pool
/// and its sibling scenarios intact, and the failure is reported here
/// instead of unwinding the process (see
/// [`crate::run::FailurePolicy::ContinueAndReport`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioFailure {
    /// Name of the failed scenario.
    pub scenario: String,
    /// The replication index that panicked, when the failure originated in
    /// a replication fan-out (`None` for failures outside it).
    pub replication: Option<u64>,
    /// The panic payload or error rendered as text.
    pub message: String,
    /// Wall-clock seconds the scenario ran before failing.
    pub elapsed_seconds: f64,
}

/// The unified result sink of a [`crate::study::Study`] run: the spec the
/// study ran under, every scenario's output, and — under a fault-tolerant
/// failure policy — every contained failure, renderable as text, CSV, or
/// JSON through one interface.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Report {
    /// The run spec every scenario was evaluated under.
    pub spec: RunSpec,
    /// Scenario outputs, in study execution order.
    pub outputs: Vec<ScenarioOutput>,
    /// Failures contained by [`crate::run::FailurePolicy::ContinueAndReport`],
    /// in study execution order. Always empty under the default abort
    /// policy (the first failure surfaces as a [`crate::CfsError`] instead).
    pub failures: Vec<ScenarioFailure>,
    /// The telemetry delta of the run that produced this report, attached
    /// when the spec carried [`crate::run::RunSpec::with_telemetry`].
    pub telemetry: Option<probdist::telemetry::TelemetrySnapshot>,
}

impl Report {
    /// Creates a report from a spec and the outputs it produced, with no
    /// contained failures.
    pub fn new(spec: RunSpec, outputs: Vec<ScenarioOutput>) -> Self {
        Report { spec, outputs, failures: Vec::new(), telemetry: None }
    }

    /// Attaches the failures a fault-tolerant run contained.
    pub fn with_failures(mut self, failures: Vec<ScenarioFailure>) -> Self {
        self.failures = failures;
        self
    }

    /// Attaches the telemetry snapshot of the run.
    pub fn with_telemetry(mut self, snapshot: probdist::telemetry::TelemetrySnapshot) -> Self {
        self.telemetry = Some(snapshot);
        self
    }

    /// Drops every wall-clock artefact — per-scenario timings and the
    /// telemetry attachment — leaving only the deterministic statistics.
    /// Two runs with the same seed and replication count then render byte
    /// for byte identically, the form the determinism and resume tests
    /// compare.
    pub fn without_wall_clock(mut self) -> Self {
        self.outputs = self.outputs.into_iter().map(ScenarioOutput::without_wall_clock).collect();
        self.telemetry = None;
        self
    }

    /// Looks up a scenario's output by name.
    pub fn output(&self, scenario: &str) -> Option<&ScenarioOutput> {
        self.outputs.iter().find(|o| o.scenario == scenario)
    }

    /// Renders the report in the requested format.
    pub fn render(&self, format: ReportFormat) -> String {
        match format {
            ReportFormat::Text => self.to_text(),
            ReportFormat::Csv => self.to_csv(),
            ReportFormat::Json => self.to_json(),
        }
    }

    /// Renders every scenario's tables and metrics as aligned plain text.
    /// Adaptive specs report their precision target in the header, and each
    /// Monte-Carlo scenario reports the replication count it actually used.
    pub fn to_text(&self) -> String {
        let _span = probdist::telemetry::span(probdist::telemetry::MetricId::SpanReportRender);
        let mut out = String::new();
        let replication_policy = match self.spec.precision_target() {
            Some(target) => format!(
                "precision ±{:.2}% ({}..{} replications)",
                target.relative_half_width * 100.0,
                target.min_replications,
                target.max_replications
            ),
            None => format!("{} replications", self.spec.replications()),
        };
        let _ = writeln!(
            out,
            "Study report: {} scenario(s), horizon {} h, {}, seed {}, {:.0}% CI",
            self.outputs.len(),
            self.spec.horizon_hours(),
            replication_policy,
            self.spec.base_seed(),
            self.spec.confidence_level() * 100.0,
        );
        for output in &self.outputs {
            let _ = writeln!(out, "\n==== {} ====", output.scenario);
            for table in &output.tables {
                let _ = writeln!(out, "{}", table.render());
            }
            for metric in &output.metrics {
                match metric.half_width {
                    Some(half_width) => {
                        let _ = writeln!(out, "{}: {} ±{}", metric.name, metric.value, half_width);
                    }
                    None => {
                        let _ = writeln!(out, "{}: {}", metric.name, metric.value);
                    }
                }
            }
            if let Some(used) = output.replications_used {
                let _ = writeln!(out, "replications used: {used}");
            }
            if let Some(elapsed) = output.elapsed_seconds {
                let _ = writeln!(out, "elapsed: {elapsed:.3} s");
            }
            if output.truncated {
                let _ = writeln!(
                    out,
                    "TRUNCATED: the deadline expired; statistics cover the completed \
                     replication prefix only"
                );
            }
        }
        if !self.failures.is_empty() {
            let _ = writeln!(out, "\n==== contained failures ====");
            for failure in &self.failures {
                let location = match failure.replication {
                    Some(index) => format!(" (replication {index})"),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "{}{location}: {} [after {:.3} s]",
                    failure.scenario, failure.message, failure.elapsed_seconds
                );
            }
        }
        if let Some(telemetry) = &self.telemetry {
            let _ = writeln!(out, "\n==== telemetry ====");
            out.push_str(&telemetry.to_text());
        }
        out
    }

    /// Renders every scenario's metrics as one tidy CSV
    /// (`scenario,metric,value,ci_half_width`), the machine-readable
    /// companion to the presentation tables (render those individually with
    /// [`TextTable::to_csv`]). Monte-Carlo scenarios append a
    /// `replications_used` row recording the count the replication policy
    /// actually spent.
    pub fn to_csv(&self) -> String {
        let _span = probdist::telemetry::span(probdist::telemetry::MetricId::SpanReportRender);
        let mut out = String::from("scenario,metric,value,ci_half_width\n");
        for output in &self.outputs {
            for metric in &output.metrics {
                out.push_str(&csv::record(&[
                    output.scenario.clone(),
                    metric.name.clone(),
                    format!("{}", metric.value),
                    metric.half_width.map(|h| format!("{h}")).unwrap_or_default(),
                ]));
                out.push('\n');
            }
            if let Some(used) = output.replications_used {
                out.push_str(&csv::record(&[
                    output.scenario.clone(),
                    "replications_used".to_string(),
                    format!("{used}"),
                    String::new(),
                ]));
                out.push('\n');
            }
            if output.truncated {
                out.push_str(&csv::record(&[
                    output.scenario.clone(),
                    "truncated".to_string(),
                    "true".to_string(),
                    String::new(),
                ]));
                out.push('\n');
            }
            if let Some(elapsed) = output.elapsed_seconds {
                out.push_str(&csv::record(&[
                    output.scenario.clone(),
                    "elapsed_seconds".to_string(),
                    format!("{elapsed}"),
                    String::new(),
                ]));
                out.push('\n');
            }
        }
        for failure in &self.failures {
            // RFC-4180 quoting keeps arbitrary panic text (commas, quotes,
            // newlines) inside one cell.
            out.push_str(&csv::record(&[
                failure.scenario.clone(),
                "failure".to_string(),
                failure.message.clone(),
                failure.replication.map(|i| format!("replication {i}")).unwrap_or_default(),
            ]));
            out.push('\n');
        }
        if let Some(telemetry) = &self.telemetry {
            // The telemetry delta rides along in the same tidy schema under
            // the reserved scenario name `_telemetry`.
            for sample in &telemetry.samples {
                out.push_str(&csv::record(&[
                    "_telemetry".to_string(),
                    sample.name.clone(),
                    format!("{}", sample.value),
                    String::new(),
                ]));
                out.push('\n');
            }
        }
        out
    }

    /// Renders the full report — spec, tables, metrics, and any telemetry
    /// attachment — as indented JSON via serde.
    pub fn to_json(&self) -> String {
        let _span = probdist::telemetry::span(probdist::telemetry::MetricId::SpanReportRender);
        serde::to_json_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdist::stats::ConfidenceInterval;

    #[test]
    fn render_aligns_columns_and_includes_all_rows() {
        let mut t = TextTable::new("Table X. Example", &["Cause", "Hours"]);
        t.add_row(&["I/O hardware".into(), "12.95".into()]);
        t.add_row(&["Network".into(), "3.36".into()]);
        let text = t.render();
        assert!(text.contains("Table X. Example"));
        assert!(text.contains("I/O hardware"));
        assert!(text.contains("Network"));
        assert!(text.contains("Cause"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "Table X. Example");
        // Every data line has the same width.
        let lines: Vec<&str> = text.lines().filter(|l| l.contains('|')).collect();
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    fn short_rows_are_padded_and_long_rows_truncated() {
        let mut t = TextTable::new("t", &["a", "b", "c"]);
        t.add_row(&["1".into()]);
        t.add_row(&["1".into(), "2".into(), "3".into(), "4".into()]);
        let text = t.render();
        assert_eq!(t.len(), 2);
        assert!(!text.contains('4'));
    }

    #[test]
    fn report_format_parse_round_trips() {
        for format in [ReportFormat::Text, ReportFormat::Csv, ReportFormat::Json] {
            assert_eq!(ReportFormat::parse(format.name()), Some(format));
            // Case and whitespace variants all resolve to the same format.
            assert_eq!(ReportFormat::parse(&format.name().to_ascii_uppercase()), Some(format));
            assert_eq!(ReportFormat::parse(&format!("  {}\t\n", format.name())), Some(format));
        }
        assert_eq!(ReportFormat::parse("TXT"), Some(ReportFormat::Text));
        assert_eq!(ReportFormat::parse(" Json "), Some(ReportFormat::Json));
        for unknown in ["", "  ", "yaml", "cs v", "json5", "text,csv"] {
            assert_eq!(ReportFormat::parse(unknown), None, "{unknown:?}");
        }
    }

    #[test]
    fn json_report_escapes_hostile_scenario_names() {
        use crate::scenario::ScenarioOutput;

        let name = "weird \"scenario\"\\with\ncontrol\u{1}chars";
        let output = ScenarioOutput::new(name).with_metric("m", 1.0);
        let report = Report::new(RunSpec::new(), vec![output]);
        let json = report.to_json();
        // Quotes, backslashes, and control characters must be escaped so
        // the document stays valid JSON.
        assert!(json.contains("weird \\\"scenario\\\"\\\\with\\ncontrol\\u0001chars"), "{json}");
        assert!(!json.chars().any(|c| (c as u32) < 0x20 && c != '\n' && c != ' '), "{json}");
        // And the report still round-trips through the named lookup.
        assert!(report.output(name).is_some());
    }

    #[test]
    fn display_rows_and_ci_formatting() {
        let mut t = TextTable::new("t", &["x", "y"]);
        t.add_display_row(&[1.5, 2.25]);
        assert!(t.render().contains("2.25"));

        let ci =
            ConfidenceInterval { point: 0.97218, half_width: 0.00123, level: 0.95, samples: 32 };
        assert_eq!(fmt_ci(&ci, 4), "0.9722 ±0.0012");
    }
}
