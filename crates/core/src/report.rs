//! Plain-text table rendering for experiment drivers.
//!
//! Every experiment in [`crate::experiments`] can render its results as an
//! aligned text table, so the benchmark harness prints the same rows the
//! paper's tables and figures report.

pub mod csv;

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated.
    pub fn add_row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.iter().take(self.headers.len()).cloned().collect();
        while row.len() < self.headers.len() {
            row.push(String::new());
        }
        self.rows.push(row);
    }

    /// Appends a row of displayable values.
    pub fn add_display_row<T: std::fmt::Display>(&mut self, cells: &[T]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.add_row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let columns = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.len());
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let separator: String =
            widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+");
        let _ = writeln!(out, "{separator}");
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!(" {:<width$} ", h, width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header_line.join("|"));
        let _ = writeln!(out, "{separator}");
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("|"));
        }
        let _ = writeln!(out, "{separator}");
        out
    }
}

/// Formats a point estimate with its confidence half-width, e.g.
/// `0.9721 ±0.0012`.
pub fn fmt_ci(interval: &probdist::stats::ConfidenceInterval, decimals: usize) -> String {
    format!("{:.prec$} ±{:.prec$}", interval.point, interval.half_width, prec = decimals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdist::stats::ConfidenceInterval;

    #[test]
    fn render_aligns_columns_and_includes_all_rows() {
        let mut t = TextTable::new("Table X. Example", &["Cause", "Hours"]);
        t.add_row(&["I/O hardware".into(), "12.95".into()]);
        t.add_row(&["Network".into(), "3.36".into()]);
        let text = t.render();
        assert!(text.contains("Table X. Example"));
        assert!(text.contains("I/O hardware"));
        assert!(text.contains("Network"));
        assert!(text.contains("Cause"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "Table X. Example");
        // Every data line has the same width.
        let lines: Vec<&str> = text.lines().filter(|l| l.contains('|')).collect();
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    fn short_rows_are_padded_and_long_rows_truncated() {
        let mut t = TextTable::new("t", &["a", "b", "c"]);
        t.add_row(&["1".into()]);
        t.add_row(&["1".into(), "2".into(), "3".into(), "4".into()]);
        let text = t.render();
        assert_eq!(t.len(), 2);
        assert!(!text.contains('4'));
    }

    #[test]
    fn display_rows_and_ci_formatting() {
        let mut t = TextTable::new("t", &["x", "y"]);
        t.add_display_row(&[1.5, 2.25]);
        assert!(t.render().contains("2.25"));

        let ci = ConfidenceInterval { point: 0.97218, half_width: 0.00123, level: 0.95, samples: 32 };
        assert_eq!(fmt_ci(&ci, 4), "0.9722 ±0.0012");
    }
}
