//! The paper's reward variables (Section 4.2), defined on the composed
//! cluster model.
//!
//! * **CFS availability** — the fraction of time all file-server nodes
//!   (OSSes), the DDN, and the interconnect between them are working, i.e.
//!   the fraction of time the shared `cfs_down_conditions` counter is zero.
//! * **Storage availability** — the fraction of time no RAID tier is in
//!   unrecoverable-failure recovery.
//! * **Disk replacement rate** — disks replaced per week.
//! * **Cluster utility (CU)** — `1 − Σ_nodes unavailable-time / (N · T)`,
//!   the availability perceived by the compute nodes: CFS downtime counts
//!   for every node, and transient network errors additionally waste the
//!   work of the jobs they kill even though the CFS itself has not failed.
//!   CU is assembled per replication from the `cfs_availability` and
//!   `lost_node_hours` rewards by [`crate::analysis`].

use sanet::reward::RewardSpec;

use crate::model::ClusterModel;

/// Reward name: CFS availability.
pub const CFS_AVAILABILITY: &str = "cfs_availability";
/// Reward name: storage (RAID subsystem) availability.
pub const STORAGE_AVAILABILITY: &str = "storage_availability";
/// Reward name: accumulated lost compute node-hours from transient errors.
pub const LOST_NODE_HOURS: &str = "lost_node_hours";
/// Reward name: total disk replacements over the observation window.
pub const DISK_REPLACEMENTS: &str = "disk_replacements";
/// Reward name: number of OSS pairs simultaneously down, time-averaged.
pub const MEAN_OSS_PAIRS_DOWN: &str = "mean_oss_pairs_down";

/// Builds the standard reward set for a cluster model.
pub fn standard_rewards(model: &ClusterModel) -> Vec<RewardSpec> {
    let places = model.places;
    vec![
        RewardSpec::time_averaged_rate(CFS_AVAILABILITY, move |m| {
            if m.tokens(places.cfs_down_conditions) == 0 {
                1.0
            } else {
                0.0
            }
        }),
        RewardSpec::time_averaged_rate(STORAGE_AVAILABILITY, move |m| {
            if m.tokens(places.storage_down_tiers) == 0 {
                1.0
            } else {
                0.0
            }
        }),
        RewardSpec::instant_of_time(LOST_NODE_HOURS, move |m| {
            m.tokens(places.lost_node_hours) as f64
        }),
        RewardSpec::impulse_total(DISK_REPLACEMENTS, model.activities.disk_replacement, 1.0),
        RewardSpec::time_averaged_rate(MEAN_OSS_PAIRS_DOWN, move |m| {
            m.tokens(places.oss_pairs_down) as f64
        }),
    ]
}

/// Derives the cluster utility of one replication from its CFS availability
/// and lost node-hours.
pub fn cluster_utility(
    cfs_availability: f64,
    lost_node_hours: f64,
    compute_nodes: u32,
    horizon_hours: f64,
) -> f64 {
    let transient_loss = lost_node_hours / (compute_nodes as f64 * horizon_hours);
    (cfs_availability - transient_loss).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::model::build_cluster_model;

    #[test]
    fn standard_rewards_cover_all_measures() {
        let cm = build_cluster_model(&ClusterConfig::abe()).unwrap();
        let rewards = standard_rewards(&cm);
        let names: Vec<&str> = rewards.iter().map(sanet::RewardSpec::name).collect();
        assert_eq!(
            names,
            vec![
                CFS_AVAILABILITY,
                STORAGE_AVAILABILITY,
                LOST_NODE_HOURS,
                DISK_REPLACEMENTS,
                MEAN_OSS_PAIRS_DOWN
            ]
        );
    }

    #[test]
    fn cluster_utility_subtracts_transient_losses() {
        // 1200 nodes for 100 hours = 120 000 node-hours; losing 12 000 of
        // them costs 0.1 of utility.
        let cu = cluster_utility(0.97, 12_000.0, 1200, 100.0);
        assert!((cu - 0.87).abs() < 1e-12);
        // Utility never goes negative and never exceeds availability.
        assert_eq!(cluster_utility(0.5, 1e12, 1200, 100.0), 0.0);
        assert_eq!(cluster_utility(1.0, 0.0, 1200, 100.0), 1.0);
    }
}
