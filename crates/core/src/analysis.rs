//! Running the composed cluster model and summarising its dependability.

use std::cell::Cell;
use std::ops::Range;

use probdist::parallel::{current_cancel_token, CancelToken};
use probdist::stats::{confidence_interval, run_to_precision, ConfidenceInterval, RunningStats};
use serde::{Deserialize, Serialize};

use sanet::{Experiment, RunResult};

use crate::checkpoint::{self, StoredRun};
use crate::config::ClusterConfig;
use crate::model::build_cluster_model;
use crate::rewards::{
    cluster_utility, standard_rewards, CFS_AVAILABILITY, DISK_REPLACEMENTS, LOST_NODE_HOURS,
    MEAN_OSS_PAIRS_DOWN, STORAGE_AVAILABILITY,
};
use crate::run::RunSpec;
use crate::CfsError;

/// Dependability measures of a cluster configuration, each with a 95 %
/// confidence interval across simulation replications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterDependability {
    /// Name of the evaluated configuration.
    pub config_name: String,
    /// CFS availability (Section 4.2).
    pub cfs_availability: ConfidenceInterval,
    /// Storage (RAID subsystem) availability.
    pub storage_availability: ConfidenceInterval,
    /// Cluster utility (CU).
    pub cluster_utility: ConfidenceInterval,
    /// Disk replacements per week.
    pub disk_replacements_per_week: ConfidenceInterval,
    /// Time-averaged number of OSS pairs simultaneously down.
    pub mean_oss_pairs_down: ConfidenceInterval,
    /// Number of replications actually run (for an adaptive spec, the
    /// count at which the precision target was met or capped).
    pub replications: usize,
    /// Simulation horizon of each replication, hours.
    pub horizon_hours: f64,
    /// Whether a run deadline expired before the replication budget was
    /// spent: every statistic is still valid, but covers only the
    /// contiguous prefix of replications that completed.
    pub truncated: bool,
}

/// The five dependability measures of one evaluation, accumulated across
/// replications in index order.
struct MeasureStats {
    cfs: RunningStats,
    storage: RunningStats,
    cu: RunningStats,
    replacements: RunningStats,
    oss_down: RunningStats,
}

impl MeasureStats {
    /// Reduces raw per-replication results into the five measures,
    /// rejecting any non-finite reward (which would otherwise silently
    /// poison every statistic).
    fn from_runs(
        config: &ClusterConfig,
        horizon_hours: f64,
        runs: &[RunResult],
    ) -> Result<MeasureStats, CfsError> {
        let mut cfs = RunningStats::new();
        let mut storage = RunningStats::new();
        let mut cu = RunningStats::new();
        let mut replacements = RunningStats::new();
        let mut oss_down = RunningStats::new();
        for (index, run) in runs.iter().enumerate() {
            let availability = run.reward(CFS_AVAILABILITY)?;
            let lost = run.reward(LOST_NODE_HOURS)?;
            let storage_availability = run.reward(STORAGE_AVAILABILITY)?;
            let disk_replacements = run.reward(DISK_REPLACEMENTS)?;
            let pairs_down = run.reward(MEAN_OSS_PAIRS_DOWN)?;
            for (name, value) in [
                (CFS_AVAILABILITY, availability),
                (LOST_NODE_HOURS, lost),
                (STORAGE_AVAILABILITY, storage_availability),
                (DISK_REPLACEMENTS, disk_replacements),
                (MEAN_OSS_PAIRS_DOWN, pairs_down),
            ] {
                if !value.is_finite() {
                    return Err(CfsError::InvalidConfig {
                        reason: format!(
                            "replication {index} of '{}' produced a non-finite value {value} for \
                             reward '{name}' — the configuration drives the model outside its \
                             numeric range",
                            config.name
                        ),
                    });
                }
            }
            cfs.push(availability);
            storage.push(storage_availability);
            cu.push(cluster_utility(availability, lost, config.compute_nodes, horizon_hours));
            replacements.push(disk_replacements / (horizon_hours / 168.0));
            oss_down.push(pairs_down);
        }
        Ok(MeasureStats { cfs, storage, cu, replacements, oss_down })
    }
}

/// Per-evaluation checkpoint state: the file and interval from the spec's
/// [`crate::run::CheckpointPolicy`], this evaluation's entry key, and the
/// stored replication prefix loaded when the session opened. As new
/// replications complete they are appended to `stored` and the whole
/// prefix is re-persisted, so the file always holds a contiguous
/// `0..stored.len()` prefix.
struct CheckpointSession {
    path: String,
    every_n: usize,
    key: String,
    stored: Vec<StoredRun>,
}

impl CheckpointSession {
    /// Opens the spec's checkpoint (if it carries one), loading any
    /// previously persisted prefix for this `(config, base seed)` pair.
    fn open(config: &ClusterConfig, spec: &RunSpec) -> Result<Option<CheckpointSession>, CfsError> {
        let Some(policy) = spec.checkpoint() else {
            return Ok(None);
        };
        let key = checkpoint::entry_key(&config.name, spec.base_seed());
        let data = checkpoint::load(&policy.path)?;
        let stored = data.entry(&key).map(<[StoredRun]>::to_vec).unwrap_or_default();
        Ok(Some(CheckpointSession {
            path: policy.path.clone(),
            every_n: policy.every_n,
            key,
            stored,
        }))
    }

    fn persist(&self) -> Result<(), CfsError> {
        checkpoint::update(&self.path, &self.key, self.stored.clone())
    }
}

fn restore_run(run: &StoredRun) -> RunResult {
    RunResult::from_named_values(run.rewards.clone(), run.events, run.end_time)
}

fn capture_run(run: &RunResult) -> StoredRun {
    StoredRun {
        rewards: run.iter().map(|(name, value)| (name.to_string(), value)).collect(),
        events: run.events,
        end_time: run.end_time,
    }
}

/// Runs replications `range` of `experiment`: indices already in the
/// checkpoint prefix are restored without simulating, the remainder runs
/// in chunks of the checkpoint interval (persisting after every chunk),
/// and the cancel token truncates the range cooperatively. Returns the
/// contiguous completed prefix of the range and whether cancellation cut
/// it short.
///
/// A panic inside a chunk (a poisoned replication, injected or real)
/// propagates *before* that chunk is persisted, so the checkpoint file
/// only ever holds fully completed replications.
fn run_range(
    experiment: &Experiment,
    seed: u64,
    range: Range<usize>,
    session: &mut Option<CheckpointSession>,
    token: Option<&CancelToken>,
) -> Result<(Vec<RunResult>, bool), CfsError> {
    let mut results: Vec<RunResult> = Vec::with_capacity(range.len());
    let mut next = range.start;

    // Serve the stored prefix first — bit-identical to re-simulating,
    // because replication `i` is a pure function of `(seed, i)`.
    if let Some(session) = session.as_ref() {
        let available = session.stored.len().min(range.end);
        let mut resumed = 0u64;
        while next < available {
            results.push(restore_run(&session.stored[next]));
            next += 1;
            resumed += 1;
        }
        probdist::telemetry::counter_add(
            probdist::telemetry::MetricId::CheckpointResumeHits,
            resumed,
        );
    }

    while next < range.end {
        if token.is_some_and(CancelToken::is_cancelled) {
            return Ok((results, true));
        }
        let chunk_len = match session.as_ref() {
            Some(session) => session.every_n.min(range.end - next),
            None => range.end - next,
        };
        let chunk_range = next..next + chunk_len;
        let (chunk, cut) = match token {
            Some(token) => experiment.run_raw_range_interruptible(chunk_range, seed, token)?,
            None => (experiment.run_raw_range(chunk_range, seed)?, false),
        };
        if let Some(session) = session.as_mut() {
            debug_assert_eq!(session.stored.len(), next, "checkpoint prefix out of step");
            session.stored.extend(chunk.iter().map(capture_run));
            session.persist()?;
        }
        next += chunk.len();
        results.extend(chunk);
        if cut {
            return Ok((results, true));
        }
    }
    Ok((results, false))
}

/// Builds the composed model for `config`, simulates it under the spec's
/// replication policy — a fixed count, or precision-targeted batches when
/// [`RunSpec::with_precision_target`] is set — and returns every reward
/// measure with confidence intervals at the spec's level. Replications are
/// scheduled through the work-stealing executor (the study's global pool
/// when one is ambient), each drawing from its own index-derived RNG
/// stream, so the result is a pure function of `(config, spec)`.
///
/// Two resilience policies thread through here. With
/// [`RunSpec::with_checkpoint`], completed replications persist to a
/// checksummed file and a rerun restores them instead of re-simulating —
/// bit-identically. With [`RunSpec::with_deadline`] (or inside a study
/// that installed an ambient cancellation token), an expired deadline
/// stops claiming new replications, and the result covers the contiguous
/// completed prefix with `truncated` set.
///
/// The returned `replications` field records the count actually used,
/// which for an adaptive run is where the stopping rule was satisfied (or
/// its cap), and for a truncated run the completed prefix length.
///
/// # Errors
///
/// Returns [`CfsError::InvalidConfig`] for an invalid configuration or run
/// spec, or when a replication produces a non-finite reward;
/// [`CfsError::Checkpoint`] for a corrupt or unwritable checkpoint file;
/// [`CfsError::DeadlineExpired`] when fewer than two replications finished
/// before the deadline; and propagates simulation errors.
pub fn evaluate(config: &ClusterConfig, spec: &RunSpec) -> Result<ClusterDependability, CfsError> {
    spec.validate()?;
    let horizon_hours = spec.horizon_hours();
    let level = spec.confidence_level();

    let cluster = {
        let _span = probdist::telemetry::span(probdist::telemetry::MetricId::SpanModelBuild);
        build_cluster_model(config)?
    };
    let rewards = standard_rewards(&cluster);
    let mut experiment = Experiment::new(cluster.model.clone(), horizon_hours);
    experiment.set_workers(spec.workers());
    for reward in rewards {
        experiment.add_reward(reward);
    }

    // A study installs one study-wide token ambiently (covering every
    // scenario it schedules); a standalone evaluation derives its own from
    // the spec's deadline.
    let token = current_cancel_token().or_else(|| spec.deadline().map(CancelToken::with_deadline));
    let mut session = CheckpointSession::open(config, spec)?;

    let truncated = Cell::new(false);
    let runs = match spec.stopping_rule()? {
        None => {
            let (runs, cut) = run_range(
                &experiment,
                spec.base_seed(),
                0..spec.replications(),
                &mut session,
                token.as_ref(),
            )?;
            truncated.set(cut);
            runs
        }
        Some(rule) => run_to_precision(
            &rule,
            |range| -> Result<Vec<RunResult>, CfsError> {
                let (batch, cut) =
                    run_range(&experiment, spec.base_seed(), range, &mut session, token.as_ref())?;
                if cut {
                    truncated.set(true);
                }
                Ok(batch)
            },
            |runs| {
                if truncated.get() {
                    // The deadline fired: accept the completed prefix as
                    // final instead of scheduling further batches.
                    return Ok(true);
                }
                let m = MeasureStats::from_runs(config, horizon_hours, runs)?;
                for stats in [&m.cfs, &m.storage, &m.cu, &m.replacements, &m.oss_down] {
                    if !rule.met_by(&confidence_interval(stats, level)?) {
                        return Ok(false);
                    }
                }
                Ok(true)
            },
        )?,
    };

    if truncated.get() && runs.len() < 2 {
        return Err(CfsError::DeadlineExpired {
            scenario: config.name.clone(),
            completed: runs.len(),
        });
    }

    let m = MeasureStats::from_runs(config, horizon_hours, &runs)?;
    Ok(ClusterDependability {
        config_name: config.name.clone(),
        cfs_availability: confidence_interval(&m.cfs, level)?,
        storage_availability: confidence_interval(&m.storage, level)?,
        cluster_utility: confidence_interval(&m.cu, level)?,
        disk_replacements_per_week: confidence_interval(&m.replacements, level)?,
        mean_oss_pairs_down: confidence_interval(&m.oss_down, level)?,
        replications: runs.len(),
        horizon_hours,
        truncated: truncated.get(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const YEAR: f64 = 8760.0;

    fn spec(replications: usize, seed: u64) -> RunSpec {
        RunSpec::new().with_horizon_hours(YEAR).with_replications(replications).with_base_seed(seed)
    }

    #[test]
    fn run_parameters_are_validated() {
        let abe = ClusterConfig::abe();
        assert!(evaluate(&abe, &spec(1, 1)).is_err());
        assert!(evaluate(&abe, &spec(8, 1).with_horizon_hours(0.0)).is_err());
        assert!(evaluate(&abe, &spec(8, 1).with_horizon_hours(-1.0)).is_err());
        assert!(evaluate(&abe, &spec(100_001, 1)).is_err());
    }

    #[test]
    fn adaptive_evaluation_stops_within_bounds() {
        let abe = ClusterConfig::abe();
        // A loose target on a low-variance configuration stops well before
        // the cap; the result records the count actually used.
        let loose = spec(4, 9).with_precision_target(0.5, 4, 64);
        let result = evaluate(&abe, &loose).unwrap();
        assert!(
            result.replications >= 4 && result.replications <= 64,
            "used {} replications",
            result.replications
        );

        // An unreachable target runs to the cap.
        let tight = spec(4, 9).with_horizon_hours(2000.0).with_precision_target(1e-9, 4, 8);
        let capped = evaluate(&abe, &tight).unwrap();
        assert_eq!(capped.replications, 8);
    }

    #[test]
    fn adaptive_run_matches_fixed_run_of_the_same_count() {
        let abe = ClusterConfig::abe();
        let adaptive = evaluate(
            &abe,
            &spec(4, 9).with_horizon_hours(2000.0).with_precision_target(0.5, 4, 64),
        )
        .unwrap();
        let fixed =
            evaluate(&abe, &spec(adaptive.replications, 9).with_horizon_hours(2000.0)).unwrap();
        assert_eq!(adaptive, fixed, "same seed + same count must be bit-identical");
    }

    #[test]
    fn checkpointed_run_resumes_bit_identically() {
        let abe = ClusterConfig::abe();
        let mut path = std::env::temp_dir();
        path.push(format!("cfs-analysis-ckpt-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let plain = evaluate(&abe, &spec(6, 21).with_horizon_hours(1000.0)).unwrap();
        let checkpointed =
            spec(6, 21).with_horizon_hours(1000.0).with_checkpoint(path.to_str().unwrap(), 2);
        // The first run populates the checkpoint while matching the plain
        // run bit for bit…
        let first = evaluate(&abe, &checkpointed).unwrap();
        assert_eq!(plain, first);
        // …and a rerun restores every replication from the file (the
        // stored f64s round-trip exactly) instead of re-simulating.
        let second = evaluate(&abe, &checkpointed).unwrap();
        assert_eq!(first, second);
        let data = crate::checkpoint::load(&path).unwrap();
        assert_eq!(data.entry(&crate::checkpoint::entry_key("ABE", 21)).unwrap().len(), 6);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pre_expired_deadline_is_a_typed_starvation_error() {
        let starved =
            spec(8, 3).with_horizon_hours(500.0).with_deadline(std::time::Duration::from_nanos(1));
        let err = evaluate(&ClusterConfig::abe(), &starved).unwrap_err();
        match err {
            CfsError::DeadlineExpired { scenario, completed } => {
                assert_eq!(scenario, "ABE");
                assert_eq!(completed, 0);
            }
            other => panic!("expected DeadlineExpired, got {other}"),
        }
    }

    #[test]
    fn abe_availability_matches_the_measured_band() {
        // The paper measures ABE CFS availability at about 0.97 (Table 1 /
        // Figure 4 first point) and storage availability ≈ 1.
        let result = evaluate(&ClusterConfig::abe(), &spec(24, 7)).unwrap();
        let a = result.cfs_availability.point;
        assert!(a > 0.955 && a < 0.99, "ABE CFS availability {a}");
        assert!(result.storage_availability.point > 0.9999);
        // CU is below CFS availability (transient errors) but not by much at
        // ABE scale.
        assert!(result.cluster_utility.point < a);
        assert!(result.cluster_utility.point > a - 0.05);
        // 0-2 disk replacements per week.
        let per_week = result.disk_replacements_per_week.point;
        assert!(per_week > 0.1 && per_week < 3.0, "replacements {per_week}");
        assert_eq!(result.replications, 24);
    }

    #[test]
    fn petascale_availability_drops_toward_the_paper_value() {
        // Figure 4: CFS availability falls from ≈0.97 to ≈0.91 as the system
        // scales to petaflop-petabyte; CU falls further.
        let result = evaluate(&ClusterConfig::petascale(), &spec(16, 11)).unwrap();
        let a = result.cfs_availability.point;
        assert!(a > 0.85 && a < 0.945, "petascale CFS availability {a}");
        assert!(result.storage_availability.point > 0.999);
        assert!(
            result.cluster_utility.point < a - 0.02,
            "CU should fall well below CFS availability"
        );
    }

    #[test]
    fn spare_oss_improves_petascale_availability() {
        let base = evaluate(&ClusterConfig::petascale(), &spec(16, 13)).unwrap();
        let spared = evaluate(&ClusterConfig::petascale().with_spare_oss(), &spec(16, 13)).unwrap();
        let gain = spared.cfs_availability.point - base.cfs_availability.point;
        assert!(gain > 0.005, "spare OSS should improve availability, gain {gain}");
        assert!(gain < 0.12, "gain should stay in a plausible range, gain {gain}");
    }

    #[test]
    fn multipath_network_improves_cluster_utility() {
        let base = evaluate(&ClusterConfig::petascale(), &spec(12, 17)).unwrap();
        let multi =
            evaluate(&ClusterConfig::petascale().with_multipath_network(), &spec(12, 17)).unwrap();
        assert!(
            multi.cluster_utility.point > base.cluster_utility.point,
            "multipath {} vs base {}",
            multi.cluster_utility.point,
            base.cluster_utility.point
        );
    }
}
