//! Running the composed cluster model and summarising its dependability.

use probdist::stats::{confidence_interval, ConfidenceInterval, RunningStats};
use serde::{Deserialize, Serialize};

use sanet::Experiment;

use crate::config::ClusterConfig;
use crate::model::build_cluster_model;
use crate::rewards::{
    cluster_utility, standard_rewards, CFS_AVAILABILITY, DISK_REPLACEMENTS, LOST_NODE_HOURS,
    MEAN_OSS_PAIRS_DOWN, STORAGE_AVAILABILITY,
};
use crate::CfsError;

/// Dependability measures of a cluster configuration, each with a 95 %
/// confidence interval across simulation replications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterDependability {
    /// Name of the evaluated configuration.
    pub config_name: String,
    /// CFS availability (Section 4.2).
    pub cfs_availability: ConfidenceInterval,
    /// Storage (RAID subsystem) availability.
    pub storage_availability: ConfidenceInterval,
    /// Cluster utility (CU).
    pub cluster_utility: ConfidenceInterval,
    /// Disk replacements per week.
    pub disk_replacements_per_week: ConfidenceInterval,
    /// Time-averaged number of OSS pairs simultaneously down.
    pub mean_oss_pairs_down: ConfidenceInterval,
    /// Number of replications run.
    pub replications: usize,
    /// Simulation horizon of each replication, hours.
    pub horizon_hours: f64,
}

/// Builds the composed model for `config`, simulates `replications`
/// independent replications of `horizon_hours` each, and returns every
/// reward measure with confidence intervals.
///
/// # Errors
///
/// Returns [`CfsError::InvalidConfig`] for an invalid configuration or run
/// parameters and propagates simulation errors.
pub fn evaluate_cluster(
    config: &ClusterConfig,
    horizon_hours: f64,
    replications: usize,
    seed: u64,
) -> Result<ClusterDependability, CfsError> {
    if replications < 2 {
        return Err(CfsError::InvalidConfig { reason: "at least two replications are required".into() });
    }
    if !(horizon_hours.is_finite() && horizon_hours > 0.0) {
        return Err(CfsError::InvalidConfig {
            reason: format!("horizon must be positive, got {horizon_hours}"),
        });
    }

    let cluster = build_cluster_model(config)?;
    let rewards = standard_rewards(&cluster);
    let mut experiment = Experiment::new(cluster.model.clone(), horizon_hours);
    for reward in rewards {
        experiment.add_reward(reward);
    }

    let runs = experiment.run_raw(replications, seed)?;

    let mut cfs = RunningStats::new();
    let mut storage = RunningStats::new();
    let mut cu = RunningStats::new();
    let mut replacements = RunningStats::new();
    let mut oss_down = RunningStats::new();
    for run in &runs {
        let availability = run.reward(CFS_AVAILABILITY)?;
        let lost = run.reward(LOST_NODE_HOURS)?;
        cfs.push(availability);
        storage.push(run.reward(STORAGE_AVAILABILITY)?);
        cu.push(cluster_utility(availability, lost, config.compute_nodes, horizon_hours));
        replacements.push(run.reward(DISK_REPLACEMENTS)? / (horizon_hours / 168.0));
        oss_down.push(run.reward(MEAN_OSS_PAIRS_DOWN)?);
    }

    Ok(ClusterDependability {
        config_name: config.name.clone(),
        cfs_availability: confidence_interval(&cfs, 0.95)?,
        storage_availability: confidence_interval(&storage, 0.95)?,
        cluster_utility: confidence_interval(&cu, 0.95)?,
        disk_replacements_per_week: confidence_interval(&replacements, 0.95)?,
        mean_oss_pairs_down: confidence_interval(&oss_down, 0.95)?,
        replications: runs.len(),
        horizon_hours,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const YEAR: f64 = 8760.0;

    #[test]
    fn run_parameters_are_validated() {
        let abe = ClusterConfig::abe();
        assert!(evaluate_cluster(&abe, YEAR, 1, 1).is_err());
        assert!(evaluate_cluster(&abe, 0.0, 8, 1).is_err());
        assert!(evaluate_cluster(&abe, -1.0, 8, 1).is_err());
    }

    #[test]
    fn abe_availability_matches_the_measured_band() {
        // The paper measures ABE CFS availability at about 0.97 (Table 1 /
        // Figure 4 first point) and storage availability ≈ 1.
        let result = evaluate_cluster(&ClusterConfig::abe(), YEAR, 24, 7).unwrap();
        let a = result.cfs_availability.point;
        assert!(a > 0.955 && a < 0.99, "ABE CFS availability {a}");
        assert!(result.storage_availability.point > 0.9999);
        // CU is below CFS availability (transient errors) but not by much at
        // ABE scale.
        assert!(result.cluster_utility.point < a);
        assert!(result.cluster_utility.point > a - 0.05);
        // 0-2 disk replacements per week.
        let per_week = result.disk_replacements_per_week.point;
        assert!(per_week > 0.1 && per_week < 3.0, "replacements {per_week}");
        assert_eq!(result.replications, 24);
    }

    #[test]
    fn petascale_availability_drops_toward_the_paper_value() {
        // Figure 4: CFS availability falls from ≈0.97 to ≈0.91 as the system
        // scales to petaflop-petabyte; CU falls further.
        let result = evaluate_cluster(&ClusterConfig::petascale(), YEAR, 16, 11).unwrap();
        let a = result.cfs_availability.point;
        assert!(a > 0.85 && a < 0.945, "petascale CFS availability {a}");
        assert!(result.storage_availability.point > 0.999);
        assert!(result.cluster_utility.point < a - 0.02, "CU should fall well below CFS availability");
    }

    #[test]
    fn spare_oss_improves_petascale_availability() {
        let base = evaluate_cluster(&ClusterConfig::petascale(), YEAR, 16, 13).unwrap();
        let spared =
            evaluate_cluster(&ClusterConfig::petascale().with_spare_oss(), YEAR, 16, 13).unwrap();
        let gain = spared.cfs_availability.point - base.cfs_availability.point;
        assert!(gain > 0.005, "spare OSS should improve availability, gain {gain}");
        assert!(gain < 0.12, "gain should stay in a plausible range, gain {gain}");
    }

    #[test]
    fn multipath_network_improves_cluster_utility() {
        let base = evaluate_cluster(&ClusterConfig::petascale(), YEAR, 12, 17).unwrap();
        let multi =
            evaluate_cluster(&ClusterConfig::petascale().with_multipath_network(), YEAR, 12, 17).unwrap();
        assert!(
            multi.cluster_utility.point > base.cluster_utility.point,
            "multipath {} vs base {}",
            multi.cluster_utility.point,
            base.cluster_utility.point
        );
    }
}
