//! [`Scenario`]: the uniform evaluation interface every paper artefact —
//! Tables 1–5, Figures 2–4, the four ablations, and raw
//! [`ClusterConfig`] evaluation — implements.
//!
//! A scenario turns a [`RunSpec`] into a [`ScenarioOutput`]: one or more
//! presentation tables plus a flat list of named [`Metric`]s. That single
//! shape is what lets a [`crate::study::Study`] execute any mix of
//! workloads through one entry point and render them through one
//! [`crate::report::Report`] sink, instead of the bespoke
//! driver-per-artefact functions the crate started with.

use serde::{Deserialize, Serialize};

use probdist::stats::ConfidenceInterval;

use crate::analysis::evaluate;
use crate::config::ClusterConfig;
use crate::experiments::ablations::{
    ablation_correlation_with, ablation_raid_parity_with, ablation_repair_time_with,
    ablation_spare_oss_with, AblationResult,
};
use crate::experiments::fig2::figure2_storage_availability_with;
use crate::experiments::fig3::figure3_disk_replacements_with;
use crate::experiments::fig4::figure4_cfs_availability_with;
use crate::experiments::tables::{
    table1_outages, table2_mount_failures, table3_jobs, table4_disk_failures, table5_parameters,
};
use crate::params::ModelParameters;
use crate::report::TextTable;
use crate::run::RunSpec;
use crate::CfsError;

/// One named result value of a scenario, with an optional confidence
/// half-width for Monte-Carlo estimates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    /// The metric's name, e.g. `"cfs_availability"`.
    pub name: String,
    /// The point estimate.
    pub value: f64,
    /// Confidence half-width, when the value is a replicated estimate.
    pub half_width: Option<f64>,
}

/// The uniform result of evaluating one scenario: presentation tables plus
/// machine-readable headline metrics.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioOutput {
    /// Name of the scenario that produced this output.
    pub scenario: String,
    /// Rendered tables, mirroring the paper's presentation.
    pub tables: Vec<TextTable>,
    /// Headline metrics in a flat, machine-readable form.
    pub metrics: Vec<Metric>,
    /// Monte-Carlo replications actually executed (the maximum across the
    /// scenario's evaluation points), recorded so adaptive
    /// precision-targeted runs surface how much work the stopping rule
    /// spent. `None` for purely analytic scenarios.
    pub replications_used: Option<u64>,
    /// Whether a run deadline expired before the full replication budget
    /// was spent: the statistics are valid but cover only the contiguous
    /// prefix of replications that completed (see
    /// [`RunSpec::with_deadline`]).
    pub truncated: bool,
    /// Wall-clock seconds the scenario took to evaluate, attached by
    /// [`crate::study::Study::run`]. `None` for outputs built outside a
    /// study. Nondeterministic by nature — strip it with
    /// [`ScenarioOutput::without_wall_clock`] before comparing outputs of
    /// separate runs bit for bit.
    pub elapsed_seconds: Option<f64>,
}

impl ScenarioOutput {
    /// Creates an empty output for the named scenario.
    pub fn new(scenario: impl Into<String>) -> Self {
        ScenarioOutput {
            scenario: scenario.into(),
            tables: Vec::new(),
            metrics: Vec::new(),
            replications_used: None,
            truncated: false,
            elapsed_seconds: None,
        }
    }

    /// Records the number of replications actually executed.
    pub fn with_replications_used(mut self, replications: usize) -> Self {
        self.replications_used = Some(replications as u64);
        self
    }

    /// Marks whether a deadline truncated the scenario's replication
    /// budget.
    pub fn with_truncated(mut self, truncated: bool) -> Self {
        self.truncated = truncated;
        self
    }

    /// Records the wall-clock seconds the evaluation took.
    pub fn with_elapsed_seconds(mut self, seconds: f64) -> Self {
        self.elapsed_seconds = Some(seconds);
        self
    }

    /// Drops the wall-clock timing, leaving only the deterministic
    /// statistics — outputs of two runs with the same seed and count then
    /// compare equal even though their timings differ.
    pub fn without_wall_clock(mut self) -> Self {
        self.elapsed_seconds = None;
        self
    }

    /// Appends a presentation table.
    pub fn with_table(mut self, table: TextTable) -> Self {
        self.tables.push(table);
        self
    }

    /// Appends a point metric.
    pub fn with_metric(mut self, name: impl Into<String>, value: f64) -> Self {
        self.metrics.push(Metric { name: name.into(), value, half_width: None });
        self
    }

    /// Appends a metric carrying a confidence interval.
    pub fn with_metric_ci(
        mut self,
        name: impl Into<String>,
        interval: &ConfidenceInterval,
    ) -> Self {
        self.metrics.push(Metric {
            name: name.into(),
            value: interval.point,
            half_width: Some(interval.half_width),
        });
        self
    }

    /// Looks up a metric's point value by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|m| m.name == name).map(|m| m.value)
    }
}

/// A named, uniformly-evaluable workload: the single interface through
/// which every paper artefact (and any new workload) is executed.
///
/// Implementations must be [`Send`] + [`Sync`] so a
/// [`crate::study::Study`] can evaluate scenarios from worker threads.
pub trait Scenario: Send + Sync {
    /// A stable, human-readable scenario name (used for report sections and
    /// result lookup).
    fn name(&self) -> &str;

    /// Evaluates the scenario under the given run spec.
    ///
    /// # Errors
    ///
    /// Returns [`CfsError::InvalidConfig`] for an invalid spec or
    /// configuration and propagates simulation errors.
    fn evaluate(&self, spec: &RunSpec) -> Result<ScenarioOutput, CfsError>;
}

/// Raw cluster evaluation: any [`ClusterConfig`] is itself a scenario whose
/// output is its [`crate::analysis::ClusterDependability`] measures.
impl Scenario for ClusterConfig {
    fn name(&self) -> &str {
        &self.name
    }

    fn evaluate(&self, spec: &RunSpec) -> Result<ScenarioOutput, CfsError> {
        let result = evaluate(self, spec)?;
        let mut table = TextTable::new(
            format!("Cluster dependability: {}", self.name),
            &["Measure", "Estimate", "±", "Level"],
        );
        for (label, interval) in [
            ("CFS availability", &result.cfs_availability),
            ("Storage availability", &result.storage_availability),
            ("Cluster utility (CU)", &result.cluster_utility),
            ("Disk replacements/week", &result.disk_replacements_per_week),
            ("Mean OSS pairs down", &result.mean_oss_pairs_down),
        ] {
            table.add_row(&[
                label.to_string(),
                format!("{:.5}", interval.point),
                format!("{:.5}", interval.half_width),
                format!("{:.0}%", interval.level * 100.0),
            ]);
        }
        Ok(ScenarioOutput::new(&self.name)
            .with_table(table)
            .with_replications_used(result.replications)
            .with_truncated(result.truncated)
            .with_metric_ci("cfs_availability", &result.cfs_availability)
            .with_metric_ci("storage_availability", &result.storage_availability)
            .with_metric_ci("cluster_utility", &result.cluster_utility)
            .with_metric_ci("disk_replacements_per_week", &result.disk_replacements_per_week)
            .with_metric_ci("mean_oss_pairs_down", &result.mean_oss_pairs_down))
    }
}

/// Table 1: user-visible Lustre-FS outages and the SAN availability they
/// imply.
#[derive(Debug, Clone, Copy, Default)]
pub struct Table1Outages;

impl Scenario for Table1Outages {
    fn name(&self) -> &str {
        "table1_outages"
    }

    fn evaluate(&self, spec: &RunSpec) -> Result<ScenarioOutput, CfsError> {
        spec.validate()?;
        let result = table1_outages(spec.base_seed())?;
        Ok(ScenarioOutput::new(self.name())
            .with_table(result.to_table())
            .with_metric("san_availability", result.availability)
            .with_metric("outages", result.analysis.rows().len() as f64))
    }
}

/// Table 2: Lustre mount failures reported by compute nodes, per day.
#[derive(Debug, Clone, Copy, Default)]
pub struct Table2MountFailures;

impl Scenario for Table2MountFailures {
    fn name(&self) -> &str {
        "table2_mount_failures"
    }

    fn evaluate(&self, spec: &RunSpec) -> Result<ScenarioOutput, CfsError> {
        spec.validate()?;
        let result = table2_mount_failures(spec.base_seed())?;
        Ok(ScenarioOutput::new(self.name())
            .with_table(result.to_table())
            .with_metric("storm_days", result.analysis.days().len() as f64)
            .with_metric("peak_day_nodes", result.analysis.peak_day_nodes() as f64))
    }
}

/// Table 3: job execution statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct Table3Jobs;

impl Scenario for Table3Jobs {
    fn name(&self) -> &str {
        "table3_jobs"
    }

    fn evaluate(&self, spec: &RunSpec) -> Result<ScenarioOutput, CfsError> {
        spec.validate()?;
        let result = table3_jobs(spec.base_seed())?;
        Ok(ScenarioOutput::new(self.name())
            .with_table(result.to_table())
            .with_metric("total_jobs", result.analysis.total_jobs as f64)
            .with_metric("transient_to_other_ratio", result.analysis.transient_to_other_ratio())
            .with_metric("jobs_per_hour", result.analysis.jobs_per_hour()))
    }
}

/// Table 4: disk failures and their Weibull survival analysis.
#[derive(Debug, Clone, Copy, Default)]
pub struct Table4DiskWeibull;

impl Scenario for Table4DiskWeibull {
    fn name(&self) -> &str {
        "table4_disk_weibull"
    }

    fn evaluate(&self, spec: &RunSpec) -> Result<ScenarioOutput, CfsError> {
        spec.validate()?;
        let result = table4_disk_failures(spec.base_seed())?;
        Ok(ScenarioOutput::new(self.name())
            .with_table(result.to_table())
            .with_metric("weibull_shape", result.weibull.shape)
            .with_metric("weibull_shape_std_error", result.weibull.shape_std_error)
            .with_metric("mean_replacements_per_week", result.mean_per_week))
    }
}

/// Table 5: the simulation model parameters.
#[derive(Debug, Clone, Copy, Default)]
pub struct Table5Parameters;

impl Scenario for Table5Parameters {
    fn name(&self) -> &str {
        "table5_parameters"
    }

    fn evaluate(&self, spec: &RunSpec) -> Result<ScenarioOutput, CfsError> {
        spec.validate()?;
        let table = table5_parameters(&ModelParameters::abe());
        let parameters = table.len() as f64;
        Ok(ScenarioOutput::new(self.name()).with_table(table).with_metric("parameters", parameters))
    }
}

/// Figure 2: storage availability versus scale for the paper's
/// configuration tuples. An empty `capacities_tb` runs the paper's
/// 96 TB → 12 PB sweep.
#[derive(Debug, Clone, Default)]
pub struct Figure2StorageAvailability {
    /// Capacity sweep override, terabytes.
    pub capacities_tb: Vec<f64>,
}

impl Scenario for Figure2StorageAvailability {
    fn name(&self) -> &str {
        "figure2_storage_availability"
    }

    fn evaluate(&self, spec: &RunSpec) -> Result<ScenarioOutput, CfsError> {
        let result = figure2_storage_availability_with(&self.capacities_tb, spec)?;
        let mut output = ScenarioOutput::new(self.name())
            .with_table(result.to_table())
            .with_replications_used(result.replications);
        for series in &result.series {
            // Both sweep endpoints: the small end is the ABE validation
            // point, the large end is the petascale claim.
            let endpoints = [series.points.first(), series.points.last()];
            let mut seen_tb = None;
            for point in endpoints.into_iter().flatten() {
                if seen_tb == Some(point.capacity_tb) {
                    continue;
                }
                seen_tb = Some(point.capacity_tb);
                let at = format!("{} @{:.0}TB", series.label, point.capacity_tb);
                output = output
                    .with_metric_ci(format!("availability {at}"), &point.availability)
                    .with_metric(format!("prob_any_data_loss {at}"), point.prob_any_data_loss);
            }
        }
        Ok(output)
    }
}

/// Figure 3: disk replacements per week versus scale. An empty
/// `disk_counts` runs the paper's 480 → 4800 sweep.
#[derive(Debug, Clone, Default)]
pub struct Figure3DiskReplacements {
    /// Disk-count sweep override.
    pub disk_counts: Vec<u32>,
}

impl Scenario for Figure3DiskReplacements {
    fn name(&self) -> &str {
        "figure3_disk_replacements"
    }

    fn evaluate(&self, spec: &RunSpec) -> Result<ScenarioOutput, CfsError> {
        let result = figure3_disk_replacements_with(&self.disk_counts, spec)?;
        let mut output = ScenarioOutput::new(self.name())
            .with_table(result.to_table())
            .with_replications_used(result.replications);
        for series in &result.series {
            // Both sweep endpoints: the 480-disk end is the paper's ABE
            // 0–2/week claim, the top end is the scaling cost argument.
            let endpoints = [series.points.first(), series.points.last()];
            let mut seen_disks = None;
            for point in endpoints.into_iter().flatten() {
                if seen_disks == Some(point.disks) {
                    continue;
                }
                seen_disks = Some(point.disks);
                let at = format!("{} @{} disks", series.label, point.disks);
                output = output
                    .with_metric_ci(
                        format!("replacements_per_week {at}"),
                        &point.simulated_per_week,
                    )
                    .with_metric(format!("analytic_per_week {at}"), point.analytic_per_week);
            }
        }
        Ok(output)
    }
}

/// Figure 4: CFS availability and cluster utility as the ABE design scales
/// to a petaflop–petabyte system. An empty `capacities_tb` runs the default
/// five-point sweep.
#[derive(Debug, Clone, Default)]
pub struct Figure4CfsAvailability {
    /// Capacity sweep override, terabytes.
    pub capacities_tb: Vec<f64>,
}

impl Scenario for Figure4CfsAvailability {
    fn name(&self) -> &str {
        "figure4_cfs_availability"
    }

    fn evaluate(&self, spec: &RunSpec) -> Result<ScenarioOutput, CfsError> {
        let result = figure4_cfs_availability_with(&self.capacities_tb, spec)?;
        let mut output = ScenarioOutput::new(self.name())
            .with_table(result.to_table())
            .with_replications_used(result.replications);
        if let (Some(first), Some(last)) = (result.points.first(), result.points.last()) {
            output = output
                .with_metric_ci("cfs_availability_first", &first.cfs_availability)
                .with_metric_ci("cfs_availability_last", &last.cfs_availability)
                .with_metric_ci("cluster_utility_last", &last.cluster_utility)
                .with_metric(
                    "spare_oss_gain_last",
                    last.cfs_availability_spare_oss.point - last.cfs_availability.point,
                );
        }
        Ok(output)
    }
}

/// Converts an [`AblationResult`] into the uniform scenario output shape.
fn ablation_output(name: &str, result: &AblationResult) -> ScenarioOutput {
    let mut output = ScenarioOutput::new(name)
        .with_table(result.to_table())
        .with_replications_used(result.replications);
    for point in &result.points {
        output =
            output.with_metric_ci(format!("availability {}", point.label), &point.availability);
        if let Some((label, value)) = &point.secondary {
            output = output.with_metric(format!("{label} {}", point.label), *value);
        }
    }
    output
}

/// Ablation: RAID parity width (8+1 / 8+2 / 8+3) at petascale.
#[derive(Debug, Clone, Copy, Default)]
pub struct RaidParityAblation;

impl Scenario for RaidParityAblation {
    fn name(&self) -> &str {
        "ablation_raid_parity"
    }

    fn evaluate(&self, spec: &RunSpec) -> Result<ScenarioOutput, CfsError> {
        Ok(ablation_output(self.name(), &ablation_raid_parity_with(spec)?))
    }
}

/// Ablation: disk replacement time (1 h / 4 h / 12 h) at petascale.
#[derive(Debug, Clone, Copy, Default)]
pub struct RepairTimeAblation;

impl Scenario for RepairTimeAblation {
    fn name(&self) -> &str {
        "ablation_repair_time"
    }

    fn evaluate(&self, spec: &RunSpec) -> Result<ScenarioOutput, CfsError> {
        Ok(ablation_output(self.name(), &ablation_repair_time_with(spec)?))
    }
}

/// Ablation: standby spare OSS on/off at petascale.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpareOssAblation;

impl Scenario for SpareOssAblation {
    fn name(&self) -> &str {
        "ablation_spare_oss"
    }

    fn evaluate(&self, spec: &RunSpec) -> Result<ScenarioOutput, CfsError> {
        Ok(ablation_output(self.name(), &ablation_spare_oss_with(spec)?))
    }
}

/// Ablation: correlated-failure propagation probability at petascale.
#[derive(Debug, Clone, Copy, Default)]
pub struct CorrelationAblation;

impl Scenario for CorrelationAblation {
    fn name(&self) -> &str {
        "ablation_correlation"
    }

    fn evaluate(&self, spec: &RunSpec) -> Result<ScenarioOutput, CfsError> {
        Ok(ablation_output(self.name(), &ablation_correlation_with(spec)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> RunSpec {
        RunSpec::new().with_horizon_hours(2000.0).with_replications(4).with_base_seed(3)
    }

    #[test]
    fn cluster_config_is_a_scenario() {
        let abe = ClusterConfig::abe();
        assert_eq!(Scenario::name(&abe), "ABE");
        let output = Scenario::evaluate(&abe, &quick_spec()).unwrap();
        assert_eq!(output.scenario, "ABE");
        assert_eq!(output.tables.len(), 1);
        let availability = output.metric("cfs_availability").unwrap();
        assert!(availability > 0.8 && availability <= 1.0);
        assert!(output.metric("nonexistent").is_none());
        // CI-carrying metrics report their half-width.
        assert!(output.metrics.iter().any(|m| m.half_width.is_some()));
    }

    #[test]
    fn table_scenarios_produce_tables_and_metrics() {
        let spec = quick_spec();
        let scenarios: Vec<Box<dyn Scenario>> = vec![
            Box::new(Table1Outages),
            Box::new(Table2MountFailures),
            Box::new(Table3Jobs),
            Box::new(Table4DiskWeibull),
            Box::new(Table5Parameters),
        ];
        for scenario in &scenarios {
            let output = scenario.evaluate(&spec).unwrap();
            assert_eq!(output.scenario, scenario.name());
            assert!(!output.tables.is_empty(), "{}", scenario.name());
            assert!(!output.metrics.is_empty(), "{}", scenario.name());
        }
    }

    #[test]
    fn sweep_scenarios_honour_overrides() {
        let spec = quick_spec();
        let fig2 = Figure2StorageAvailability { capacities_tb: vec![96.0] };
        let output = fig2.evaluate(&spec).unwrap();
        // One availability metric and one data-loss metric per series.
        assert_eq!(output.metrics.len(), 10);
        assert!(output.metrics.iter().all(|m| m.name.contains("8+")));

        let fig3 = Figure3DiskReplacements { disk_counts: vec![480] };
        let output = fig3.evaluate(&spec).unwrap();
        assert_eq!(output.metrics.len(), 8);

        let fig4 = Figure4CfsAvailability { capacities_tb: vec![96.0] };
        let output = fig4.evaluate(&spec).unwrap();
        assert!(output.metric("cfs_availability_first").is_some());
    }

    #[test]
    fn scenario_outputs_serialise_to_json() {
        let output = Table5Parameters.evaluate(&quick_spec()).unwrap();
        let json = serde::to_json(&output);
        assert!(json.contains("\"scenario\":\"table5_parameters\""));
        assert!(json.contains("\"metrics\""));
        assert!(json.contains("\"tables\""));
    }

    #[test]
    fn invalid_specs_are_rejected_by_every_scenario() {
        let bad = RunSpec::new().with_replications(1);
        assert!(Table1Outages.evaluate(&bad).is_err());
        assert!(Figure2StorageAvailability::default().evaluate(&bad).is_err());
        assert!(RaidParityAblation.evaluate(&bad).is_err());
        assert!(Scenario::evaluate(&ClusterConfig::abe(), &bad).is_err());
    }
}
