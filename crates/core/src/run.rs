//! [`RunSpec`]: the validated, named-field description of *how* to run an
//! evaluation — simulation horizon, replication policy (a fixed count or
//! an adaptive [`PrecisionTarget`]), base seed, confidence level, and
//! worker-thread count.
//!
//! `RunSpec` replaces the positional-argument convention
//! (`evaluate_cluster(config, horizon, reps, seed)`) that made call sites
//! easy to get wrong: every knob is set by name, every value is validated
//! in one place, and the same spec drives a single configuration, a
//! [`crate::scenario::Scenario`], or a whole [`crate::study::Study`].

use probdist::stats::StoppingRule;
use probdist::telemetry::TelemetryConfig;
use serde::{Deserialize, Serialize};

use crate::CfsError;

/// Hard cap on replications per evaluation: beyond this a run is almost
/// certainly a mis-typed argument (the old positional API made it easy to
/// swap the replication and seed arguments).
pub const MAX_REPLICATIONS: usize = 100_000;

/// Execution parameters shared by every scenario of a study.
///
/// Build one with the fluent constructors and pass it by reference;
/// validation happens once in [`RunSpec::validate`] (called by every
/// consumer) rather than ad hoc at each driver.
///
/// # Example
///
/// ```
/// use cfs_model::RunSpec;
///
/// let spec = RunSpec::new()
///     .with_horizon_hours(8760.0)
///     .with_replications(32)
///     .with_base_seed(42)
///     .with_confidence_level(0.95)
///     .with_workers(4);
/// assert!(spec.validate().is_ok());
/// assert_eq!(spec.replications(), 32);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    horizon_hours: f64,
    replications: usize,
    base_seed: u64,
    confidence_level: f64,
    workers: usize,
    precision: Option<PrecisionTarget>,
    rare_event: Option<RareEventPolicy>,
    failure_policy: FailurePolicy,
    checkpoint: Option<CheckpointPolicy>,
    deadline_seconds: Option<f64>,
    telemetry: Option<TelemetryConfig>,
}

/// What a [`crate::study::Study`] does when one of its scenarios fails —
/// panics during evaluation or returns an error.
///
/// Either way the failure is contained at the scenario boundary: the worker
/// pool survives, sibling scenarios already running are unaffected, and the
/// panic payload is captured as text rather than unwinding the process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailurePolicy {
    /// Stop scheduling further scenarios and return the first failure as a
    /// [`CfsError`]. In-flight scenarios finish but their outputs are
    /// discarded. This is the default: a study is usually a paper artefact
    /// where a missing scenario invalidates the comparison.
    #[default]
    Abort,
    /// Keep evaluating the remaining scenarios and record every failure as
    /// a [`crate::report::ScenarioFailure`] in the report, alongside the
    /// outputs of the scenarios that succeeded.
    ContinueAndReport,
}

/// Where and how often an evaluation persists completed replications so an
/// interrupted study can resume without redoing them.
///
/// Set with [`RunSpec::with_checkpoint`]. The file is versioned and
/// checksummed (see [`crate::checkpoint`]); because replication `i` always
/// draws from the stream derived from `(base seed, i)`, a resumed run is
/// bit-identical to an uninterrupted one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Path of the checkpoint file (shared by every scenario of a study;
    /// entries are keyed by scenario name and base seed).
    pub path: String,
    /// Persist after every `every_n` completed replications (≥ 1).
    pub every_n: usize,
}

/// A rare-event estimation policy: how scenarios whose headline measure is
/// a tail probability (data loss, total unavailability) should reach the
/// 10⁻⁶..10⁻¹⁰ regime that plain replication cannot resolve.
///
/// Set with [`RunSpec::with_rare_event`]; honoured by rare-event-aware
/// scenarios such as [`crate::workloads::UltraReliableSweep`] (scenarios
/// whose measures are not rare ignore it).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RareEventPolicy {
    /// Importance sampling with failure biasing: simulate with failure
    /// rates tilted up by `bias_factor` and weight every replication by
    /// its likelihood ratio (see `sanet::rare`).
    ImportanceSampling {
        /// Multiplier applied to the targeted failure rates (> 1).
        bias_factor: f64,
    },
    /// Fixed-effort multilevel splitting over exposure depth (see
    /// `raidsim::splitting`): restart trials from the states that reached
    /// each intermediate exposure level.
    MultilevelSplitting {
        /// Trials per exposure level (per adaptive round, when the spec
        /// also carries a precision target).
        trials_per_level: usize,
    },
}

/// An adaptive replication policy: instead of a fixed replication count,
/// run batches until every Monte-Carlo measure's confidence interval is
/// narrower than `relative_half_width` (relative to its point estimate),
/// bounded by `[min_replications, max_replications]`.
///
/// Built by [`RunSpec::with_precision_target`]; converted to a validated
/// [`probdist::stats::StoppingRule`] by [`RunSpec::stopping_rule`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionTarget {
    /// Target relative CI half-width (e.g. `0.01` for ±1 %).
    pub relative_half_width: f64,
    /// Replications to run before the first precision check.
    pub min_replications: usize,
    /// Hard cap on the number of replications.
    pub max_replications: usize,
}

impl Default for RunSpec {
    /// One simulated year, 16 replications, seed 42, 95 % confidence,
    /// auto-sized worker pool, fixed (non-adaptive) replication count.
    fn default() -> Self {
        RunSpec {
            horizon_hours: 8760.0,
            replications: 16,
            base_seed: 42,
            confidence_level: 0.95,
            workers: 0,
            precision: None,
            rare_event: None,
            failure_policy: FailurePolicy::Abort,
            checkpoint: None,
            deadline_seconds: None,
            telemetry: None,
        }
    }
}

impl RunSpec {
    /// Creates a spec with the default parameters (see [`RunSpec::default`]).
    pub fn new() -> Self {
        RunSpec::default()
    }

    /// Sets the simulation horizon per replication, in hours.
    pub fn with_horizon_hours(mut self, hours: f64) -> Self {
        self.horizon_hours = hours;
        self
    }

    /// Sets the number of independent replications.
    pub fn with_replications(mut self, replications: usize) -> Self {
        self.replications = replications;
        self
    }

    /// Sets the base seed. Replication `i` of any evaluation draws from the
    /// RNG stream derived from this seed and `i`, so results are
    /// reproducible and independent of execution order or parallelism.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets the confidence level for reported intervals (e.g. `0.95`).
    pub fn with_confidence_level(mut self, level: f64) -> Self {
        self.confidence_level = level;
        self
    }

    /// Sets the number of worker threads the study's global work-stealing
    /// pool schedules scenario×replication work units across. `0` (the
    /// default) uses the machine's available parallelism; `1` forces
    /// serial execution. Any value yields bit-identical statistics.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Switches the spec to adaptive, precision-targeted replication: every
    /// Monte-Carlo evaluation runs batches until each of its measures has a
    /// relative CI half-width of at most `relative_half_width`, running at
    /// least `min_replications` and at most `max_replications`. The
    /// replication count actually used is recorded per scenario in the
    /// [`crate::report::Report`].
    ///
    /// An adaptive run that stops after `n` replications is bit-identical
    /// to a fixed run with `n` replications and the same base seed —
    /// replication `i` always draws from the stream derived from
    /// `(base seed, i)`.
    pub fn with_precision_target(
        mut self,
        relative_half_width: f64,
        min_replications: usize,
        max_replications: usize,
    ) -> Self {
        self.precision =
            Some(PrecisionTarget { relative_half_width, min_replications, max_replications });
        self
    }

    /// Clears the precision target, returning to the fixed replication
    /// count.
    pub fn with_fixed_replications(mut self) -> Self {
        self.precision = None;
        self
    }

    /// Sets the rare-event estimation policy rare-event-aware scenarios
    /// honour (importance sampling with failure biasing, or multilevel
    /// splitting). Composes with [`RunSpec::with_precision_target`]: an
    /// adaptive spec drives the rare-event estimator's own stopping loop
    /// (relative half-width on the weighted mean / splitting estimate,
    /// with the minimum non-zero support the stopping rule demands).
    pub fn with_rare_event(mut self, policy: RareEventPolicy) -> Self {
        self.rare_event = Some(policy);
        self
    }

    /// Clears the rare-event policy.
    pub fn without_rare_event(mut self) -> Self {
        self.rare_event = None;
        self
    }

    /// Sets what a study does when a scenario fails (panics or errors):
    /// abort with the first failure (the default) or keep going and record
    /// every failure in the report. See [`FailurePolicy`].
    pub fn with_failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.failure_policy = policy;
        self
    }

    /// Persists completed replications to the checkpoint file at `path`
    /// after every `every_n` replications, so an interrupted run can resume
    /// from the last persisted prefix instead of starting over. A resumed
    /// run is bit-identical to an uninterrupted one (replication `i` always
    /// draws from the stream derived from the base seed and `i`).
    pub fn with_checkpoint(mut self, path: impl Into<String>, every_n: usize) -> Self {
        self.checkpoint = Some(CheckpointPolicy { path: path.into(), every_n });
        self
    }

    /// Clears the checkpoint policy.
    pub fn without_checkpoint(mut self) -> Self {
        self.checkpoint = None;
        self
    }

    /// Sets a soft wall-clock deadline for the whole run. When it expires,
    /// in-flight replications finish, no new ones start, and every
    /// evaluation returns valid statistics over the contiguous prefix of
    /// replications that completed — reports flag the affected scenarios as
    /// truncated and record the replication count actually used. A scenario
    /// that completes fewer than two replications fails with
    /// [`CfsError::DeadlineExpired`] instead (recorded as a failure, never
    /// aborting the study).
    pub fn with_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.deadline_seconds = Some(deadline.as_secs_f64());
        self
    }

    /// Clears the deadline.
    pub fn without_deadline(mut self) -> Self {
        self.deadline_seconds = None;
        self
    }

    /// Opts the run into telemetry: metric recording is enabled for the
    /// duration of [`crate::study::Study::run`] and a
    /// [`probdist::telemetry::TelemetrySnapshot`] covering exactly this
    /// run's work is attached to the [`crate::report::Report`] (rendered
    /// by all three sinks). The config's options add a live stderr
    /// progress line and a Prometheus-style exposition file. Telemetry
    /// never touches an RNG stream or the merge order: statistics are
    /// bit-identical with telemetry on or off, at any worker count.
    pub fn with_telemetry(mut self, config: TelemetryConfig) -> Self {
        self.telemetry = Some(config);
        self
    }

    /// Clears the telemetry config.
    pub fn without_telemetry(mut self) -> Self {
        self.telemetry = None;
        self
    }

    /// The simulation horizon per replication, hours.
    pub fn horizon_hours(&self) -> f64 {
        self.horizon_hours
    }

    /// The number of replications.
    pub fn replications(&self) -> usize {
        self.replications
    }

    /// The base seed.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The confidence level for reported intervals.
    pub fn confidence_level(&self) -> f64 {
        self.confidence_level
    }

    /// The worker-thread count (`0` = auto).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The adaptive precision target, if one is set.
    pub fn precision_target(&self) -> Option<&PrecisionTarget> {
        self.precision.as_ref()
    }

    /// The rare-event estimation policy, if one is set.
    pub fn rare_event(&self) -> Option<&RareEventPolicy> {
        self.rare_event.as_ref()
    }

    /// The failure policy ([`FailurePolicy::Abort`] by default).
    pub fn failure_policy(&self) -> FailurePolicy {
        self.failure_policy
    }

    /// The checkpoint policy, if one is set.
    pub fn checkpoint(&self) -> Option<&CheckpointPolicy> {
        self.checkpoint.as_ref()
    }

    /// The telemetry config, if one is set.
    pub fn telemetry(&self) -> Option<&TelemetryConfig> {
        self.telemetry.as_ref()
    }

    /// The wall-clock deadline, if one is set. A malformed (non-positive or
    /// non-finite) deadline yields `None` here; [`RunSpec::validate`]
    /// reports it as an error.
    pub fn deadline(&self) -> Option<std::time::Duration> {
        self.deadline_seconds
            .filter(|s| s.is_finite() && *s > 0.0)
            .map(std::time::Duration::from_secs_f64)
    }

    /// The validated stopping rule of the precision target, or `None` for a
    /// fixed-count spec.
    ///
    /// # Errors
    ///
    /// Returns [`CfsError::InvalidConfig`] naming the offending parameter
    /// when the precision target is malformed (non-positive or non-finite
    /// half-width, `min < 2`, `min > max`).
    pub fn stopping_rule(&self) -> Result<Option<StoppingRule>, CfsError> {
        self.precision
            .map(|p| {
                StoppingRule::new(p.relative_half_width, p.min_replications, p.max_replications)
                    .map_err(|e| CfsError::InvalidConfig {
                        reason: format!("run spec: invalid precision target: {e}"),
                    })
            })
            .transpose()
    }

    /// A copy of this spec with the base seed offset by `offset` — used by
    /// sweep scenarios so every sweep point gets a well-separated seed while
    /// remaining a pure function of the study's base seed.
    pub fn offset_seed(&self, offset: u64) -> Self {
        let mut spec = self.clone();
        spec.base_seed = self.base_seed.wrapping_add(offset);
        spec
    }

    /// Checks every parameter, returning a [`CfsError::InvalidConfig`] that
    /// names the offending field.
    ///
    /// # Errors
    ///
    /// Rejects a non-finite or non-positive horizon, fewer than 2 or more
    /// than [`MAX_REPLICATIONS`] replications, and a confidence level
    /// outside the open interval (0, 1).
    pub fn validate(&self) -> Result<(), CfsError> {
        if !(self.horizon_hours.is_finite() && self.horizon_hours > 0.0) {
            return Err(CfsError::InvalidConfig {
                reason: format!(
                    "run spec: horizon must be positive and finite, got {}",
                    self.horizon_hours
                ),
            });
        }
        if self.replications < 2 {
            return Err(CfsError::InvalidConfig {
                reason: format!(
                    "run spec: at least two replications are required for a confidence interval, got {}",
                    self.replications
                ),
            });
        }
        if self.replications > MAX_REPLICATIONS {
            return Err(CfsError::InvalidConfig {
                reason: format!(
                    "run spec: {} replications exceeds the {} cap — this is usually a swapped \
                     replications/seed argument",
                    self.replications, MAX_REPLICATIONS
                ),
            });
        }
        if !(self.confidence_level > 0.0 && self.confidence_level < 1.0) {
            return Err(CfsError::InvalidConfig {
                reason: format!(
                    "run spec: confidence level must be in (0, 1), got {}",
                    self.confidence_level
                ),
            });
        }
        if let Some(target) = &self.precision {
            if target.max_replications > MAX_REPLICATIONS {
                return Err(CfsError::InvalidConfig {
                    reason: format!(
                        "run spec: precision target cap of {} replications exceeds the {} limit",
                        target.max_replications, MAX_REPLICATIONS
                    ),
                });
            }
            self.stopping_rule()?;
        }
        if let Some(policy) = &self.checkpoint {
            if policy.path.is_empty() {
                return Err(CfsError::InvalidConfig {
                    reason: "run spec: checkpoint path must not be empty".into(),
                });
            }
            if policy.every_n == 0 {
                return Err(CfsError::InvalidConfig {
                    reason: "run spec: checkpoint interval must be at least one replication, got 0"
                        .into(),
                });
            }
        }
        if let Some(seconds) = self.deadline_seconds {
            if !(seconds.is_finite() && seconds > 0.0) {
                return Err(CfsError::InvalidConfig {
                    reason: format!(
                        "run spec: deadline must be positive and finite, got {seconds} seconds"
                    ),
                });
            }
        }
        if let Some(telemetry) = &self.telemetry {
            telemetry.validate().map_err(|reason| CfsError::InvalidConfig {
                reason: format!("run spec: {reason}"),
            })?;
        }
        match self.rare_event {
            Some(RareEventPolicy::ImportanceSampling { bias_factor })
                if !(bias_factor.is_finite() && bias_factor > 1.0) =>
            {
                Err(CfsError::InvalidConfig {
                    reason: format!(
                        "run spec: importance-sampling bias factor must be finite and above 1 \
                         (failures tilted *up*), got {bias_factor}"
                    ),
                })
            }
            Some(RareEventPolicy::MultilevelSplitting { trials_per_level })
                if !(2..=MAX_REPLICATIONS).contains(&trials_per_level) =>
            {
                Err(CfsError::InvalidConfig {
                    reason: format!(
                        "run spec: splitting needs between 2 and {MAX_REPLICATIONS} trials per \
                         level, got {trials_per_level}"
                    ),
                })
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_valid() {
        assert!(RunSpec::default().validate().is_ok());
        assert_eq!(RunSpec::new(), RunSpec::default());
    }

    #[test]
    fn builder_sets_every_field() {
        let spec = RunSpec::new()
            .with_horizon_hours(100.0)
            .with_replications(8)
            .with_base_seed(7)
            .with_confidence_level(0.9)
            .with_workers(3);
        assert_eq!(spec.horizon_hours(), 100.0);
        assert_eq!(spec.replications(), 8);
        assert_eq!(spec.base_seed(), 7);
        assert_eq!(spec.confidence_level(), 0.9);
        assert_eq!(spec.workers(), 3);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_fields() {
        assert!(RunSpec::new().with_horizon_hours(0.0).validate().is_err());
        assert!(RunSpec::new().with_horizon_hours(f64::NAN).validate().is_err());
        assert!(RunSpec::new().with_horizon_hours(f64::INFINITY).validate().is_err());
        assert!(RunSpec::new().with_replications(1).validate().is_err());
        assert!(RunSpec::new().with_replications(MAX_REPLICATIONS + 1).validate().is_err());
        assert!(RunSpec::new().with_confidence_level(0.0).validate().is_err());
        assert!(RunSpec::new().with_confidence_level(1.0).validate().is_err());
        assert!(RunSpec::new().with_replications(MAX_REPLICATIONS).validate().is_ok());
    }

    #[test]
    fn replication_cap_error_mentions_the_footgun() {
        let err = RunSpec::new().with_replications(20_080_625).validate().unwrap_err();
        assert!(err.to_string().contains("swapped"), "{err}");
    }

    #[test]
    fn precision_target_round_trips_and_validates() {
        let spec = RunSpec::new().with_precision_target(0.02, 8, 128);
        assert!(spec.validate().is_ok());
        let target = spec.precision_target().unwrap();
        assert_eq!(target.relative_half_width, 0.02);
        assert_eq!(target.min_replications, 8);
        assert_eq!(target.max_replications, 128);
        let rule = spec.stopping_rule().unwrap().unwrap();
        assert_eq!(rule.min_replications(), 8);
        assert_eq!(rule.max_replications(), 128);

        // Fixed specs carry no rule.
        assert!(RunSpec::new().stopping_rule().unwrap().is_none());
        assert!(RunSpec::new().precision_target().is_none());
        let cleared = spec.with_fixed_replications();
        assert!(cleared.precision_target().is_none());
    }

    #[test]
    fn malformed_precision_targets_are_rejected() {
        assert!(RunSpec::new().with_precision_target(0.0, 8, 128).validate().is_err());
        assert!(RunSpec::new().with_precision_target(-0.1, 8, 128).validate().is_err());
        assert!(RunSpec::new().with_precision_target(f64::NAN, 8, 128).validate().is_err());
        assert!(RunSpec::new().with_precision_target(0.01, 1, 128).validate().is_err());
        assert!(RunSpec::new().with_precision_target(0.01, 64, 8).validate().is_err());
        assert!(RunSpec::new()
            .with_precision_target(0.01, 8, MAX_REPLICATIONS + 1)
            .validate()
            .is_err());
        let err = RunSpec::new().with_precision_target(0.01, 64, 8).validate().unwrap_err();
        assert!(err.to_string().contains("precision target"), "{err}");
    }

    #[test]
    fn rare_event_policy_round_trips_and_validates() {
        let spec = RunSpec::new()
            .with_rare_event(RareEventPolicy::ImportanceSampling { bias_factor: 50.0 });
        assert!(spec.validate().is_ok());
        assert_eq!(
            spec.rare_event(),
            Some(&RareEventPolicy::ImportanceSampling { bias_factor: 50.0 })
        );
        assert!(spec.clone().without_rare_event().rare_event().is_none());
        assert!(RunSpec::new().rare_event().is_none());

        let splitting = RunSpec::new()
            .with_rare_event(RareEventPolicy::MultilevelSplitting { trials_per_level: 256 });
        assert!(splitting.validate().is_ok());

        // Invalid policies are named in the error.
        for bad in [0.5, 1.0, 0.0, -3.0, f64::NAN, f64::INFINITY] {
            let err = RunSpec::new()
                .with_rare_event(RareEventPolicy::ImportanceSampling { bias_factor: bad })
                .validate()
                .unwrap_err();
            assert!(err.to_string().contains("bias factor"), "{err}");
        }
        for bad in [0, 1, MAX_REPLICATIONS + 1] {
            let err = RunSpec::new()
                .with_rare_event(RareEventPolicy::MultilevelSplitting { trials_per_level: bad })
                .validate()
                .unwrap_err();
            assert!(err.to_string().contains("trials"), "{err}");
        }
    }

    #[test]
    fn failure_policy_defaults_to_abort_and_round_trips() {
        assert_eq!(RunSpec::new().failure_policy(), FailurePolicy::Abort);
        let spec = RunSpec::new().with_failure_policy(FailurePolicy::ContinueAndReport);
        assert_eq!(spec.failure_policy(), FailurePolicy::ContinueAndReport);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn checkpoint_policy_round_trips_and_validates() {
        assert!(RunSpec::new().checkpoint().is_none());
        let spec = RunSpec::new().with_checkpoint("study.ckpt", 4);
        let policy = spec.checkpoint().unwrap();
        assert_eq!(policy.path, "study.ckpt");
        assert_eq!(policy.every_n, 4);
        assert!(spec.validate().is_ok());
        assert!(spec.clone().without_checkpoint().checkpoint().is_none());

        let err = RunSpec::new().with_checkpoint("", 4).validate().unwrap_err();
        assert!(err.to_string().contains("checkpoint path"), "{err}");
        let err = RunSpec::new().with_checkpoint("study.ckpt", 0).validate().unwrap_err();
        assert!(err.to_string().contains("checkpoint interval"), "{err}");
    }

    #[test]
    fn deadline_round_trips_and_validates() {
        use std::time::Duration;
        assert!(RunSpec::new().deadline().is_none());
        let spec = RunSpec::new().with_deadline(Duration::from_millis(1500));
        assert_eq!(spec.deadline(), Some(Duration::from_millis(1500)));
        assert!(spec.validate().is_ok());
        assert!(spec.clone().without_deadline().deadline().is_none());

        let err = RunSpec::new().with_deadline(Duration::from_secs(0)).validate().unwrap_err();
        assert!(err.to_string().contains("deadline"), "{err}");
    }

    #[test]
    fn telemetry_config_round_trips_and_validates() {
        assert!(RunSpec::new().telemetry().is_none());
        let spec = RunSpec::new().with_telemetry(TelemetryConfig::new().with_progress());
        assert!(spec.telemetry().unwrap().progress);
        assert!(spec.validate().is_ok());
        assert!(spec.clone().without_telemetry().telemetry().is_none());

        let err = RunSpec::new()
            .with_telemetry(TelemetryConfig::new().with_progress_interval_ms(0))
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("progress_interval_ms"), "{err}");
    }

    #[test]
    fn offset_seed_only_changes_the_seed() {
        let spec = RunSpec::new().with_base_seed(10).with_replications(4);
        let shifted = spec.offset_seed(5);
        assert_eq!(shifted.base_seed(), 15);
        assert_eq!(shifted.replications(), 4);
        assert_eq!(shifted.horizon_hours(), spec.horizon_hours());
    }
}
