//! Reachability/admissibility driver over the built-in models: the library
//! behind `sanlint --reach` and the CI state-space gate.
//!
//! [`sanet::reach`] explores *one* compiled model; this module runs the
//! exploration over the [`BUILT_IN_MODELS`]
//! registry, aggregates the per-model [`ReachReport`]s into a
//! [`ReachSummary`], and renders them two ways in one output: a state-space
//! table (states, tangible/vanishing split, transitions, completeness,
//! terminal classes, solver admissibility) plus the `SAN04x` diagnostics
//! through the same [`LintSummary`] machinery the structural linter uses —
//! so `--reach` honours `--deny` and the JSON schema CI already parses.
//!
//! Built-ins are *expected* to split: the fail-over pair and Beowulf
//! models are analytically admissible (their exact sparse generators
//! assemble), while the ABE and petascale cluster models are
//! simulation-only — unbounded log-accumulator places and non-exponential
//! timings, each named in the report rather than silently assumed.

use sanet::lint::Severity;
use sanet::{ReachConfig, ReachReport};
use serde::{Serialize, Value};

use crate::lint::{build_built_in, LintSummary, BUILT_IN_MODELS};
use crate::report::TextTable;
use crate::CfsError;

/// Builds the named built-in model and explores its reachable marking
/// graph under `config`.
///
/// # Errors
///
/// Returns [`CfsError::InvalidConfig`] for an unknown name (listing the
/// registry and suggesting the closest entry for plausible typos) and
/// propagates model-construction errors. Analysis findings are *not*
/// errors — they are diagnostics inside the returned report.
pub fn analyze_built_in(name: &str, config: &ReachConfig) -> Result<ReachReport, CfsError> {
    let built = build_built_in(name)?;
    Ok(built.model.analyze_with(config))
}

/// Analyzes every model in [`BUILT_IN_MODELS`] under one budget and deny
/// policy.
///
/// # Errors
///
/// Propagates model-construction errors; findings land in the summary.
pub fn analyze_all(config: &ReachConfig, deny: Severity) -> Result<ReachSummary, CfsError> {
    analyze_models(BUILT_IN_MODELS, config, deny)
}

/// Analyzes a chosen subset of the built-in models under one budget and
/// deny policy.
///
/// # Errors
///
/// Returns [`CfsError::InvalidConfig`] for an unknown model name and
/// propagates construction errors.
pub fn analyze_models(
    names: &[&str],
    config: &ReachConfig,
    deny: Severity,
) -> Result<ReachSummary, CfsError> {
    let mut reports = Vec::with_capacity(names.len());
    for name in names {
        reports.push(analyze_built_in(name, config)?);
    }
    Ok(ReachSummary::new(deny, reports))
}

/// The aggregated result of reachability-analyzing a set of models under
/// one deny level.
#[derive(Debug, Clone)]
pub struct ReachSummary {
    reports: Vec<ReachReport>,
    /// The `SAN04x` diagnostics of every report, aggregated through the
    /// standard lint presentation (deny policy, table, JSON).
    lint: LintSummary,
}

impl ReachSummary {
    fn new(deny: Severity, reports: Vec<ReachReport>) -> ReachSummary {
        let lint =
            LintSummary::new(deny, reports.iter().map(ReachReport::to_lint_report).collect());
        ReachSummary { reports, lint }
    }

    /// The deny level the summary was produced under.
    pub fn deny_level(&self) -> Severity {
        self.lint.deny_level()
    }

    /// The per-model reachability reports, in registry order.
    pub fn reports(&self) -> &[ReachReport] {
        &self.reports
    }

    /// The `SAN04x` diagnostics as a standard lint summary.
    pub fn lint_summary(&self) -> &LintSummary {
        &self.lint
    }

    /// Whether every model is free of diagnostics at or above the deny
    /// level.
    pub fn is_clean(&self) -> bool {
        self.lint.is_clean()
    }

    /// Total diagnostics at or above the deny level, across all models.
    pub fn rejections(&self) -> usize {
        self.lint.rejections()
    }

    /// One row per model: state-space size (tangible + vanishing split),
    /// transition count, completeness under the budget, terminal-class
    /// count, and the solver-admissibility verdict.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(
            format!("sanlint --reach: {} model(s)", self.reports.len()),
            &["model", "states", "tangible", "transitions", "complete", "classes", "solver"],
        );
        for report in &self.reports {
            let classes =
                report.terminal_classes().map_or_else(|| "-".into(), |classes| classes.to_string());
            let solver = if report.admissibility().is_analytic() {
                "analytic".into()
            } else {
                format!("simulation-only ({} reason(s))", report.admissibility().reasons().len())
            };
            table.add_row(&[
                report.model().to_string(),
                report.num_states().to_string(),
                report.num_tangible().to_string(),
                report.num_transitions().to_string(),
                if report.complete() { "yes".into() } else { "budget".into() },
                classes,
                solver,
            ]);
        }
        table
    }

    /// Renders the state-space table, each model's simulation-only reasons,
    /// and the `SAN04x` diagnostics with the standard lint verdict footer.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;

        let mut out = self.to_table().render();
        for report in &self.reports {
            for reason in report.admissibility().reasons() {
                let _ = writeln!(out, "{}: {reason}", report.model());
            }
        }
        out.push('\n');
        out.push_str(&self.lint.to_text());
        out
    }

    /// Renders the summary as indented JSON: the lint schema (`deny_level`,
    /// `clean`, `rejections`, `models`) plus a `reach` array with one
    /// state-space object per model.
    pub fn to_json(&self) -> String {
        serde::to_json_pretty(self)
    }

    /// Applies the deny policy to the `SAN04x` diagnostics: `Err` if any
    /// model carries one at or above the deny level.
    ///
    /// # Errors
    ///
    /// Returns [`CfsError::InvalidConfig`] naming every rejected model and
    /// embedding its offending diagnostics.
    pub fn deny(&self) -> Result<(), CfsError> {
        self.lint.deny()
    }
}

impl Serialize for ReachSummary {
    fn to_value(&self) -> Value {
        let reach = self
            .reports
            .iter()
            .map(|report| {
                let admissibility = report.admissibility();
                Value::Object(vec![
                    ("model".into(), Value::String(report.model().into())),
                    ("states".into(), Value::UInt(report.num_states() as u64)),
                    ("tangible".into(), Value::UInt(report.num_tangible() as u64)),
                    ("vanishing".into(), Value::UInt(report.num_vanishing() as u64)),
                    ("transitions".into(), Value::UInt(report.num_transitions() as u64)),
                    ("complete".into(), Value::Bool(report.complete())),
                    (
                        "terminal_classes".into(),
                        report
                            .terminal_classes()
                            .map_or(Value::Null, |classes| Value::UInt(classes as u64)),
                    ),
                    ("analytic".into(), Value::Bool(admissibility.is_analytic())),
                    (
                        "reasons".into(),
                        Value::Array(
                            admissibility
                                .reasons()
                                .iter()
                                .map(|reason| Value::String(reason.clone()))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let mut fields = match self.lint.to_value() {
            Value::Object(fields) => fields,
            other => vec![("lint".into(), other)],
        };
        fields.push(("reach".into(), Value::Array(reach)));
        Value::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A budget big enough for the bounded built-ins yet quick for the
    /// unbounded ones.
    fn quick() -> ReachConfig {
        ReachConfig { max_states: 3_000, max_transitions: 60_000, ..ReachConfig::default() }
    }

    #[test]
    fn the_analytic_built_ins_assemble_their_generators() {
        for name in ["failover-pair", "beowulf"] {
            let report = analyze_built_in(name, &quick()).unwrap();
            assert!(report.complete(), "{name} must fit the budget");
            assert!(report.admissibility().is_analytic(), "{name}: {:?}", report.admissibility());
            let assembly = report.assemble_generator().unwrap();
            let pi = assembly.ctmc.steady_state().unwrap();
            assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{name} mass {pi:?}");
        }
    }

    #[test]
    fn the_cluster_built_ins_are_simulation_only_with_named_reasons() {
        for name in ["abe", "petascale"] {
            let report = analyze_built_in(name, &quick()).unwrap();
            assert!(!report.admissibility().is_analytic(), "{name} must be simulation-only");
            let reasons = report.admissibility().reasons().join("; ");
            assert!(!reasons.is_empty(), "{name} must say why");
            assert!(report.assemble_generator().is_err());
        }
    }

    #[test]
    fn every_built_in_is_clean_at_deny_warning() {
        let summary = analyze_all(&quick(), Severity::Warning).unwrap();
        assert_eq!(summary.reports().len(), BUILT_IN_MODELS.len());
        assert!(summary.is_clean(), "{}", summary.to_text());
        summary.deny().unwrap();
        // SAN044 (state-space size) is always reported at Info, so deny
        // level Info is guaranteed to reject — the CLI test relies on it.
        let strict = analyze_all(&quick(), Severity::Info).unwrap();
        assert!(!strict.is_clean());
        assert!(strict.deny().is_err());
    }

    #[test]
    fn unknown_names_get_the_registry_and_a_suggestion() {
        let err = analyze_built_in("beowolf", &quick()).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("did you mean 'beowulf'?"), "{text}");
        assert!(text.contains("failover-pair"), "{text}");
    }

    #[test]
    fn text_rendering_shows_the_table_and_the_verdicts() {
        let summary =
            analyze_models(&["failover-pair", "abe"], &quick(), Severity::Warning).unwrap();
        let text = summary.to_text();
        assert!(text.contains("failover_pair"), "{text}");
        assert!(text.contains("analytic"), "{text}");
        assert!(text.contains("simulation-only"), "{text}");
        assert!(text.contains("SAN044"), "{text}");
        assert!(text.contains("verdict: clean"), "{text}");
    }

    #[test]
    fn json_rendering_has_a_stable_schema() {
        let summary = analyze_models(&["failover-pair"], &quick(), Severity::Warning).unwrap();
        let json = summary.to_json();
        for key in [
            "\"deny_level\"",
            "\"clean\"",
            "\"rejections\"",
            "\"models\"",
            "\"reach\"",
            "\"states\"",
            "\"tangible\"",
            "\"vanishing\"",
            "\"transitions\"",
            "\"complete\"",
            "\"terminal_classes\"",
            "\"analytic\"",
            "\"reasons\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"analytic\": true"), "{json}");
        assert!(json.contains("\"clean\": true"), "{json}");
    }
}
