//! Dependability model of the NCSA ABE cluster file system, scaled to
//! petascale — the primary contribution of *"Scaling File Systems to Support
//! Petascale Clusters: A Dependability Analysis to Support Informed Design
//! Choices"* (Gaonkar, Rozier, Tong, Sanders).
//!
//! The crate assembles the substrates into the paper's composed model
//! (Figure 1) and its evaluation (Section 5):
//!
//! * [`params`] — the Table 5 model parameters with ABE defaults, valid
//!   ranges, and provenance.
//! * [`config`] — cluster configurations: the ABE baseline, the
//!   petaflop–petabyte target, and interpolated scale points, including the
//!   spare-OSS and multi-path mitigation options evaluated in Section 5.2.
//! * [`model`] — the stochastic activity network of the cluster: CLIENT,
//!   OSS (metadata + file-server fail-over pairs), OSS_SAN_NW, SAN, and
//!   DDN_UNITS submodels joined over shared places, built on the
//!   [`sanet`] engine.
//! * [`rewards`] — the paper's reward variables: CFS availability, storage
//!   availability, cluster utility (CU), and disk-replacement rate.
//! * [`analysis`] — runs the composed model and returns the reward
//!   estimates with confidence intervals.
//! * [`experiments`] — one driver per table and figure of the evaluation
//!   (Tables 1–5, Figures 2–4) plus the ablations listed in DESIGN.md.
//! * [`report`] — plain-text table rendering for the experiment drivers.
//!
//! # Example
//!
//! ```no_run
//! use cfs_model::config::ClusterConfig;
//! use cfs_model::analysis::evaluate_cluster;
//!
//! # fn main() -> Result<(), cfs_model::CfsError> {
//! let abe = ClusterConfig::abe();
//! let result = evaluate_cluster(&abe, 8760.0, 32, 42)?;
//! println!("CFS availability: {}", result.cfs_availability);
//! println!("Cluster utility:  {}", result.cluster_utility);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod config;
mod error;
pub mod experiments;
pub mod model;
pub mod params;
pub mod report;
pub mod rewards;

pub use analysis::{evaluate_cluster, ClusterDependability};
pub use config::ClusterConfig;
pub use error::CfsError;
pub use params::ModelParameters;

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClusterConfig>();
        assert_send_sync::<ModelParameters>();
        assert_send_sync::<CfsError>();
        assert_send_sync::<ClusterDependability>();
    }
}
