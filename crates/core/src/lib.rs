//! Dependability model of the NCSA ABE cluster file system, scaled to
//! petascale — the primary contribution of *"Scaling File Systems to Support
//! Petascale Clusters: A Dependability Analysis to Support Informed Design
//! Choices"* (Gaonkar, Rozier, Tong, Sanders).
//!
//! The crate assembles the substrates into the paper's composed model
//! (Figure 1) and its evaluation (Section 5):
//!
//! * [`params`] — the Table 5 model parameters with ABE defaults, valid
//!   ranges, and provenance.
//! * [`config`] — cluster configurations: the ABE baseline, the
//!   petaflop–petabyte target, and interpolated scale points, including the
//!   spare-OSS and multi-path mitigation options evaluated in Section 5.2.
//! * [`model`] — the stochastic activity network of the cluster: CLIENT,
//!   OSS (metadata + file-server fail-over pairs), OSS_SAN_NW, SAN, and
//!   DDN_UNITS submodels joined over shared places, built on the
//!   [`sanet`] engine.
//! * [`rewards`] — the paper's reward variables: CFS availability, storage
//!   availability, cluster utility (CU), and disk-replacement rate.
//! * [`analysis`] — runs the composed model and returns the reward
//!   estimates with confidence intervals.
//! * [`run`] — the [`RunSpec`] builder: horizon, replication policy (a
//!   fixed count or an adaptive [`PrecisionTarget`]), base seed,
//!   confidence level, and worker-thread count for any evaluation.
//! * [`scenario`] — the [`Scenario`] trait implemented by every paper
//!   artefact (Tables 1–5, Figures 2–4, the four ablations) and by raw
//!   [`ClusterConfig`] evaluation.
//! * [`study`] — the [`Study`] runner: schedules every
//!   scenario×replication work unit of a scenario set onto one global
//!   work-stealing pool, with bit-identical serial/parallel statistics.
//! * [`experiments`] — the underlying experiment drivers the scenarios
//!   wrap, one per table and figure of the evaluation.
//! * [`sweep`] — the design-space sweep driver: cartesian parameter grids
//!   ([`DesignSpace`]) evaluated as one scenario ([`SweepScenario`]) with
//!   per-point adaptive stopping and winner selection.
//! * [`workloads`] — non-paper workload families riding the sweep driver:
//!   the replication-vs-RAID redundancy comparison, the Beowulf
//!   performability sweep, and the ultra-reliable sweep that reaches
//!   10⁻⁶..10⁻¹⁰ data-loss probabilities by multilevel splitting under a
//!   [`RareEventPolicy`].
//! * [`report`] — the unified [`Report`] sink: aligned text tables, CSV,
//!   and JSON rendering for every result, including the contained
//!   [`ScenarioFailure`]s of a fault-tolerant run.
//! * [`checkpoint`] — versioned, checksummed persistence of completed
//!   replications, so a killed study resumes bit-identically via
//!   [`RunSpec::with_checkpoint`].
//!
//! # Example
//!
//! Evaluate one configuration directly, then every paper artefact through
//! the single `Study` entry point:
//!
//! ```no_run
//! use cfs_model::{analysis, ClusterConfig, ReportFormat, RunSpec, Study};
//!
//! # fn main() -> Result<(), cfs_model::CfsError> {
//! let spec = RunSpec::new()
//!     .with_horizon_hours(8760.0)
//!     .with_replications(32)
//!     .with_base_seed(42)
//!     .with_workers(4);
//!
//! // A single configuration…
//! let result = analysis::evaluate(&ClusterConfig::abe(), &spec)?;
//! println!("CFS availability: {}", result.cfs_availability);
//!
//! // …or any mix of scenarios, rendered through one report sink.
//! let report = Study::paper_artefacts().run(&spec)?;
//! println!("{}", report.render(ReportFormat::Text));
//! println!("{}", report.render(ReportFormat::Json));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod checkpoint;
pub mod config;
mod error;
pub mod experiments;
pub mod lint;
pub mod model;
pub mod params;
pub mod reach;
pub mod report;
pub mod rewards;
pub mod run;
pub mod scenario;
pub mod study;
pub mod sweep;
pub mod workloads;

pub use analysis::ClusterDependability;
pub use config::ClusterConfig;
pub use error::CfsError;
pub use lint::{build_built_in, lint_all, lint_built_in, BuiltIn, LintSummary, BUILT_IN_MODELS};
pub use params::ModelParameters;
pub use probdist::telemetry::{TelemetryConfig, TelemetrySnapshot};
pub use reach::{analyze_all, analyze_built_in, ReachSummary};
pub use report::{Report, ReportFormat, ScenarioFailure, TextTable};
pub use run::{CheckpointPolicy, FailurePolicy, PrecisionTarget, RareEventPolicy, RunSpec};
pub use scenario::{Metric, Scenario, ScenarioOutput};
pub use study::Study;
pub use sweep::{DesignPoint, DesignSpace, Objective, PointOutcome, SweepScenario};
pub use workloads::{
    BeowulfPerformabilitySweep, RedundancyScheme, ReplicationVsRaid, UltraReliableSweep,
};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClusterConfig>();
        assert_send_sync::<ModelParameters>();
        assert_send_sync::<CfsError>();
        assert_send_sync::<ClusterDependability>();
    }
}
