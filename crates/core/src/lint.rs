//! Static-analysis driver over the built-in models: the library behind the
//! `sanlint` binary and the CI lint gate.
//!
//! [`sanet::lint`] knows how to analyse *one* compiled [`sanet::Model`];
//! this module adds the registry of models this crate ships ([`BUILT_IN_MODELS`]),
//! builds each with its standard reward set, and aggregates the per-model
//! [`LintReport`]s into a [`LintSummary`] renderable as an aligned
//! [`TextTable`], plain text, or JSON — the same presentation machinery the
//! experiment reports use.
//!
//! The deny policy mirrors the per-model [`LintReport::deny`]: a summary is
//! *clean* when no model carries a diagnostic at or above the deny level.
//! CI runs `sanlint --deny warning` over every built-in model, so the
//! shipped models are pinned free of errors *and* warnings; informational
//! diagnostics (certified invariants, conservative declarations) are
//! expected and reported.

use sanet::beowulf::{build_beowulf_model, BeowulfConfig};
use sanet::lint::{LintConfig, LintReport, Severity};
use sanet::rare;
use sanet::reward::RewardSpec;
use sanet::Model;
use serde::{Serialize, Value};

use crate::config::ClusterConfig;
use crate::model::build_cluster_model;
use crate::report::TextTable;
use crate::rewards::standard_rewards;
use crate::CfsError;

/// Names of the models `sanlint` can analyse, in report order:
///
/// * `abe` — the paper's ABE cluster (Section 4) with the standard rewards.
/// * `abe-spare` — ABE with the warm-spare OSS mitigation (Section 5.1).
/// * `petascale` — the extrapolated petascale configuration (Section 5).
/// * `petascale-mitigated` — petascale with spare OSS and multi-path
///   networking (Section 5.2).
/// * `beowulf` — the Kirsal & Ever Beowulf performability model.
/// * `failover-pair` — the rare-event fail-over pair of [`sanet::rare`].
pub const BUILT_IN_MODELS: &[&str] =
    &["abe", "abe-spare", "petascale", "petascale-mitigated", "beowulf", "failover-pair"];

/// A built-in model resolved by name: the compiled SAN plus the standard
/// reward set the analyses probe it with.
#[derive(Debug, Clone)]
pub struct BuiltIn {
    /// The compiled model.
    pub model: Model,
    /// The rewards the model ships with (the ones CI lints against).
    pub rewards: Vec<RewardSpec>,
}

/// Levenshtein edit distance, used for the "did you mean" suggestion on
/// unknown model names.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut diagonal = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let substitution = diagonal + usize::from(ca != cb);
            diagonal = row[j + 1];
            row[j + 1] = substitution.min(row[j] + 1).min(diagonal + 1);
        }
    }
    row[b.len()]
}

/// The registry entry closest to `unknown`, when it is close enough (edit
/// distance at most half the typed name's length) to be a plausible typo.
fn closest_model(unknown: &str) -> Option<&'static str> {
    BUILT_IN_MODELS
        .iter()
        .map(|name| (edit_distance(unknown, name), *name))
        .min()
        .filter(|&(distance, _)| distance <= unknown.len().div_ceil(2))
        .map(|(_, name)| name)
}

/// The error for a model name outside [`BUILT_IN_MODELS`]: lists the
/// registry and suggests the closest entry for plausible typos.
pub(crate) fn unknown_model_error(unknown: &str) -> CfsError {
    let suggestion =
        closest_model(unknown).map(|name| format!(" (did you mean '{name}'?)")).unwrap_or_default();
    CfsError::InvalidConfig {
        reason: format!(
            "unknown model '{unknown}'{suggestion}; built-in models are: {}",
            BUILT_IN_MODELS.join(", ")
        ),
    }
}

/// Builds the named built-in model with its standard reward set.
///
/// # Errors
///
/// Returns [`CfsError::InvalidConfig`] for an unknown name (listing the
/// known ones and suggesting the closest for plausible typos) and
/// propagates model-construction errors.
pub fn build_built_in(name: &str) -> Result<BuiltIn, CfsError> {
    let cluster = |cfg: ClusterConfig| -> Result<BuiltIn, CfsError> {
        let cm = build_cluster_model(&cfg)?;
        let rewards = standard_rewards(&cm);
        Ok(BuiltIn { model: cm.model, rewards })
    };
    match name {
        "abe" => cluster(ClusterConfig::abe()),
        "abe-spare" => cluster(ClusterConfig::abe().with_spare_oss()),
        "petascale" => cluster(ClusterConfig::petascale()),
        "petascale-mitigated" => {
            cluster(ClusterConfig::petascale().with_spare_oss().with_multipath_network())
        }
        "beowulf" => {
            let bw = build_beowulf_model(&BeowulfConfig::default())?;
            let rewards = bw.rewards();
            Ok(BuiltIn { model: bw.model, rewards })
        }
        "failover-pair" => {
            // The rare-event benchmark pair: λ = 1e-4/h failures, 0.1/h
            // repairs — the regime the importance-sampling examples use.
            let pair = rare::failover_pair(1e-4, 0.1)?;
            let rewards = vec![pair.hit_reward()];
            Ok(BuiltIn { model: pair.model, rewards })
        }
        unknown => Err(unknown_model_error(unknown)),
    }
}

/// Builds the named built-in model with its standard reward set and lints
/// it under `config`.
///
/// # Errors
///
/// Returns [`CfsError::InvalidConfig`] for an unknown name (listing the
/// known ones) and propagates model-construction errors. Lint findings are
/// *not* errors — they are diagnostics inside the returned report; apply
/// [`LintReport::deny`] to turn them into one.
pub fn lint_built_in(name: &str, config: &LintConfig) -> Result<LintReport, CfsError> {
    let built = build_built_in(name)?;
    Ok(built.model.lint_with(config, &built.rewards))
}

/// Lints every model in [`BUILT_IN_MODELS`] under one deny policy.
///
/// # Errors
///
/// Propagates model-construction errors; lint findings land in the summary.
pub fn lint_all(config: &LintConfig, deny: Severity) -> Result<LintSummary, CfsError> {
    lint_models(BUILT_IN_MODELS, config, deny)
}

/// Lints a chosen subset of the built-in models under one deny policy.
///
/// # Errors
///
/// Returns [`CfsError::InvalidConfig`] for an unknown model name and
/// propagates construction errors.
pub fn lint_models(
    names: &[&str],
    config: &LintConfig,
    deny: Severity,
) -> Result<LintSummary, CfsError> {
    let mut reports = Vec::with_capacity(names.len());
    for name in names {
        reports.push(lint_built_in(name, config)?);
    }
    Ok(LintSummary { deny, reports })
}

/// The aggregated result of linting a set of models under one deny level.
#[derive(Debug, Clone)]
pub struct LintSummary {
    deny: Severity,
    reports: Vec<LintReport>,
}

impl LintSummary {
    /// Aggregates per-model reports under one deny level. Used by the
    /// reachability driver ([`crate::reach`]) to render `SAN04x`
    /// diagnostics through the same presentation machinery.
    pub(crate) fn new(deny: Severity, reports: Vec<LintReport>) -> LintSummary {
        LintSummary { deny, reports }
    }

    /// The deny level the summary was produced under.
    pub fn deny_level(&self) -> Severity {
        self.deny
    }

    /// The per-model reports, in lint order.
    pub fn reports(&self) -> &[LintReport] {
        &self.reports
    }

    /// Whether every model is free of diagnostics at or above the deny
    /// level.
    pub fn is_clean(&self) -> bool {
        self.reports.iter().all(|r| r.count_at_or_above(self.deny) == 0)
    }

    /// Total diagnostics at or above the deny level, across all models.
    pub fn rejections(&self) -> usize {
        self.reports.iter().map(|r| r.count_at_or_above(self.deny)).sum()
    }

    /// One table row per diagnostic (`model | code | severity | element |
    /// message`); clean models contribute a single `clean` row so every
    /// linted model is visible in the output.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(
            format!("sanlint: {} model(s), deny level {}", self.reports.len(), self.deny.name()),
            &["model", "code", "severity", "element", "message"],
        );
        for report in &self.reports {
            if report.diagnostics().is_empty() {
                table.add_row(&[
                    report.model().to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("clean ({} probes)", report.probes()),
                ]);
                continue;
            }
            for d in report.diagnostics() {
                table.add_row(&[
                    report.model().to_string(),
                    d.code().to_string(),
                    d.severity().to_string(),
                    d.element().to_string(),
                    d.message().to_string(),
                ]);
            }
        }
        table
    }

    /// Renders the diagnostics table plus a per-model verdict footer.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;

        let mut out = self.to_table().render();
        for report in &self.reports {
            let at_or_above = report.count_at_or_above(self.deny);
            let _ = writeln!(
                out,
                "{}: {} diagnostic(s), {} at or above {}",
                report.model(),
                report.diagnostics().len(),
                at_or_above,
                self.deny.name(),
            );
        }
        let _ = writeln!(
            out,
            "verdict: {}",
            if self.is_clean() {
                "clean".to_string()
            } else {
                format!("{} rejection(s)", self.rejections())
            }
        );
        out
    }

    /// Renders the summary as indented JSON:
    /// `{"deny_level": ..., "clean": ..., "models": [<per-model reports>]}`.
    pub fn to_json(&self) -> String {
        serde::to_json_pretty(self)
    }

    /// Applies the deny policy: `Err` if any model carries a diagnostic at
    /// or above the deny level.
    ///
    /// # Errors
    ///
    /// Returns [`CfsError::InvalidConfig`] naming every rejected model and
    /// embedding its offending diagnostics.
    pub fn deny(&self) -> Result<(), CfsError> {
        let mut failures = Vec::new();
        for report in &self.reports {
            if let Err(e) = report.deny(self.deny) {
                failures.push(e.to_string());
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(CfsError::InvalidConfig { reason: failures.join("\n") })
        }
    }
}

impl Serialize for LintSummary {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("deny_level".into(), Value::String(self.deny.name().into())),
            ("clean".into(), Value::Bool(self.is_clean())),
            ("rejections".into(), Value::UInt(self.rejections() as u64)),
            ("models".into(), Value::Array(self.reports.iter().map(Serialize::to_value).collect())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced-probe config keeping the unit tests quick; the full-corpus
    /// run is the CI `sanlint` step.
    fn quick() -> LintConfig {
        LintConfig { probes: 48, ..LintConfig::default() }
    }

    #[test]
    fn every_built_in_model_is_known_and_lints_without_errors() {
        for name in BUILT_IN_MODELS {
            let report = lint_built_in(name, &quick()).unwrap_or_else(|e| panic!("{name}: {e}"));
            report
                .deny(Severity::Warning)
                .unwrap_or_else(|e| panic!("built-in '{name}' must lint clean: {e}"));
        }
    }

    #[test]
    fn unknown_model_names_are_rejected_with_the_known_list() {
        let err = lint_built_in("no-such-model", &quick()).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("no-such-model"), "{text}");
        assert!(text.contains("petascale"), "should list the registry: {text}");
    }

    #[test]
    fn plausible_typos_get_a_did_you_mean_suggestion() {
        let err = lint_built_in("beowolf", &quick()).unwrap_err();
        assert!(err.to_string().contains("did you mean 'beowulf'?"), "{err}");
        let err = lint_built_in("petascale-mitigatd", &quick()).unwrap_err();
        assert!(err.to_string().contains("did you mean 'petascale-mitigated'?"), "{err}");
        // Nothing plausibly close: the registry is listed without a guess.
        let err = lint_built_in("kalamazoo-cluster-nine", &quick()).unwrap_err();
        assert!(!err.to_string().contains("did you mean"), "{err}");
    }

    #[test]
    fn edit_distance_is_symmetric_and_grounded() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abe", "abe"), 0);
        assert_eq!(edit_distance("abe", ""), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("sitting", "kitten"), 3);
        assert_eq!(edit_distance("beowolf", "beowulf"), 1);
    }

    #[test]
    fn summary_aggregates_reports_and_applies_the_deny_policy() {
        let summary =
            lint_models(&["failover-pair", "beowulf"], &quick(), Severity::Warning).unwrap();
        assert_eq!(summary.reports().len(), 2);
        assert_eq!(summary.deny_level(), Severity::Warning);
        assert!(summary.is_clean(), "{}", summary.to_text());
        assert_eq!(summary.rejections(), 0);
        summary.deny().unwrap();

        // At deny level Info the conservative-declaration notes of the
        // fail-over pair become rejections.
        let strict = lint_models(&["failover-pair"], &quick(), Severity::Info).unwrap();
        assert!(!strict.is_clean());
        assert!(strict.rejections() > 0);
        let err = strict.deny().unwrap_err();
        assert!(err.to_string().contains("failover"), "{err}");
    }

    #[test]
    fn text_rendering_names_every_model_and_the_verdict() {
        let summary =
            lint_models(&["failover-pair", "beowulf"], &quick(), Severity::Warning).unwrap();
        let text = summary.to_text();
        assert!(text.contains("failover"), "{text}");
        assert!(text.contains("beowulf"), "{text}");
        assert!(text.contains("verdict: clean"), "{text}");
        // The fail-over pair's conservative declarations appear as rows.
        assert!(text.contains("SAN006"), "{text}");
    }

    #[test]
    fn json_rendering_has_a_stable_schema() {
        let summary = lint_models(&["failover-pair"], &quick(), Severity::Warning).unwrap();
        let json = summary.to_json();
        for key in [
            "\"deny_level\"",
            "\"clean\"",
            "\"rejections\"",
            "\"models\"",
            "\"diagnostics\"",
            "\"model\"",
            "\"probes\"",
            "\"max_severity\"",
            "\"code\"",
            "\"severity\"",
            "\"element\"",
            "\"message\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"deny_level\": \"warning\""), "{json}");
        assert!(json.contains("\"clean\": true"), "{json}");
    }
}
