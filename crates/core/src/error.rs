use std::error::Error;
use std::fmt;

use faultlog::LogError;
use probdist::DistError;
use raidsim::RaidError;
use sanet::SanError;

/// Error type for cluster-model construction, simulation, and experiments.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CfsError {
    /// A cluster configuration or parameter value was rejected.
    InvalidConfig {
        /// Explanation of the rejected configuration.
        reason: String,
    },
    /// An error from the stochastic-activity-network engine.
    San(SanError),
    /// An error from the storage reliability simulator.
    Raid(RaidError),
    /// An error from the failure-log substrate.
    Log(LogError),
    /// An error from the statistics layer.
    Distribution(DistError),
    /// A scenario panicked during evaluation. The panic was contained at
    /// the scenario boundary — the worker pool and every other scenario's
    /// results are unaffected — and surfaces as this typed error (or as a
    /// [`crate::report::ScenarioFailure`] under
    /// [`crate::run::FailurePolicy::ContinueAndReport`]).
    ScenarioPanic {
        /// Name of the scenario whose evaluation panicked.
        scenario: String,
        /// The replication index that panicked, when the panic originated
        /// inside a replication fan-out (`None` for panics in scenario
        /// code outside the replication loop).
        replication: Option<u64>,
        /// The panic payload rendered as text.
        message: String,
    },
    /// A checkpoint file could not be read, written, or verified.
    Checkpoint {
        /// Path of the offending checkpoint file.
        path: String,
        /// What went wrong (I/O failure, malformed JSON, version or
        /// checksum mismatch).
        reason: String,
    },
    /// A run deadline expired before an evaluation completed the minimum
    /// two replications a confidence interval needs. Evaluations that got
    /// further return truncated-but-valid statistics instead of this error.
    DeadlineExpired {
        /// Name of the starved scenario or configuration.
        scenario: String,
        /// Replications that completed before the deadline fired.
        completed: usize,
    },
}

impl fmt::Display for CfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfsError::InvalidConfig { reason } => {
                write!(f, "invalid cluster configuration: {reason}")
            }
            CfsError::San(e) => write!(f, "model error: {e}"),
            CfsError::Raid(e) => write!(f, "storage model error: {e}"),
            CfsError::Log(e) => write!(f, "failure log error: {e}"),
            CfsError::Distribution(e) => write!(f, "distribution error: {e}"),
            CfsError::ScenarioPanic { scenario, replication, message } => match replication {
                Some(index) => {
                    write!(f, "scenario '{scenario}' panicked in replication {index}: {message}")
                }
                None => write!(f, "scenario '{scenario}' panicked: {message}"),
            },
            CfsError::Checkpoint { path, reason } => {
                write!(f, "checkpoint file '{path}': {reason}")
            }
            CfsError::DeadlineExpired { scenario, completed } => write!(
                f,
                "deadline expired before '{scenario}' completed the two replications a \
                 confidence interval needs ({completed} done)"
            ),
        }
    }
}

impl Error for CfsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CfsError::San(e) => Some(e),
            CfsError::Raid(e) => Some(e),
            CfsError::Log(e) => Some(e),
            CfsError::Distribution(e) => Some(e),
            CfsError::InvalidConfig { .. }
            | CfsError::ScenarioPanic { .. }
            | CfsError::Checkpoint { .. }
            | CfsError::DeadlineExpired { .. } => None,
        }
    }
}

impl From<SanError> for CfsError {
    fn from(e: SanError) -> Self {
        CfsError::San(e)
    }
}

impl From<RaidError> for CfsError {
    fn from(e: RaidError) -> Self {
        CfsError::Raid(e)
    }
}

impl From<LogError> for CfsError {
    fn from(e: LogError) -> Self {
        CfsError::Log(e)
    }
}

impl From<DistError> for CfsError {
    fn from(e: DistError) -> Self {
        CfsError::Distribution(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: CfsError = SanError::UnknownReward { name: "x".into() }.into();
        assert!(matches!(e, CfsError::San(_)));
        assert!(Error::source(&e).is_some());

        let e: CfsError = RaidError::InvalidConfig { reason: "r".into() }.into();
        assert!(e.to_string().contains("storage"));

        let e: CfsError = LogError::EmptyLog { analysis: "job" }.into();
        assert!(matches!(e, CfsError::Log(_)));

        let e: CfsError = DistError::EmptyData.into();
        assert!(matches!(e, CfsError::Distribution(_)));

        let e = CfsError::InvalidConfig { reason: "zero nodes".into() };
        assert!(e.to_string().contains("zero nodes"));
        assert!(Error::source(&e).is_none());
    }
}
