//! `sanlint` — static analysis of the built-in SAN models.
//!
//! Runs [`cfs_model::lint`] over the registry of shipped models (or a
//! chosen one), renders the aggregated diagnostics as text or JSON, and
//! exits non-zero when any model carries a diagnostic at or above the deny
//! level — the CI gate pinning the shipped models statically clean.
//!
//! With `--reach` the structural linter is replaced by the semantic tier
//! ([`cfs_model::reach`]): each model's reachable marking graph is explored
//! under a budget and the output adds the state-space table (size,
//! tangible/vanishing split, completeness, terminal classes, solver
//! admissibility) ahead of the `SAN04x` diagnostics.
//!
//! Usage:
//!
//! ```text
//! sanlint [--model NAME]... [--format text|json] [--deny error|warning|info]
//!         [--probes N] [--seed N] [--list]
//!         [--reach] [--max-states N] [--max-transitions N]
//! ```
//!
//! * `--model NAME` — lint one built-in model (repeatable); default: all.
//! * `--format` — `text` (default): diagnostics table plus per-model
//!   verdicts; `json`: the full summary document.
//! * `--deny` — lowest severity treated as a rejection (default `warning`).
//! * `--probes` / `--seed` — size and seed of the fuzzed probe corpus
//!   (structural lint only).
//! * `--reach` — run reachability/admissibility analysis instead.
//! * `--max-states` / `--max-transitions` — exploration budget for
//!   `--reach` (defaults: 20 000 states, 250 000 transitions).
//! * `--timings` — print per-pass wall-clock durations (declaration /
//!   structural / reward passes, or exploration under `--reach`) to
//!   stderr, measured through the telemetry span layer.
//! * `--list` — print the built-in model names and exit.
//!
//! Exit codes: `0` clean, `1` at least one diagnostic at or above the deny
//! level, `2` usage error (unknown flag, model, or malformed value).

use std::process::ExitCode;

use cfs_model::lint::{lint_models, BUILT_IN_MODELS};
use cfs_model::reach::analyze_models;
use sanet::lint::{LintConfig, Severity};
use sanet::ReachConfig;

/// Parsed command line.
struct Options {
    models: Vec<String>,
    json: bool,
    deny: Severity,
    config: LintConfig,
    reach: bool,
    reach_config: ReachConfig,
    timings: bool,
    list: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        models: Vec::new(),
        json: false,
        deny: Severity::Warning,
        config: LintConfig::default(),
        reach: false,
        reach_config: ReachConfig::default(),
        timings: false,
        list: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--model" => options.models.push(value("--model")?),
            "--format" => match value("--format")?.as_str() {
                "text" => options.json = false,
                "json" => options.json = true,
                other => return Err(format!("unknown format '{other}': use text or json")),
            },
            "--deny" => {
                let name = value("--deny")?;
                options.deny = Severity::parse(&name).ok_or_else(|| {
                    format!("unknown deny level '{name}': use error, warning, or info")
                })?;
            }
            "--probes" => {
                let n = value("--probes")?;
                options.config.probes = n
                    .parse()
                    .map_err(|_| format!("--probes needs a positive integer, got '{n}'"))?;
            }
            "--seed" => {
                let n = value("--seed")?;
                options.config.seed =
                    n.parse().map_err(|_| format!("--seed needs an integer, got '{n}'"))?;
            }
            "--reach" => options.reach = true,
            "--max-states" => {
                let n = value("--max-states")?;
                options.reach_config.max_states = n
                    .parse()
                    .map_err(|_| format!("--max-states needs a positive integer, got '{n}'"))?;
            }
            "--max-transitions" => {
                let n = value("--max-transitions")?;
                options.reach_config.max_transitions = n.parse().map_err(|_| {
                    format!("--max-transitions needs a positive integer, got '{n}'")
                })?;
            }
            "--timings" => options.timings = true,
            "--list" => options.list = true,
            "--help" | "-h" => {
                return Err("usage: sanlint [--model NAME]... [--format text|json] \
                     [--deny error|warning|info] [--probes N] [--seed N] [--list] \
                     [--reach] [--max-states N] [--max-transitions N] [--timings]"
                    .into())
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    if options.list {
        for name in BUILT_IN_MODELS {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }

    let names: Vec<&str> = if options.models.is_empty() {
        BUILT_IN_MODELS.to_vec()
    } else {
        options.models.iter().map(String::as_str).collect()
    };

    // --timings: record the passes through the telemetry span layer and
    // print the deltas once the run finishes.
    let _telemetry_guard = options.timings.then(probdist::telemetry::enable_scoped);
    let baseline = options.timings.then(probdist::telemetry::snapshot);

    let (rendered, clean) = if options.reach {
        match analyze_models(&names, &options.reach_config, options.deny) {
            Ok(summary) => (
                if options.json { summary.to_json() + "\n" } else { summary.to_text() },
                summary.is_clean(),
            ),
            Err(e) => {
                eprintln!("sanlint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        match lint_models(&names, &options.config, options.deny) {
            Ok(summary) => (
                if options.json { summary.to_json() + "\n" } else { summary.to_text() },
                summary.is_clean(),
            ),
            Err(e) => {
                eprintln!("sanlint: {e}");
                return ExitCode::from(2);
            }
        }
    };

    print!("{rendered}");
    if let Some(baseline) = baseline {
        print_timings(&probdist::telemetry::snapshot().delta_since(&baseline), options.reach);
    }
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Renders the per-pass span durations to stderr: per-model wall-clock
/// totals for the three structural-lint passes, or the exploration and
/// generator-assembly phases under `--reach`.
fn print_timings(delta: &probdist::telemetry::TelemetrySnapshot, reach: bool) {
    let passes: &[(&str, &str)] = if reach {
        &[
            ("generator assembly", "span_generator_assembly_ns"),
            ("reach exploration", "span_reach_explore_ns"),
        ]
    } else {
        &[
            ("declaration pass", "span_lint_declaration_ns"),
            ("structural pass", "span_lint_structural_ns"),
            ("reward pass", "span_lint_reward_ns"),
            ("lint total", "span_lint_ns"),
        ]
    };
    eprintln!("timings (wall clock, nondeterministic):");
    for (label, metric) in passes {
        let Some(sample) = delta.get(metric) else { continue };
        let runs = sample.count.unwrap_or(0);
        if runs > 0 {
            eprintln!("  {label:<18} {:>10.3} ms across {runs} run(s)", sample.value / 1e6);
        }
    }
}
