//! Cluster configurations: the ABE baseline, the petascale target, and the
//! interpolated scale points used on the x-axes of Figures 2–4.

use serde::{Deserialize, Serialize};

use raidsim::scaling::{config_from_plan, plan_for_capacity};
use raidsim::{DiskModel, RaidGeometry, StorageConfig};

use crate::params::ModelParameters;
use crate::CfsError;

/// ABE's scratch-partition capacity in terabytes.
pub const ABE_CAPACITY_TB: f64 = 96.0;
/// The petascale (Blue Waters class) scratch capacity in terabytes (12 PB).
pub const PETASCALE_CAPACITY_TB: f64 = 12_288.0;

/// A complete cluster configuration: compute side, file-server side, storage
/// hardware, mitigation options, and model parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Human-readable name used in reports ("ABE", "petascale", …).
    pub name: String,
    /// Number of compute nodes (1200 on ABE, 32 000 at petascale).
    pub compute_nodes: u32,
    /// Number of file-serving OSS fail-over pairs (8 on ABE, 80 at
    /// petascale).
    pub oss_pairs: u32,
    /// Number of metadata-server fail-over pairs (1 on ABE).
    pub metadata_pairs: u32,
    /// Storage hardware configuration (DDN units, tiers, disks).
    pub storage: StorageConfig,
    /// Whether a standby spare OSS can take over a fully failed OSS pair
    /// (the mitigation evaluated in Section 5.2, ≈ +3 % availability).
    pub spare_oss: bool,
    /// Whether multiple network paths connect compute nodes to the CFS
    /// (mitigates transient errors, Section 5.2).
    pub multipath_network: bool,
    /// Model parameters (Table 5).
    pub params: ModelParameters,
}

impl ClusterConfig {
    /// The ABE baseline: 1200 nodes, 8 scratch OSS pairs + 1 metadata pair,
    /// 2 DDN units with 48 tiers of (8+2), no mitigations.
    pub fn abe() -> Self {
        ClusterConfig {
            name: "ABE".to_string(),
            compute_nodes: 1200,
            oss_pairs: 8,
            metadata_pairs: 1,
            storage: StorageConfig::abe_scratch(),
            spare_oss: false,
            multipath_network: false,
            params: ModelParameters::abe(),
        }
    }

    /// The petaflop–petabyte target: 32 000 nodes, 80 OSS pairs, 20 DDN
    /// units, 12 PB of scratch.
    pub fn petascale() -> Self {
        ClusterConfig::scaled_to_capacity(PETASCALE_CAPACITY_TB)
            .expect("the petascale design point is a valid configuration")
    }

    /// A cluster scaled so its scratch partition provides `capacity_tb`
    /// terabytes. Compute nodes, OSS pairs, and DDN units are interpolated
    /// geometrically between the ABE and petascale design points; the
    /// storage layout is planned with [`raidsim::scaling`].
    ///
    /// # Errors
    ///
    /// Returns [`CfsError::InvalidConfig`] if `capacity_tb` is not positive.
    pub fn scaled_to_capacity(capacity_tb: f64) -> Result<Self, CfsError> {
        if !(capacity_tb.is_finite() && capacity_tb > 0.0) {
            return Err(CfsError::InvalidConfig {
                reason: format!("capacity must be positive, got {capacity_tb} TB"),
            });
        }
        let abe = ClusterConfig::abe();
        // Geometric interpolation exponent in [0, 1] over the 96 TB → 12 PB
        // range (clamped outside it).
        let frac = ((capacity_tb / ABE_CAPACITY_TB).ln()
            / (PETASCALE_CAPACITY_TB / ABE_CAPACITY_TB).ln())
        .clamp(0.0, 1.5);

        let compute_nodes = (1200.0 * (32_000.0_f64 / 1200.0).powf(frac)).round() as u32;
        let oss_pairs = (8.0 * 10.0_f64.powf(frac)).round().max(1.0) as u32;
        let ddn_units = (2.0 * 10.0_f64.powf(frac)).round().max(1.0) as u32;

        // Plan the storage with the same 250 GB disks as ABE so the disk
        // count scales with capacity (Figure 2's x-axis); experiments that
        // want capacity growth swap the disk model afterwards.
        let mut plan =
            plan_for_capacity(capacity_tb, abe.storage.disk.capacity_gb, abe.storage.geometry)?;
        // Use the interpolated DDN-unit count, but never more units than
        // there are tiers to spread across them.
        plan.ddn_units = ddn_units.min(plan.tiers).max(1);
        let storage = config_from_plan(&plan, &abe.storage)?;

        Ok(ClusterConfig {
            name: format!("{capacity_tb:.0}TB"),
            compute_nodes,
            oss_pairs,
            metadata_pairs: 1,
            storage,
            spare_oss: false,
            multipath_network: false,
            params: abe.params,
        })
    }

    /// Returns a copy with the spare-OSS mitigation enabled.
    pub fn with_spare_oss(mut self) -> Self {
        self.spare_oss = true;
        self.name = format!("{}+spare-OSS", self.name);
        self
    }

    /// Returns a copy with multi-path networking between compute nodes and
    /// the CFS.
    pub fn with_multipath_network(mut self) -> Self {
        self.multipath_network = true;
        self.name = format!("{}+multipath", self.name);
        self
    }

    /// Returns a copy whose storage uses the given RAID geometry.
    pub fn with_raid_geometry(mut self, geometry: RaidGeometry) -> Self {
        self.storage.geometry = geometry;
        self
    }

    /// Returns a copy whose disks use the given model (AFR / Weibull shape
    /// sweeps of Figure 2).
    pub fn with_disk_model(mut self, disk: DiskModel) -> Self {
        self.storage.disk = disk;
        self.params.disk_mtbf_hours = disk.mtbf_hours;
        self.params.disk_weibull_shape = disk.weibull_shape;
        self
    }

    /// Total number of OSS fail-over pairs (file serving + metadata).
    pub fn total_oss_pairs(&self) -> u32 {
        self.oss_pairs + self.metadata_pairs
    }

    /// The scratch partition's usable capacity in terabytes.
    pub fn capacity_tb(&self) -> f64 {
        self.storage.usable_capacity_tb()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CfsError::InvalidConfig`] (or a wrapped storage/parameter
    /// error) describing the first problem found.
    pub fn validate(&self) -> Result<(), CfsError> {
        if self.compute_nodes == 0 {
            return Err(CfsError::InvalidConfig {
                reason: "compute_nodes must be at least 1".into(),
            });
        }
        if self.oss_pairs == 0 {
            return Err(CfsError::InvalidConfig { reason: "oss_pairs must be at least 1".into() });
        }
        if self.metadata_pairs == 0 {
            return Err(CfsError::InvalidConfig {
                reason: "metadata_pairs must be at least 1".into(),
            });
        }
        self.storage.validate()?;
        self.params.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abe_matches_the_paper_description() {
        let abe = ClusterConfig::abe();
        assert!(abe.validate().is_ok());
        assert_eq!(abe.compute_nodes, 1200);
        assert_eq!(abe.oss_pairs, 8);
        assert_eq!(abe.total_oss_pairs(), 9);
        assert_eq!(abe.storage.ddn_units, 2);
        assert_eq!(abe.storage.total_disks(), 480);
        assert!((abe.capacity_tb() - 96.0).abs() < 1e-9);
        assert!(!abe.spare_oss && !abe.multipath_network);
    }

    #[test]
    fn petascale_matches_table5_upper_bounds() {
        let p = ClusterConfig::petascale();
        assert!(p.validate().is_ok());
        assert_eq!(p.compute_nodes, 32_000);
        assert_eq!(p.oss_pairs, 80);
        assert_eq!(p.storage.ddn_units, 20);
        assert!(p.capacity_tb() >= 12_288.0 - 1e-6);
        assert!(p.storage.total_disks() > 60_000);
    }

    #[test]
    fn scaling_is_monotone_between_the_endpoints() {
        let points = [96.0, 384.0, 1536.0, 6144.0, 12_288.0];
        let mut last_nodes = 0;
        let mut last_oss = 0;
        let mut last_ddn = 0;
        for tb in points {
            let c = ClusterConfig::scaled_to_capacity(tb).unwrap();
            assert!(c.validate().is_ok(), "{tb} TB");
            assert!(c.compute_nodes >= last_nodes);
            assert!(c.oss_pairs >= last_oss);
            assert!(c.storage.ddn_units >= last_ddn);
            last_nodes = c.compute_nodes;
            last_oss = c.oss_pairs;
            last_ddn = c.storage.ddn_units;
        }
    }

    #[test]
    fn scaled_to_abe_capacity_reproduces_abe_shape() {
        let c = ClusterConfig::scaled_to_capacity(96.0).unwrap();
        assert_eq!(c.compute_nodes, 1200);
        assert_eq!(c.oss_pairs, 8);
        assert_eq!(c.storage.ddn_units, 2);
        assert_eq!(c.storage.total_disks(), 480);
    }

    #[test]
    fn invalid_capacity_is_rejected() {
        assert!(ClusterConfig::scaled_to_capacity(0.0).is_err());
        assert!(ClusterConfig::scaled_to_capacity(-5.0).is_err());
        assert!(ClusterConfig::scaled_to_capacity(f64::NAN).is_err());
    }

    #[test]
    fn mitigation_builders_set_flags_and_names() {
        let c = ClusterConfig::abe().with_spare_oss();
        assert!(c.spare_oss);
        assert!(c.name.contains("spare"));
        let c = ClusterConfig::abe().with_multipath_network();
        assert!(c.multipath_network);
        assert!(c.name.contains("multipath"));
    }

    #[test]
    fn raid_and_disk_builders_update_storage_and_params() {
        let c = ClusterConfig::abe().with_raid_geometry(RaidGeometry::raid_8p3());
        assert_eq!(c.storage.geometry.parity_disks, 3);
        let disk = DiskModel::with_afr(8.76, 0.6).unwrap();
        let c = ClusterConfig::abe().with_disk_model(disk);
        assert!((c.params.disk_mtbf_hours - 100_000.0).abs() < 1.0);
        assert!((c.params.disk_weibull_shape - 0.6).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_zeroed_fields() {
        let mut c = ClusterConfig::abe();
        c.compute_nodes = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::abe();
        c.oss_pairs = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::abe();
        c.metadata_pairs = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::abe();
        c.storage.tiers = 0;
        assert!(c.validate().is_err());
    }
}
