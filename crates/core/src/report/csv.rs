//! Per-figure CSV exporters, retained as deprecated shims.
//!
//! New code should render any experiment table with
//! [`crate::report::TextTable::to_csv`], or a whole study with
//! [`crate::report::Report::to_csv`]; both return the full file contents as
//! a `String` and leave filesystem decisions to the caller, like the
//! functions here always did.

use crate::experiments::{Fig2Result, Fig3Result, Fig4Result};

/// Escapes one CSV cell (quotes cells containing commas, quotes, or
/// newlines).
pub(crate) fn escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Joins cells into one CSV record.
pub(crate) fn record(cells: &[String]) -> String {
    cells.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
}

/// Exports Figure 2 (storage availability vs. capacity) as CSV with one row
/// per (capacity, series) pair.
#[deprecated(
    since = "0.2.0",
    note = "render the result's `to_table()` with `TextTable::to_csv`, or a whole study with `Report::to_csv`"
)]
pub fn fig2_to_csv(result: &Fig2Result) -> String {
    let mut out = String::from(
        "capacity_tb,total_disks,series,availability,ci_half_width,prob_any_data_loss\n",
    );
    for series in &result.series {
        for point in &series.points {
            out.push_str(&record(&[
                format!("{}", point.capacity_tb),
                format!("{}", point.total_disks),
                series.label.clone(),
                format!("{}", point.availability.point),
                format!("{}", point.availability.half_width),
                format!("{}", point.prob_any_data_loss),
            ]));
            out.push('\n');
        }
    }
    out
}

/// Exports Figure 3 (disk replacements per week vs. disk count) as CSV.
#[deprecated(
    since = "0.2.0",
    note = "render the result's `to_table()` with `TextTable::to_csv`, or a whole study with `Report::to_csv`"
)]
pub fn fig3_to_csv(result: &Fig3Result) -> String {
    let mut out = String::from(
        "disks,afr_percent,series,simulated_per_week,ci_half_width,analytic_per_week\n",
    );
    for series in &result.series {
        for point in &series.points {
            out.push_str(&record(&[
                format!("{}", point.disks),
                format!("{}", series.afr_percent),
                series.label.clone(),
                format!("{}", point.simulated_per_week.point),
                format!("{}", point.simulated_per_week.half_width),
                format!("{}", point.analytic_per_week),
            ]));
            out.push('\n');
        }
    }
    out
}

/// Exports Figure 4 (availability and utility vs. scale) as CSV.
#[deprecated(
    since = "0.2.0",
    note = "render the result's `to_table()` with `TextTable::to_csv`, or a whole study with `Report::to_csv`"
)]
pub fn fig4_to_csv(result: &Fig4Result) -> String {
    let mut out = String::from(
        "capacity_tb,compute_nodes,oss_pairs,ddn_units,storage_availability,cfs_availability,cfs_ci_half_width,cluster_utility,cfs_availability_spare_oss\n",
    );
    for p in &result.points {
        out.push_str(&record(&[
            format!("{}", p.capacity_tb),
            format!("{}", p.compute_nodes),
            format!("{}", p.oss_pairs),
            format!("{}", p.ddn_units),
            format!("{}", p.storage_availability.point),
            format!("{}", p.cfs_availability.point),
            format!("{}", p.cfs_availability.half_width),
            format!("{}", p.cluster_utility.point),
            format!("{}", p.cfs_availability_spare_oss.point),
        ]));
        out.push('\n');
    }
    out
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::experiments::{figure2_storage_availability_with, figure3_disk_replacements_with};
    use crate::run::RunSpec;

    fn spec() -> RunSpec {
        RunSpec::new().with_horizon_hours(2000.0).with_replications(4).with_base_seed(1)
    }

    #[test]
    fn cell_escaping_follows_csv_rules() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(record(&["a".into(), "b,c".into()]), "a,\"b,c\"");
    }

    #[test]
    fn fig2_csv_has_one_row_per_series_point() {
        let result = figure2_storage_availability_with(&[96.0], &spec()).unwrap();
        let csv = fig2_to_csv(&result);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + result.series.len());
        assert!(lines[0].starts_with("capacity_tb,"));
        assert!(lines[1].contains("96"));
        // The series label contains commas and must therefore be quoted.
        assert!(lines[1].contains("\"(0.6,8.76,8+2,4)\""));
    }

    #[test]
    fn fig3_csv_roundtrips_points() {
        let result = figure3_disk_replacements_with(&[480], &spec()).unwrap();
        let csv = fig3_to_csv(&result);
        assert_eq!(csv.lines().count(), 1 + result.series.len());
        assert!(csv.contains("480"));
        assert!(csv.contains("8.76"));
    }
}
