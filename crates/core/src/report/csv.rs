//! CSV encoding primitives shared by the report sink.
//!
//! Any experiment table renders as CSV through
//! [`crate::report::TextTable::to_csv`], and a whole study through
//! [`crate::report::Report::to_csv`]; both return the full file contents
//! as a `String` and leave filesystem decisions to the caller.

/// Escapes one CSV cell (quotes cells containing commas, quotes, or
/// either line-break character — RFC 4180 treats a bare `\r` exactly like
/// `\n`, so both must trigger quoting).
pub(crate) fn escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Joins cells into one CSV record.
pub(crate) fn record(cells: &[String]) -> String {
    cells.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_escaping_follows_csv_rules() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(record(&["a".into(), "b,c".into()]), "a,\"b,c\"");
    }

    #[test]
    fn line_break_characters_trigger_quoting() {
        // RFC 4180: a record ends at CRLF, CR, or LF — a cell containing a
        // bare carriage return must be quoted just like one with a newline.
        assert_eq!(escape("a\nb"), "\"a\nb\"");
        assert_eq!(escape("a\rb"), "\"a\rb\"");
        assert_eq!(escape("a\r\nb"), "\"a\r\nb\"");
        assert_eq!(record(&["x".into(), "y\rz".into()]), "x,\"y\rz\"");
    }

    #[test]
    fn quoted_series_labels_survive_a_table_round_trip() {
        use crate::experiments::figure2_storage_availability_with;
        use crate::run::RunSpec;

        let spec = RunSpec::new().with_horizon_hours(2000.0).with_replications(4).with_base_seed(1);
        let result = figure2_storage_availability_with(&[96.0], &spec).unwrap();
        let csv = result.to_table().to_csv();
        // The series labels contain commas and must therefore be quoted.
        assert!(csv.contains("\"(0.6,8.76,8+2,4)\""), "{csv}");
        assert_eq!(csv.lines().count(), 2, "header plus the single capacity row");
    }
}
