//! Non-paper workload families riding the [`crate::sweep`] driver: the
//! cross-system design questions the ROADMAP calls the `Scenario` trait's
//! extension point.
//!
//! * [`ReplicationVsRaid`] — the GFS/HDFS/MinIO question (Dubeyko's
//!   comparative analysis of distributed file systems' internal
//!   techniques): at *equal usable capacity* and identical disk hardware,
//!   does `n+k` RAID reconstruction or `r`-way object replication with
//!   background re-replication deliver better storage dependability, and
//!   at what raw-capacity overhead?
//! * [`BeowulfPerformabilitySweep`] — the Kirsal & Ever question: how does
//!   the delivered fraction of a Beowulf cluster's nominal capacity
//!   (performability) scale with the worker count and the number of repair
//!   crews?
//! * [`UltraReliableSweep`] — the regime the plain Monte-Carlo sweeps
//!   cannot resolve: replication factors and RAID `n+k` widths whose
//!   data-loss probabilities live at 10⁻⁶..10⁻¹⁰, estimated by
//!   fixed-effort multilevel splitting over exposure depth
//!   (`raidsim::splitting`) under the spec's
//!   [`RareEventPolicy`].
//!
//! Both are thin [`SweepScenario`] configurations: a [`DesignSpace`] over
//! the interesting axes plus a point evaluator that builds the matching
//! simulator, honours the spec's replication policy (fixed count or
//! precision-targeted adaptive stopping, per point), and reports named
//! metrics for the winner selection.

use probdist::rare::naive_replications_for;
use raidsim::{
    DiskModel, RaidGeometry, ReplicationConfig, ReplicationSimulator, SplittingResult,
    StorageConfig, StorageSimulator, StorageSummary,
};
use sanet::beowulf::{
    build_beowulf_model, BeowulfConfig, HEAD_AVAILABILITY, MEAN_WORKERS_UP, PERFORMABILITY,
    SERVICE_AVAILABILITY,
};
use sanet::Experiment;

use crate::run::{RareEventPolicy, RunSpec};
use crate::scenario::{Scenario, ScenarioOutput};
use crate::sweep::{DesignPoint, DesignSpace, Objective, PointOutcome, SweepScenario};
use crate::CfsError;

/// Runs a storage Monte-Carlo engine under the spec's replication policy —
/// the adaptive runner when a precision target is set, the fixed-count
/// runner otherwise. The RAID and replication simulators share this exact
/// run signature shape, so the spec-to-run mapping lives in one place.
fn storage_summary_under(
    spec: &RunSpec,
    run_fixed: impl FnOnce(f64, usize, u64, f64, usize) -> Result<StorageSummary, raidsim::RaidError>,
    run_adaptive: impl FnOnce(
        f64,
        &probdist::stats::StoppingRule,
        u64,
        f64,
        usize,
    ) -> Result<StorageSummary, raidsim::RaidError>,
) -> Result<StorageSummary, CfsError> {
    let summary = match spec.stopping_rule()? {
        Some(rule) => run_adaptive(
            spec.horizon_hours(),
            &rule,
            spec.base_seed(),
            spec.confidence_level(),
            spec.workers(),
        )?,
        None => run_fixed(
            spec.horizon_hours(),
            spec.replications(),
            spec.base_seed(),
            spec.confidence_level(),
            spec.workers(),
        )?,
    };
    Ok(summary)
}

/// One redundancy scheme of the [`ReplicationVsRaid`] comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RedundancyScheme {
    /// `n+k` RAID tiers with single-spindle reconstruction.
    Raid(RaidGeometry),
    /// `r`-way object replication with background re-replication.
    Replication {
        /// Copies kept of every object.
        replicas: u32,
    },
}

impl RedundancyScheme {
    /// Short label used in tables, e.g. `"raid 8+2"` or `"3-way repl"`.
    pub fn label(&self) -> String {
        match self {
            RedundancyScheme::Raid(geometry) => format!("raid {}", geometry.label()),
            RedundancyScheme::Replication { replicas } => format!("{replicas}-way repl"),
        }
    }

    /// Raw bytes stored per usable byte.
    pub fn storage_overhead(&self) -> f64 {
        match self {
            RedundancyScheme::Raid(g) => g.disks_per_tier() as f64 / g.data_disks as f64,
            RedundancyScheme::Replication { replicas } => *replicas as f64,
        }
    }
}

/// Replication-vs-RAID design-space sweep: every redundancy scheme is
/// provisioned to the same usable capacity with the same disk model, then
/// simulated under the study's [`RunSpec`] (with per-point adaptive
/// stopping when the spec carries a precision target).
///
/// Axes of the underlying [`DesignSpace`]:
///
/// * `scheme` — index into [`ReplicationVsRaid::schemes`] (categorical
///   choices are encoded as axis indices; the table rows carry the
///   human-readable label).
/// * `afr_percent` — disk annualised failure rate, percent per year
///   (sweeps the hardware-quality dimension; the ABE disk is 2.92 %).
///
/// Reported per point: storage availability and replacements/week (with
/// confidence half-widths), the probability of any data loss over the
/// mission, expected data-loss events, the raw disk count, and the
/// raw-per-usable storage overhead. The winner minimises
/// `prob_any_data_loss` — the durability question these systems are
/// actually provisioned for; availability stays in the table for the
/// trade-off reading.
#[derive(Debug, Clone)]
pub struct ReplicationVsRaid {
    /// Usable capacity every scheme must provide, terabytes.
    pub usable_capacity_tb: f64,
    /// The candidate redundancy schemes.
    pub schemes: Vec<RedundancyScheme>,
    /// Disk AFR sweep, percent per year.
    pub afr_percents: Vec<f64>,
}

impl Default for ReplicationVsRaid {
    /// The ABE-scale comparison: 96 TB usable; RAID (8+1)/(8+2)/(8+3)
    /// against 2- and 3-way replication; ABE's 2.92 % AFR plus a
    /// pessimistic 8.76 % disk.
    fn default() -> Self {
        ReplicationVsRaid {
            usable_capacity_tb: 96.0,
            schemes: vec![
                RedundancyScheme::Raid(RaidGeometry::raid5_8p1()),
                RedundancyScheme::Raid(RaidGeometry::raid6_8p2()),
                RedundancyScheme::Raid(RaidGeometry::raid_8p3()),
                RedundancyScheme::Replication { replicas: 2 },
                RedundancyScheme::Replication { replicas: 3 },
            ],
            afr_percents: vec![2.92, 8.76],
        }
    }
}

impl ReplicationVsRaid {
    /// Builds the storage configuration of a RAID scheme at the sweep's
    /// usable capacity: one logical DDN enclosure with
    /// `⌈usable / (data disks · capacity)⌉` tiers.
    fn raid_config(&self, geometry: RaidGeometry, disk: DiskModel) -> StorageConfig {
        let tier_usable_tb = geometry.data_disks as f64 * disk.capacity_gb / 1000.0;
        let tiers = (self.usable_capacity_tb / tier_usable_tb).ceil().max(1.0) as u32;
        StorageConfig {
            ddn_units: 1,
            tiers,
            geometry,
            disk,
            // Same operational assumptions as the replication side's
            // defaults: 4 h to swap a drive, 24 h to restore lost data.
            replacement_hours: 4.0,
            rebuild_hours: 6.0,
            data_loss_recovery_hours: 24.0,
            controllers: None,
        }
    }

    fn evaluate_point(
        &self,
        point: &DesignPoint,
        spec: &RunSpec,
    ) -> Result<PointOutcome, CfsError> {
        let scheme_index = point.value("scheme").expect("scheme axis always present") as usize;
        let scheme = self.schemes[scheme_index];
        let afr = point.value("afr_percent").expect("afr axis always present");
        let disk = DiskModel::with_afr(afr, DiskModel::abe_sata_250gb().weibull_shape)?;

        let (summary, raw_disks): (StorageSummary, u32) = match scheme {
            RedundancyScheme::Raid(geometry) => {
                let config = self.raid_config(geometry, disk);
                let disks = config.total_disks();
                let sim = StorageSimulator::new(config)?;
                let summary = storage_summary_under(
                    spec,
                    |h, r, s, c, w| sim.run_with(h, r, s, c, w),
                    |h, rule, s, c, w| sim.run_until(h, rule, s, c, w),
                )?;
                (summary, disks)
            }
            RedundancyScheme::Replication { replicas } => {
                let config =
                    ReplicationConfig::for_usable_capacity(self.usable_capacity_tb, replicas, disk);
                let disks = config.disks;
                let sim = ReplicationSimulator::new(config)?;
                let summary = storage_summary_under(
                    spec,
                    |h, r, s, c, w| sim.run_with(h, r, s, c, w),
                    |h, rule, s, c, w| sim.run_until(h, rule, s, c, w),
                )?;
                (summary, disks)
            }
        };

        Ok(PointOutcome::new()
            .with_label(format!("{} @{afr}% AFR", scheme.label()))
            .with_metric("prob_any_data_loss", summary.prob_any_data_loss)
            .with_metric_ci("availability", &summary.availability)
            .with_metric_ci("replacements_per_week", &summary.replacements_per_week)
            .with_metric_ci("data_loss_events", &summary.data_loss_events)
            .with_metric("raw_disks", raw_disks as f64)
            .with_metric("storage_overhead", scheme.storage_overhead())
            .with_replications_used(summary.replications))
    }

    fn sweep(&self) -> Result<SweepScenario, CfsError> {
        if self.schemes.is_empty() {
            return Err(CfsError::InvalidConfig {
                reason: "replication-vs-RAID sweep has no redundancy schemes".into(),
            });
        }
        if !(self.usable_capacity_tb.is_finite() && self.usable_capacity_tb > 0.0) {
            return Err(CfsError::InvalidConfig {
                reason: format!(
                    "replication-vs-RAID usable capacity must be positive, got {} TB",
                    self.usable_capacity_tb
                ),
            });
        }
        let scheme_axis: Vec<f64> = (0..self.schemes.len()).map(|i| i as f64).collect();
        let space = DesignSpace::new()
            .with_axis("scheme", scheme_axis)
            .with_axis("afr_percent", self.afr_percents.clone());
        let this = self.clone();
        Ok(SweepScenario::new(
            "replication_vs_raid",
            space,
            "prob_any_data_loss",
            Objective::Minimize,
            move |point, spec| this.evaluate_point(point, spec),
        ))
    }
}

impl Scenario for ReplicationVsRaid {
    fn name(&self) -> &str {
        "replication_vs_raid"
    }

    fn evaluate(&self, spec: &RunSpec) -> Result<ScenarioOutput, CfsError> {
        let mut output = self.sweep()?.evaluate(spec)?;
        // Re-label the winning scheme index with its human-readable name.
        if let Some(index) = output.metric("winner_scheme") {
            let scheme = self.schemes[index as usize];
            output = output.with_metric("winner_storage_overhead", scheme.storage_overhead());
        }
        Ok(output)
    }
}

/// Beowulf performability design-space sweep (Kirsal & Ever): the composed
/// head-plus-workers SAN of [`sanet::beowulf`] evaluated over a grid of
/// worker counts and repair-crew counts.
///
/// Axes of the underlying [`DesignSpace`]:
///
/// * `workers` — worker-node count `N` (nodes).
/// * `repair_crews` — simultaneous worker repairs (crews).
///
/// Reported per point: performability (delivered fraction of nominal
/// capacity, in `[0, 1]`), service availability (head up and ≥ 1 worker
/// up), head availability, and the time-averaged operational worker count
/// — each with confidence half-widths. The winner maximises
/// performability; since nominal capacity scales with `N`, the sweep reads
/// as "how many repair crews does each scale need to stay near 1.0".
#[derive(Debug, Clone)]
pub struct BeowulfPerformabilitySweep {
    /// Worker-count axis (nodes).
    pub worker_counts: Vec<u32>,
    /// Repair-crew axis (crews).
    pub repair_crews: Vec<u32>,
    /// Per-node and head-node reliability parameters; the `workers` and
    /// `repair_crews` fields of this base are overridden per point.
    pub base: BeowulfConfig,
}

impl Default for BeowulfPerformabilitySweep {
    /// 32–256 workers under 1 or 4 repair crews, with harsher-than-default
    /// node reliability (1 000-hour worker MTBF) so the repair queue
    /// actually bites at scale.
    fn default() -> Self {
        BeowulfPerformabilitySweep {
            worker_counts: vec![32, 64, 128, 256],
            repair_crews: vec![1, 4],
            base: BeowulfConfig {
                worker_mtbf_hours: 1_000.0,
                worker_repair_hours: 12.0,
                ..BeowulfConfig::default()
            },
        }
    }
}

impl BeowulfPerformabilitySweep {
    fn evaluate_point(
        &self,
        point: &DesignPoint,
        spec: &RunSpec,
    ) -> Result<PointOutcome, CfsError> {
        let config = BeowulfConfig {
            workers: point.value("workers").expect("workers axis always present") as u32,
            repair_crews: point.value("repair_crews").expect("crews axis always present") as u32,
            ..self.base
        };
        let beowulf = build_beowulf_model(&config)?;
        let mut experiment = Experiment::new(beowulf.model.clone(), spec.horizon_hours());
        experiment.set_confidence_level(spec.confidence_level());
        experiment.set_workers(spec.workers());
        for reward in beowulf.rewards() {
            experiment.add_reward(reward);
        }
        let summary = match spec.stopping_rule()? {
            Some(rule) => experiment.run_until(rule, spec.base_seed())?,
            None => experiment.run(spec.replications(), spec.base_seed())?,
        };
        let mut outcome = PointOutcome::new();
        for name in [PERFORMABILITY, SERVICE_AVAILABILITY, HEAD_AVAILABILITY, MEAN_WORKERS_UP] {
            outcome = outcome.with_metric_ci(name, &summary.reward(name)?.interval);
        }
        Ok(outcome.with_replications_used(summary.replications))
    }

    fn sweep(&self) -> Result<SweepScenario, CfsError> {
        if self.worker_counts.is_empty() || self.repair_crews.is_empty() {
            return Err(CfsError::InvalidConfig {
                reason: "Beowulf sweep needs at least one worker count and one crew count".into(),
            });
        }
        let space = DesignSpace::new()
            .with_axis("workers", self.worker_counts.iter().map(|&n| n as f64).collect::<Vec<_>>())
            .with_axis(
                "repair_crews",
                self.repair_crews.iter().map(|&n| n as f64).collect::<Vec<_>>(),
            );
        let this = self.clone();
        Ok(SweepScenario::new(
            "beowulf_performability",
            space,
            PERFORMABILITY,
            Objective::Maximize,
            move |point, spec| this.evaluate_point(point, spec),
        ))
    }
}

impl Scenario for BeowulfPerformabilitySweep {
    fn name(&self) -> &str {
        "beowulf_performability"
    }

    fn evaluate(&self, spec: &RunSpec) -> Result<ScenarioOutput, CfsError> {
        self.sweep()?.evaluate(spec)
    }
}

/// Default splitting effort when the spec carries no
/// [`RareEventPolicy::MultilevelSplitting`] and no precision target.
const DEFAULT_TRIALS_PER_LEVEL: usize = 256;

/// Ultra-reliable design-space sweep: replication factors and RAID `n+k`
/// widths provisioned to equal usable capacity on identical disks, with
/// the data-loss probability estimated by **fixed-effort multilevel
/// splitting** over exposure depth — the estimator that resolves the
/// 10⁻⁶..10⁻¹⁰ regime where the plain [`ReplicationVsRaid`] Monte-Carlo
/// sweep reports only zeros.
///
/// Axes of the underlying [`DesignSpace`]:
///
/// * `scheme` — index into [`UltraReliableSweep::schemes`].
/// * `mtbf_khours` — disk MTBF in thousands of hours (the hardware-quality
///   dimension of the ultra-reliable regime).
///
/// Reported per point: the estimated loss probability with its splitting
/// confidence half-width, the 95 % upper bound `loss_probability_upper`
/// (point + half-width; for a point whose deepest level recorded zero
/// hits, the rule-of-three bound through the resolved stages), the
/// achieved relative error, the naive-equivalent effective sample size,
/// the measured variance-reduction factor, the projected naive
/// replication count for the same precision, the final-level hit count,
/// the splitting trials spent, and the scheme's raw-capacity overhead.
///
/// The winner minimises `loss_probability_upper` — the honest objective
/// in this regime: a design whose loss was *not observed* competes on its
/// proven bound, never on a vacuous zero, and an unresolved point
/// (infinite relative error, rendered as an empty `relative_error` cell,
/// `hits = 0`) stays distinguishable from a resolved low one. Raise the
/// splitting effort to tighten the bounds of the candidates you care
/// about.
///
/// The replication policy comes from the spec: a
/// [`precision target`](RunSpec::with_precision_target) drives the
/// adaptive splitting loop (the target's min/max bound the *per-level*
/// trial count); otherwise
/// [`RareEventPolicy::MultilevelSplitting`] fixes the per-level effort,
/// with a default of 256 trials. An
/// [`RareEventPolicy::ImportanceSampling`] policy does not apply to these
/// storage kernels and falls back to the default effort.
#[derive(Debug, Clone)]
pub struct UltraReliableSweep {
    /// Usable capacity every scheme must provide, terabytes.
    pub usable_capacity_tb: f64,
    /// The candidate redundancy schemes.
    pub schemes: Vec<RedundancyScheme>,
    /// Disk MTBF axis, thousands of hours.
    pub mtbf_khours: Vec<f64>,
}

impl Default for UltraReliableSweep {
    /// A 24 TB comparison of (8+2)/(8+3) RAID against 2- and 3-way
    /// replication on 300k-hour and 1M-hour disks — loss probabilities
    /// from ~10⁻⁴ down past 10⁻⁸.
    fn default() -> Self {
        UltraReliableSweep {
            usable_capacity_tb: 24.0,
            schemes: vec![
                RedundancyScheme::Raid(RaidGeometry::raid6_8p2()),
                RedundancyScheme::Raid(RaidGeometry::raid_8p3()),
                RedundancyScheme::Replication { replicas: 2 },
                RedundancyScheme::Replication { replicas: 3 },
            ],
            mtbf_khours: vec![300.0, 1_000.0],
        }
    }
}

/// Runs a splitting estimator under the spec's replication policy — the
/// adaptive runner when a precision target is set, the fixed-effort runner
/// otherwise (with the per-level trial count from the spec's
/// [`RareEventPolicy`] or the default). Mirrors [`storage_summary_under`]:
/// the RAID and replication simulators share this exact run-signature
/// shape, so the spec-to-run mapping lives in one place.
fn splitting_under(
    spec: &RunSpec,
    run_fixed: impl FnOnce(f64, usize, u64, f64, usize) -> Result<SplittingResult, raidsim::RaidError>,
    run_adaptive: impl FnOnce(
        f64,
        &probdist::stats::StoppingRule,
        u64,
        f64,
        usize,
    ) -> Result<SplittingResult, raidsim::RaidError>,
) -> Result<SplittingResult, CfsError> {
    let result = match spec.stopping_rule()? {
        Some(rule) => run_adaptive(
            spec.horizon_hours(),
            &rule,
            spec.base_seed(),
            spec.confidence_level(),
            spec.workers(),
        )?,
        None => {
            let trials = match spec.rare_event() {
                Some(RareEventPolicy::MultilevelSplitting { trials_per_level }) => {
                    *trials_per_level
                }
                _ => DEFAULT_TRIALS_PER_LEVEL,
            };
            run_fixed(
                spec.horizon_hours(),
                trials,
                spec.base_seed(),
                spec.confidence_level(),
                spec.workers(),
            )?
        }
    };
    Ok(result)
}

impl UltraReliableSweep {
    /// Runs the splitting estimator for one scheme under the spec's
    /// replication policy.
    fn split(
        &self,
        scheme: RedundancyScheme,
        disk: DiskModel,
        spec: &RunSpec,
    ) -> Result<(SplittingResult, u32), CfsError> {
        match scheme {
            RedundancyScheme::Raid(geometry) => {
                // Reuse the equal-capacity provisioning of the MC sweep so
                // the two sweeps describe the same hardware.
                let base = ReplicationVsRaid {
                    usable_capacity_tb: self.usable_capacity_tb,
                    schemes: vec![scheme],
                    afr_percents: vec![],
                };
                let config = base.raid_config(geometry, disk);
                let disks = config.total_disks();
                let sim = StorageSimulator::new(config)?;
                let result = splitting_under(
                    spec,
                    |h, t, s, c, w| sim.splitting_loss_probability(h, t, s, c, w),
                    |h, rule, s, c, w| sim.splitting_loss_probability_until(h, rule, s, c, w),
                )?;
                Ok((result, disks))
            }
            RedundancyScheme::Replication { replicas } => {
                let config =
                    ReplicationConfig::for_usable_capacity(self.usable_capacity_tb, replicas, disk);
                let disks = config.disks;
                let sim = ReplicationSimulator::new(config)?;
                let result = splitting_under(
                    spec,
                    |h, t, s, c, w| sim.splitting_loss_probability(h, t, s, c, w),
                    |h, rule, s, c, w| sim.splitting_loss_probability_until(h, rule, s, c, w),
                )?;
                Ok((result, disks))
            }
        }
    }

    fn evaluate_point(
        &self,
        point: &DesignPoint,
        spec: &RunSpec,
    ) -> Result<PointOutcome, CfsError> {
        let scheme_index = point.value("scheme").expect("scheme axis always present") as usize;
        let scheme = self.schemes[scheme_index];
        let mtbf_hours = point.value("mtbf_khours").expect("mtbf axis always present") * 1000.0;
        let disk = DiskModel {
            mtbf_hours,
            weibull_shape: DiskModel::abe_sata_250gb().weibull_shape,
            capacity_gb: DiskModel::abe_sata_250gb().capacity_gb,
        };

        let (result, raw_disks) = self.split(scheme, disk, spec)?;
        let estimate = &result.estimate;
        let mut outcome = PointOutcome::new()
            .with_label(format!("{} @{mtbf_hours:.0}h MTBF", scheme.label()))
            .with_metric_ci("loss_probability", &estimate.interval)
            .with_metric("loss_probability_upper", estimate.interval.upper())
            .with_metric("effective_sample_size", estimate.effective_sample_size)
            .with_metric("variance_reduction_factor", estimate.variance_reduction_factor)
            .with_metric("hits", estimate.hits as f64)
            .with_metric("raw_disks", raw_disks as f64)
            .with_metric("storage_overhead", scheme.storage_overhead())
            .with_replications_used(estimate.replications);
        // Infinite values would poison the JSON report, so the precision
        // metrics are emitted only for resolved points (the table renders
        // an empty cell for unresolved ones).
        if estimate.relative_error().is_finite() {
            outcome = outcome.with_metric("relative_error", estimate.relative_error());
        }
        let p = estimate.interval.point;
        if p > 0.0 && p < 1.0 && estimate.relative_error().is_finite() {
            let naive = naive_replications_for(
                p,
                estimate.relative_error().max(1e-6),
                spec.confidence_level(),
            )
            .map_err(|e| CfsError::InvalidConfig {
                reason: format!("naive replication projection: {e}"),
            })?;
            outcome = outcome.with_metric("naive_replications_projected", naive);
        }
        Ok(outcome)
    }

    fn sweep(&self) -> Result<SweepScenario, CfsError> {
        if self.schemes.is_empty() {
            return Err(CfsError::InvalidConfig {
                reason: "ultra-reliable sweep has no redundancy schemes".into(),
            });
        }
        if !(self.usable_capacity_tb.is_finite() && self.usable_capacity_tb > 0.0) {
            return Err(CfsError::InvalidConfig {
                reason: format!(
                    "ultra-reliable sweep usable capacity must be positive, got {} TB",
                    self.usable_capacity_tb
                ),
            });
        }
        let scheme_axis: Vec<f64> = (0..self.schemes.len()).map(|i| i as f64).collect();
        let space = DesignSpace::new()
            .with_axis("scheme", scheme_axis)
            .with_axis("mtbf_khours", self.mtbf_khours.clone());
        let this = self.clone();
        Ok(SweepScenario::new(
            "ultra_reliable_sweep",
            space,
            "loss_probability_upper",
            Objective::Minimize,
            move |point, spec| this.evaluate_point(point, spec),
        ))
    }
}

impl Scenario for UltraReliableSweep {
    fn name(&self) -> &str {
        "ultra_reliable_sweep"
    }

    fn evaluate(&self, spec: &RunSpec) -> Result<ScenarioOutput, CfsError> {
        let mut output = self.sweep()?.evaluate(spec)?;
        if let Some(index) = output.metric("winner_scheme") {
            let scheme = self.schemes[index as usize];
            output = output.with_metric("winner_storage_overhead", scheme.storage_overhead());
        }
        Ok(output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::Study;

    fn quick_spec() -> RunSpec {
        RunSpec::new().with_horizon_hours(2000.0).with_replications(4).with_base_seed(7)
    }

    #[test]
    fn scheme_labels_and_overheads() {
        assert_eq!(RedundancyScheme::Raid(RaidGeometry::raid6_8p2()).label(), "raid 8+2");
        assert_eq!(RedundancyScheme::Replication { replicas: 3 }.label(), "3-way repl");
        assert!(
            (RedundancyScheme::Raid(RaidGeometry::raid6_8p2()).storage_overhead() - 1.25).abs()
                < 1e-12
        );
        assert_eq!(RedundancyScheme::Replication { replicas: 2 }.storage_overhead(), 2.0);
    }

    #[test]
    fn replication_vs_raid_reports_every_scheme_at_equal_capacity() {
        let sweep = ReplicationVsRaid {
            usable_capacity_tb: 24.0,
            schemes: vec![
                RedundancyScheme::Raid(RaidGeometry::raid6_8p2()),
                RedundancyScheme::Replication { replicas: 2 },
            ],
            afr_percents: vec![2.92],
        };
        let output = sweep.evaluate(&quick_spec()).unwrap();
        assert_eq!(output.scenario, "replication_vs_raid");
        assert_eq!(output.tables.len(), 1);
        assert_eq!(output.tables[0].len(), 2, "one row per design point");
        // Equal usable capacity: RAID 8+2 needs 24 TB / 2 TB-per-tier = 12
        // tiers × 10 disks; 2-way replication needs 24·2 TB / 250 GB.
        let rows = output.tables[0].rows();
        assert!(rows[0].iter().any(|c| c == "120.000000"), "raid raw disks: {rows:?}");
        assert!(rows[1].iter().any(|c| c == "192.000000"), "replication raw disks: {rows:?}");
        assert!(output.metric("winner_index").is_some());
        assert!(output.metric("winner_prob_any_data_loss").is_some());
        assert!(output.metric("winner_storage_overhead").is_some());
        assert!(output.replications_used.is_some());
    }

    #[test]
    fn replication_vs_raid_validates_its_configuration() {
        let mut sweep = ReplicationVsRaid::default();
        sweep.schemes.clear();
        assert!(sweep.evaluate(&quick_spec()).is_err());

        let sweep = ReplicationVsRaid { usable_capacity_tb: 0.0, ..ReplicationVsRaid::default() };
        assert!(sweep.evaluate(&quick_spec()).is_err());

        let mut sweep = ReplicationVsRaid::default();
        sweep.afr_percents.clear();
        assert!(sweep.evaluate(&quick_spec()).is_err());
    }

    #[test]
    fn beowulf_sweep_prefers_more_repair_crews() {
        let sweep = BeowulfPerformabilitySweep {
            worker_counts: vec![64],
            repair_crews: vec![1, 8],
            base: BeowulfConfig {
                worker_mtbf_hours: 200.0,
                worker_repair_hours: 24.0,
                ..BeowulfConfig::default()
            },
        };
        let output = sweep.evaluate(&quick_spec().with_horizon_hours(20_000.0)).unwrap();
        assert_eq!(output.scenario, "beowulf_performability");
        // With a 24-hour repair monopolising one crew, 8 crews must win.
        assert_eq!(output.metric("winner_repair_crews"), Some(8.0));
        let perf = output.metric("winner_performability").unwrap();
        assert!(perf > 0.0 && perf <= 1.0, "performability {perf}");
        assert_eq!(output.tables[0].len(), 2);
    }

    #[test]
    fn beowulf_sweep_validates_its_configuration() {
        let mut sweep = BeowulfPerformabilitySweep::default();
        sweep.worker_counts.clear();
        assert!(sweep.evaluate(&quick_spec()).is_err());

        let sweep = BeowulfPerformabilitySweep {
            repair_crews: vec![0],
            ..BeowulfPerformabilitySweep::default()
        };
        assert!(sweep.evaluate(&quick_spec()).is_err(), "zero crews must be rejected");
    }

    fn tiny_ultra_sweep() -> UltraReliableSweep {
        UltraReliableSweep {
            usable_capacity_tb: 1.0,
            schemes: vec![
                RedundancyScheme::Raid(RaidGeometry::raid6_8p2()),
                RedundancyScheme::Replication { replicas: 2 },
            ],
            mtbf_khours: vec![5.0],
        }
    }

    #[test]
    fn ultra_reliable_sweep_reports_rare_event_statistics() {
        let sweep = tiny_ultra_sweep();
        let spec = quick_spec()
            .with_horizon_hours(8760.0)
            .with_rare_event(RareEventPolicy::MultilevelSplitting { trials_per_level: 400 });
        let output = sweep.evaluate(&spec).unwrap();
        assert_eq!(output.scenario, "ultra_reliable_sweep");
        assert_eq!(output.tables[0].len(), 2, "one row per design point");
        // Every rare-event statistic the report promises is present.
        assert!(output.metric("winner_index").is_some());
        assert!(output.metric("winner_loss_probability_upper").is_some());
        assert!(output.metric("winner_storage_overhead").is_some());
        let headers = output.tables[0].headers().join(",");
        for column in [
            "loss_probability",
            "relative_error",
            "effective_sample_size",
            "variance_reduction_factor",
            "hits",
        ] {
            assert!(headers.contains(column), "missing column {column}: {headers}");
        }
        assert!(output.replications_used.is_some());
        // Unreliable 20k-hour disks at a one-year horizon: both schemes
        // resolve a non-zero loss probability at this effort.
        let winner = output.metric("winner_loss_probability_upper").unwrap();
        assert!(winner.is_finite() && winner >= 0.0);
    }

    #[test]
    fn ultra_reliable_sweep_honours_precision_targets() {
        let sweep = UltraReliableSweep {
            schemes: vec![RedundancyScheme::Replication { replicas: 2 }],
            ..tiny_ultra_sweep()
        };
        let spec = quick_spec().with_horizon_hours(8760.0).with_precision_target(0.5, 100, 800);
        let output = sweep.evaluate(&spec).unwrap();
        let used = output.replications_used.unwrap();
        assert!(used >= 100, "adaptive splitting must spend at least the minimum, used {used}");
    }

    #[test]
    fn ultra_reliable_sweep_validates_its_configuration() {
        let mut sweep = tiny_ultra_sweep();
        sweep.schemes.clear();
        assert!(sweep.evaluate(&quick_spec()).is_err());

        let sweep = UltraReliableSweep { usable_capacity_tb: 0.0, ..tiny_ultra_sweep() };
        assert!(sweep.evaluate(&quick_spec()).is_err());

        let mut sweep = tiny_ultra_sweep();
        sweep.mtbf_khours.clear();
        assert!(sweep.evaluate(&quick_spec()).is_err());

        // An invalid rare-event policy is rejected by spec validation.
        let bad = quick_spec()
            .with_rare_event(RareEventPolicy::MultilevelSplitting { trials_per_level: 1 });
        assert!(tiny_ultra_sweep().evaluate(&bad).is_err());
    }

    #[test]
    fn both_workloads_run_under_a_study_with_adaptive_stopping() {
        let spec = quick_spec().with_precision_target(0.5, 4, 16).with_workers(2);
        let report = Study::new()
            .with(ReplicationVsRaid {
                usable_capacity_tb: 12.0,
                schemes: vec![
                    RedundancyScheme::Raid(RaidGeometry::raid6_8p2()),
                    RedundancyScheme::Replication { replicas: 3 },
                ],
                afr_percents: vec![2.92],
            })
            .with(BeowulfPerformabilitySweep {
                worker_counts: vec![16, 32],
                repair_crews: vec![1],
                base: BeowulfConfig::default(),
            })
            .run(&spec)
            .unwrap();
        assert_eq!(report.outputs.len(), 2);
        for output in &report.outputs {
            let used = output.replications_used.expect("Monte-Carlo sweeps record replications");
            assert!((4..=16).contains(&(used as usize)), "{}: used {used}", output.scenario);
        }
        // All three report formats render the sweep tables.
        let text = report.to_text();
        assert!(text.contains("replication_vs_raid"), "{text}");
        assert!(text.contains("beowulf_performability"), "{text}");
        assert!(report.to_csv().contains("winner_index"));
        assert!(report.to_json().contains("beowulf_performability"));
    }
}
