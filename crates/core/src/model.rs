//! The composed stochastic activity network of the cluster (Figure 1).
//!
//! The model joins five submodels over shared places, mirroring the paper's
//! replicate/join tree:
//!
//! ```text
//! CLUSTER
//! ├── CLIENT            transient network storms between compute nodes and the CFS
//! └── CFS_UNIT
//!     ├── OSS           metadata + file-server fail-over pairs (replicated)
//!     ├── OSS_SAN_NW    FC ports / switches between OSS and DDN (per DDN unit)
//!     ├── SAN           CFS-wide software failures and central unmasked hardware incidents
//!     └── DDN_UNITS     RAID controllers (per DDN unit) and RAID6 tier data-loss events
//! ```
//!
//! The shared places are counters:
//!
//! * `cfs_down_conditions` — the number of conditions currently making the
//!   CFS unable to serve clients (a fully failed OSS pair, a failed network
//!   path, a software failure, an unrecovered tier, …). The CFS is
//!   available exactly when this count is zero.
//! * `storage_down_tiers` — the number of RAID tiers currently in
//!   unrecoverable-failure recovery (storage availability).
//! * `lost_node_hours` — accumulated compute node-hours lost to transient
//!   network errors (drives the cluster-utility measure).
//!
//! Each submodel builder adds its scoped places and activities to the same
//! [`ModelBuilder`], which is exactly a Möbius join; OSS pairs and DDN units
//! are added through [`sanet::compose::replicate`].

use probdist::{Deterministic, Dist, Exponential, Uniform};
use raidsim::analytic::tier_mttdl;
use sanet::compose::{join, replicate};
use sanet::{ActivityId, Marking, Model, ModelBuilder, PlaceId, SanError};

use crate::config::ClusterConfig;
use crate::CfsError;

/// Shared places of the composed cluster model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterPlaces {
    /// Count of conditions rendering the CFS unavailable (0 = available).
    pub cfs_down_conditions: PlaceId,
    /// Count of tiers currently recovering from an unrecoverable failure.
    pub storage_down_tiers: PlaceId,
    /// Accumulated compute node-hours lost to transient network errors.
    pub lost_node_hours: PlaceId,
    /// Number of OSS pairs currently completely failed.
    pub oss_pairs_down: PlaceId,
}

/// Activity handles needed by reward definitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterActivities {
    /// Aggregate disk-replacement activity (impulse reward counts
    /// replacements).
    pub disk_replacement: ActivityId,
    /// Transient network storm activities (one per storm-size case group).
    pub transient_storm: ActivityId,
    /// Unrecoverable tier failure (data-loss) activity.
    pub tier_data_loss: ActivityId,
}

/// The built cluster model: the SAN network plus the handles rewards need.
#[derive(Debug, Clone)]
pub struct ClusterModel {
    /// The underlying stochastic activity network.
    pub model: Model,
    /// Shared place handles.
    pub places: ClusterPlaces,
    /// Activity handles.
    pub activities: ClusterActivities,
    /// The configuration the model was built from.
    pub config: ClusterConfig,
}

/// Storm sizes observed on ABE (Table 2): number of compute nodes reporting
/// a Lustre mount failure on each storm day, out of 1200 nodes.
const ABE_STORM_SIZES: [f64; 12] =
    [102.0, 258.0, 375.0, 591.0, 5.0, 2.0, 4.0, 3.0, 463.0, 477.0, 51.0, 35.0];

/// Builds the composed cluster model for a configuration.
///
/// # Errors
///
/// Returns [`CfsError::InvalidConfig`] if the configuration fails
/// validation, and propagates model-construction errors.
pub fn build_cluster_model(config: &ClusterConfig) -> Result<ClusterModel, CfsError> {
    config.validate()?;
    let params = config.params;
    let mut b = ModelBuilder::new(format!("cluster/{}", config.name));

    // Shared places (the join state of Figure 1).
    let cfs_down = b.add_place("cfs_down_conditions", 0)?;
    let storage_down = b.add_place("storage_down_tiers", 0)?;
    let lost_node_hours = b.add_place("lost_node_hours", 0)?;
    let oss_pairs_down = b.add_place("oss_pairs_down", 0)?;

    let places = ClusterPlaces {
        cfs_down_conditions: cfs_down,
        storage_down_tiers: storage_down,
        lost_node_hours,
        oss_pairs_down,
    };

    // --- OSS submodel: metadata + file-server fail-over pairs -------------
    let spare_pool = if config.spare_oss {
        // One warm standby OSS shared by all pairs.
        Some(b.add_place("spare_oss_available", 1)?)
    } else {
        None
    };
    replicate(&mut b, "oss_pair", config.total_oss_pairs() as usize, |b, _i| {
        add_failover_pair(b, &params, cfs_down, Some(oss_pairs_down), spare_pool)
    })?;

    // --- OSS_SAN_NW submodel: redundant FC paths per DDN unit -------------
    replicate(&mut b, "oss_san_nw", config.storage.ddn_units as usize, |b, _i| {
        add_failover_pair(b, &params, cfs_down, None, None)
    })?;

    // --- DDN_UNITS submodel: RAID controller pairs per DDN unit -----------
    replicate(&mut b, "ddn_controller", config.storage.ddn_units as usize, |b, _i| {
        add_controller_pair(b, config, cfs_down)
    })?;

    // --- SAN submodel: CFS-wide software failures and central incidents ---
    join(&mut b, "san", |b| add_san_submodel(b, &params, cfs_down))?;

    // --- DDN_UNITS: aggregate tier data-loss and disk replacement ---------
    let (tier_data_loss, disk_replacement) =
        join(&mut b, "ddn_storage", |b| add_storage_submodel(b, config, cfs_down, storage_down))
            .map_err(CfsError::from)?;

    // --- CLIENT submodel: transient network storms -------------------------
    let transient_storm =
        join(&mut b, "client", |b| add_client_submodel(b, config, lost_node_hours))?;

    let model = b.build()?;
    Ok(ClusterModel {
        model,
        places,
        activities: ClusterActivities { disk_replacement, transient_storm, tier_data_loss },
        config: config.clone(),
    })
}

/// Adds a generic redundant fail-over pair (OSS pair or network-path pair):
/// two members, each failing at half the pair's hardware rate; a member
/// failure is masked unless the partner is already down or the failure
/// propagates (correlation probability `p`), in which case the pair — and
/// with it the CFS — is down until a repair restores a member.
fn add_failover_pair(
    b: &mut ModelBuilder,
    params: &crate::params::ModelParameters,
    cfs_down: PlaceId,
    pairs_down_counter: Option<PlaceId>,
    spare_pool: Option<PlaceId>,
) -> Result<PlaceId, SanError> {
    let working = b.add_place("working_members", 2)?;
    let down = b.add_place("pair_down", 0)?;
    let holding_spare =
        if spare_pool.is_some() { Some(b.add_place("holding_spare", 0)?) } else { None };

    let member_rate = params.hardware_failure_rate_per_pair / 2.0;
    let p = params.correlation_probability;

    // Marks the pair (and the CFS) down when no members remain working.
    let mark_down_if_dead = move |m: &mut Marking| {
        if m.tokens(working) == 0 && m.tokens(down) == 0 {
            m.set_tokens(down, 1);
            m.add_tokens(cfs_down, 1);
            if let Some(counter) = pairs_down_counter {
                m.add_tokens(counter, 1);
            }
        }
    };

    // Member hardware failure with aggregate (marking-dependent) rate. The
    // rate reads only this pair's `working` count, and the per-member
    // lifetimes are exponential (memoryless), so declaring the timing read
    // is law-preserving: the sampled delay stays valid until `working`
    // itself changes, and unrelated events elsewhere in the cluster no
    // longer force a redraw.
    b.timed_activity_fn("member_fail", move |m: &Marking| {
        let n = m.tokens(working).max(1) as f64;
        Dist::Exponential(Exponential::new(n * member_rate).expect("positive rate"))
    })?
    .timing_reads(&[working])
    .input_arc(working, 1)
    .case(1.0 - p)
    .output_gate(mark_down_if_dead)
    .case(p)
    .output_gate(move |m: &mut Marking| {
        // Correlated failure: the error propagates to the partner as well.
        m.remove_tokens(working, 1);
        mark_down_if_dead(m);
    })
    .build()?;

    // Hardware repair restores one member at a time (12–36 h window around
    // the configured mean).
    let repair =
        Uniform::new(params.hardware_repair_hours * 0.5, params.hardware_repair_hours * 1.5)
            .expect("valid repair window");
    b.timed_activity("member_repair", repair)?
        .enabling_predicate(move |m: &Marking| m.tokens(working) < 2)
        // The predicate reads only `working`; declaring that lets the
        // event-calendar scheduler skip this activity unless a member
        // fails or recovers.
        .enabling_reads(&[working])
        .output_arc(working, 1)
        .output_gate(move |m: &mut Marking| {
            if m.tokens(down) == 1 {
                m.set_tokens(down, 0);
                m.remove_tokens(cfs_down, 1);
                if let Some(counter) = pairs_down_counter {
                    m.remove_tokens(counter, 1);
                }
            }
        })
        .output_gate(move |m: &mut Marking| {
            // When fully repaired, return a borrowed spare to the pool.
            if let (Some(holding), Some(pool)) = (holding_spare, spare_pool) {
                if m.tokens(working) == 2 && m.tokens(holding) > 0 {
                    m.remove_tokens(holding, 1);
                    m.add_tokens(pool, 1);
                }
            }
        })
        .build()?;

    // Optional spare take-over: a warm standby OSS replaces a dead pair
    // after a short switch-over, restoring service long before the hardware
    // repair completes.
    if let (Some(pool), Some(holding)) = (spare_pool, holding_spare) {
        b.timed_activity(
            "spare_takeover",
            Deterministic::new(params.spare_oss_takeover_hours).expect("positive"),
        )?
        .input_arc(pool, 1)
        .enabling_predicate(move |m: &Marking| m.tokens(down) == 1)
        .enabling_reads(&[down])
        .output_arc(holding, 1)
        .output_gate(move |m: &mut Marking| {
            if m.tokens(down) == 1 {
                m.set_tokens(down, 0);
                m.remove_tokens(cfs_down, 1);
                if let Some(counter) = pairs_down_counter {
                    m.remove_tokens(counter, 1);
                }
            }
        })
        .build()?;
    }

    Ok(down)
}

/// Adds a RAID-controller fail-over pair for one DDN unit. Controller
/// failures are rarer than general OSS hardware failures (see
/// [`raidsim::ControllerModel`]); a double fault makes the unit's storage —
/// and hence the CFS — unavailable until repair.
fn add_controller_pair(
    b: &mut ModelBuilder,
    config: &ClusterConfig,
    cfs_down: PlaceId,
) -> Result<(), SanError> {
    let params = &config.params;
    let controller =
        config.storage.controllers.unwrap_or_else(raidsim::ControllerModel::abe_default);
    let working = b.add_place("working_controllers", 2)?;
    let down = b.add_place("pair_down", 0)?;
    let rate = controller.failure_rate_per_hour;
    let p = params.correlation_probability;

    let mark_down_if_dead = move |m: &mut Marking| {
        if m.tokens(working) == 0 && m.tokens(down) == 0 {
            m.set_tokens(down, 1);
            m.add_tokens(cfs_down, 1);
        }
    };

    b.timed_activity_fn("controller_fail", move |m: &Marking| {
        let n = m.tokens(working).max(1) as f64;
        Dist::Exponential(Exponential::new(n * rate).expect("positive rate"))
    })?
    // Exponential aggregate rate reading only `working`: see `member_fail`.
    .timing_reads(&[working])
    .input_arc(working, 1)
    .case(1.0 - p)
    .output_gate(mark_down_if_dead)
    .case(p)
    .output_gate(move |m: &mut Marking| {
        m.remove_tokens(working, 1);
        mark_down_if_dead(m);
    })
    .build()?;

    b.timed_activity(
        "controller_repair",
        Deterministic::new(controller.repair_hours).expect("positive"),
    )?
    .enabling_predicate(move |m: &Marking| m.tokens(working) < 2)
    .enabling_reads(&[working])
    .output_arc(working, 1)
    .output_gate(move |m: &mut Marking| {
        if m.tokens(down) == 1 {
            m.set_tokens(down, 0);
            m.remove_tokens(cfs_down, 1);
        }
    })
    .build()?;
    Ok(())
}

/// Adds the SAN-wide failure processes: Lustre/software failures repaired by
/// fsck (2–6 h) and central unmasked hardware incidents (the multi-hour
/// I/O-hardware outages of Table 1).
fn add_san_submodel(
    b: &mut ModelBuilder,
    params: &crate::params::ModelParameters,
    cfs_down: PlaceId,
) -> Result<(), SanError> {
    // Software failure / fsck cycle.
    let sw_ok = b.add_place("software_ok", 1)?;
    let sw_down = b.add_place("software_down", 0)?;
    b.timed_activity(
        "software_fail",
        Exponential::new(params.software_failure_rate).expect("positive rate"),
    )?
    .input_arc(sw_ok, 1)
    .output_arc(sw_down, 1)
    .output_arc(cfs_down, 1)
    .build()?;
    let sw_repair =
        Uniform::new(params.software_repair_hours * 0.5, params.software_repair_hours * 1.5)
            .expect("valid repair window");
    b.timed_activity("software_repair", sw_repair)?
        .input_arc(sw_down, 1)
        .input_arc(cfs_down, 1)
        .output_arc(sw_ok, 1)
        .build()?;

    // Central unmasked hardware incidents.
    if params.unmasked_hardware_incident_rate > 0.0 {
        let hw_ok = b.add_place("central_hardware_ok", 1)?;
        let hw_down = b.add_place("central_hardware_down", 0)?;
        b.timed_activity(
            "central_hardware_fail",
            Exponential::new(params.unmasked_hardware_incident_rate).expect("positive rate"),
        )?
        .input_arc(hw_ok, 1)
        .output_arc(hw_down, 1)
        .output_arc(cfs_down, 1)
        .build()?;
        let outage = Uniform::new(
            params.unmasked_hardware_outage_hours * 0.6,
            params.unmasked_hardware_outage_hours * 1.4,
        )
        .expect("valid outage window");
        b.timed_activity("central_hardware_repair", outage)?
            .input_arc(hw_down, 1)
            .input_arc(cfs_down, 1)
            .output_arc(hw_ok, 1)
            .build()?;
    }

    Ok(())
}

/// Adds the aggregate storage behaviour: unrecoverable tier failures (rate
/// `tiers / MTTDL` from the analytic RAID model) with their recovery, and an
/// aggregate disk-replacement counting process.
fn add_storage_submodel(
    b: &mut ModelBuilder,
    config: &ClusterConfig,
    cfs_down: PlaceId,
    storage_down: PlaceId,
) -> Result<(ActivityId, ActivityId), SanError> {
    let storage = &config.storage;
    let mttr = storage.replacement_hours + storage.rebuild_hours;
    let mttdl = tier_mttdl(storage.geometry, storage.disk.mtbf_hours, mttr)
        .expect("validated storage configuration");
    let tier_loss_rate = storage.tiers as f64 / mttdl;

    let ok_tiers = b.add_place("tiers_ok", storage.tiers as u64)?;

    // Unrecoverable tier failure: the tier's data must be restored (fsck /
    // re-stripe / restore from backup), during which the CFS is down.
    let tier_data_loss = b
        .timed_activity(
            "tier_data_loss",
            Exponential::new(tier_loss_rate.max(1e-18)).expect("positive rate"),
        )?
        .input_arc(ok_tiers, 1)
        .output_arc(storage_down, 1)
        .output_arc(cfs_down, 1)
        .build()?;
    b.timed_activity(
        "tier_recovery",
        Deterministic::new(storage.data_loss_recovery_hours).expect("positive recovery"),
    )?
    .input_arc(storage_down, 1)
    .input_arc(cfs_down, 1)
    .output_arc(ok_tiers, 1)
    .build()?;

    // Aggregate disk replacements (for the disk-replacement-rate reward):
    // the whole population of disks produces replacements at rate
    // `disks / MTBF`; each replacement is an impulse.
    let replacement_rate = storage.total_disks() as f64 / storage.disk.mtbf_hours;
    let pseudo = b.add_place("replacement_clock", 1)?;
    let disk_replacement = b
        .timed_activity(
            "disk_replacement",
            Exponential::new(replacement_rate).expect("positive rate"),
        )?
        .input_arc(pseudo, 1)
        .output_arc(pseudo, 1)
        .build()?;

    Ok((tier_data_loss, disk_replacement))
}

/// Adds the CLIENT submodel: transient network error storms between compute
/// nodes and the CFS. Each storm makes the CFS appear unavailable to a
/// subset of nodes and kills their running jobs, losing
/// `transient_work_loss_hours` of work per affected node. The storm rate
/// grows with the number of network components, i.e. proportionally to the
/// compute-node count; multi-path networking (Section 5.2) divides it by
/// four.
fn add_client_submodel(
    b: &mut ModelBuilder,
    config: &ClusterConfig,
    lost_node_hours: PlaceId,
) -> Result<ActivityId, SanError> {
    let params = &config.params;
    let scale = config.compute_nodes as f64 / 1200.0;
    let mitigation = if config.multipath_network { 0.25 } else { 1.0 };
    let storm_rate = params.transient_storm_rate * scale * mitigation;

    let clock = b.add_place("storm_clock", 1)?;
    let mut builder = b
        .timed_activity(
            "transient_storm",
            Exponential::new(storm_rate.max(1e-12)).expect("positive rate"),
        )?
        .input_arc(clock, 1);

    // One case per observed ABE storm size; the affected-node count scales
    // with the cluster and each affected node loses a fixed amount of work.
    let case_probability = 1.0 / ABE_STORM_SIZES.len() as f64;
    let nodes = config.compute_nodes as f64;
    let loss_hours = params.transient_work_loss_hours;
    for &size in &ABE_STORM_SIZES {
        let lost = ((size / 1200.0) * nodes * loss_hours).round().max(0.0) as u64;
        builder = builder
            .case(case_probability)
            .output_arc(clock, 1)
            .output_gate(move |m: &mut Marking| m.add_tokens(lost_node_hours, lost));
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;

    #[test]
    fn abe_model_builds_with_expected_structure() {
        let cm = build_cluster_model(&ClusterConfig::abe()).unwrap();
        // 9 OSS pairs + 2 NW pairs + 2 controller pairs, each with ≥2
        // activities, plus SAN, storage and client submodels.
        assert!(cm.model.num_activities() > 9 * 2 + 2 * 2 + 2 * 2 + 4 + 3);
        assert!(cm.model.place("cfs_down_conditions").is_some());
        assert!(cm.model.place("oss_pair[0]/working_members").is_some());
        assert!(cm.model.place("oss_pair[8]/working_members").is_some());
        assert!(cm.model.place("oss_pair[9]/working_members").is_none());
        assert!(cm.model.activity("san/software_fail").is_some());
        assert!(cm.model.activity("ddn_storage/tier_data_loss").is_some());
        assert!(cm.model.activity("client/transient_storm").is_some());
        // No spare-OSS machinery unless requested.
        assert!(cm.model.place("spare_oss_available").is_none());
        assert_eq!(cm.config.name, "ABE");
    }

    #[test]
    fn spare_oss_adds_takeover_machinery() {
        let cm = build_cluster_model(&ClusterConfig::abe().with_spare_oss()).unwrap();
        assert!(cm.model.place("spare_oss_available").is_some());
        assert!(cm.model.activity("oss_pair[0]/spare_takeover").is_some());
    }

    #[test]
    fn petascale_model_scales_the_replicated_submodels() {
        let cm = build_cluster_model(&ClusterConfig::petascale()).unwrap();
        assert!(cm.model.place("oss_pair[80]/working_members").is_some());
        assert!(cm.model.place("oss_pair[81]/working_members").is_none());
        assert!(cm.model.place("ddn_controller[19]/working_controllers").is_some());
        assert!(cm.model.place("ddn_controller[20]/working_controllers").is_none());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut bad = ClusterConfig::abe();
        bad.compute_nodes = 0;
        assert!(build_cluster_model(&bad).is_err());
    }

    #[test]
    fn initial_marking_is_fully_operational() {
        let cm = build_cluster_model(&ClusterConfig::abe()).unwrap();
        let marking = cm.model.initial_marking();
        assert_eq!(marking.tokens(cm.places.cfs_down_conditions), 0);
        assert_eq!(marking.tokens(cm.places.storage_down_tiers), 0);
        assert_eq!(marking.tokens(cm.places.lost_node_hours), 0);
        assert_eq!(marking.tokens(cm.places.oss_pairs_down), 0);
        let tiers_ok = cm.model.place("ddn_storage/tiers_ok").unwrap();
        assert_eq!(marking.tokens(tiers_ok), 48);
    }
}
