//! Design-space sweeps: cartesian parameter grids evaluated as a single
//! [`Scenario`], with per-point adaptive stopping and winner selection.
//!
//! The paper's whole argument is that dependability models exist to make
//! *informed design choices* — which redundancy scheme, how many spares,
//! how fast a repair pipeline. A design choice is a point in a parameter
//! grid, so this module provides the generic machinery for sweeping one:
//!
//! * [`DesignSpace`] — named parameter axes whose cartesian product is the
//!   set of candidate designs. An axis is a name plus the ordered values it
//!   takes (always `f64`; categorical choices are encoded as indices into a
//!   caller-side table, see [`crate::workloads::ReplicationVsRaid`]).
//! * [`DesignPoint`] — one cell of the grid: an index (row-major, first
//!   axis slowest) plus the `(axis, value)` coordinates.
//! * [`SweepScenario`] — wraps a point evaluator into a [`Scenario`]:
//!   every point is evaluated under the study's [`RunSpec`] with a
//!   well-separated per-point seed ([`RunSpec::offset_seed`]), so the whole
//!   sweep is a pure function of `(space, spec)` and inherits the engine's
//!   worker-count-invariant determinism. When the spec carries a precision
//!   target, each point runs its own adaptive stopping loop.
//! * Winner selection — the scenario names one objective metric and a
//!   direction ([`Objective`]); the report gets a per-point presentation
//!   table plus `winner_*` headline metrics identifying the best design
//!   (ties break to the lowest point index, keeping selection
//!   deterministic).
//!
//! The concrete workload families riding this driver live in
//! [`crate::workloads`].

use std::sync::Arc;

use sanet::lint::{codes, Diagnostic, Severity};

use crate::report::TextTable;
use crate::run::RunSpec;
use crate::scenario::{Metric, Scenario, ScenarioOutput};
use crate::CfsError;

/// Multiplier spreading per-point seed offsets across the `u64` space
/// (the golden-ratio increment of splitmix64), so neighbouring points
/// never share overlapping replication streams.
const POINT_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// One named parameter axis of a [`DesignSpace`].
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    name: String,
    values: Vec<f64>,
}

impl Axis {
    /// The axis name (e.g. `"workers"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered values the axis takes.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// A cartesian grid of named parameter axes — the candidate designs of a
/// sweep.
///
/// # Example
///
/// ```
/// use cfs_model::sweep::DesignSpace;
///
/// let space = DesignSpace::new()
///     .with_axis("workers", [32.0, 64.0, 128.0])
///     .with_axis("repair_crews", [1.0, 4.0]);
/// assert_eq!(space.len(), 6);
/// let p = &space.points()[4]; // workers=128, crews=1
/// assert_eq!(p.value("workers"), Some(128.0));
/// assert_eq!(p.value("repair_crews"), Some(1.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DesignSpace {
    axes: Vec<Axis>,
}

impl DesignSpace {
    /// Creates an empty design space (add axes before sweeping).
    pub fn new() -> Self {
        DesignSpace::default()
    }

    /// Appends a parameter axis (builder style). Axis order fixes point
    /// enumeration order: the first axis varies slowest.
    pub fn with_axis(mut self, name: impl Into<String>, values: impl Into<Vec<f64>>) -> Self {
        self.axes.push(Axis { name: name.into(), values: values.into() });
        self
    }

    /// The axes, in declaration order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Number of grid points (product of the axis lengths).
    pub fn len(&self) -> usize {
        if self.axes.is_empty() {
            0
        } else {
            self.axes.iter().map(|a| a.values.len()).product()
        }
    }

    /// Whether the space has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks the space is sweepable: at least one axis, no empty axis, no
    /// duplicate axis names, no non-finite values.
    ///
    /// # Errors
    ///
    /// Returns [`CfsError::InvalidConfig`] naming the offending axis.
    pub fn validate(&self) -> Result<(), CfsError> {
        if self.axes.is_empty() {
            return Err(CfsError::InvalidConfig {
                reason: "design space has no axes to sweep".into(),
            });
        }
        let mut seen = std::collections::HashSet::new();
        for axis in &self.axes {
            if !seen.insert(axis.name.as_str()) {
                return Err(CfsError::InvalidConfig {
                    reason: format!("design space declares axis '{}' twice", axis.name),
                });
            }
            if axis.values.is_empty() {
                return Err(CfsError::InvalidConfig {
                    reason: format!("design-space axis '{}' has no values", axis.name),
                });
            }
            if let Some(bad) = axis.values.iter().find(|v| !v.is_finite()) {
                return Err(CfsError::InvalidConfig {
                    reason: format!(
                        "design-space axis '{}' contains non-finite value {bad}",
                        axis.name
                    ),
                });
            }
        }
        Ok(())
    }

    /// Lints the space for *degenerate* axes — shapes [`validate`] accepts
    /// (or reports as hard errors) but that usually signal a mis-built
    /// sweep: an axis with a single value (nothing is being swept), an axis
    /// repeating a value (the duplicate designs are evaluated twice and
    /// can shadow the winner), plus the hard-error shapes (no axes, an
    /// empty axis, non-finite values) so a lint pass surfaces everything
    /// in one report.
    ///
    /// Every finding is a [`Diagnostic`] with code
    /// [`codes::DEGENERATE_AXIS`] (`SAN030`), severity `Warning`.
    ///
    /// [`validate`]: DesignSpace::validate
    pub fn lint(&self) -> Vec<Diagnostic> {
        let mut diagnostics = Vec::new();
        let mut degenerate = |element: &str, message: String| {
            diagnostics.push(Diagnostic::new(
                codes::DEGENERATE_AXIS,
                Severity::Warning,
                element,
                message,
            ));
        };
        if self.axes.is_empty() {
            degenerate("design space", "has no axes to sweep".into());
        }
        let mut seen = std::collections::HashSet::new();
        for axis in &self.axes {
            let element = format!("axis `{}`", axis.name);
            if !seen.insert(axis.name.as_str()) {
                degenerate(&element, "declared twice".into());
            }
            if axis.values.is_empty() {
                degenerate(&element, "has no values, so the space has no points".into());
            } else if axis.values.len() == 1 {
                degenerate(
                    &element,
                    format!("has a single value ({}); nothing is being swept", axis.values[0]),
                );
            }
            if let Some(bad) = axis.values.iter().find(|v| !v.is_finite()) {
                degenerate(&element, format!("contains non-finite value {bad}"));
            }
            let mut sorted = axis.values.clone();
            sorted.sort_by(f64::total_cmp);
            if sorted.windows(2).any(|w| w[0].total_cmp(&w[1]).is_eq()) {
                degenerate(
                    &element,
                    "repeats a value; duplicate designs are evaluated twice".into(),
                );
            }
        }
        diagnostics
    }

    /// Enumerates every grid point in row-major order (first axis slowest).
    pub fn points(&self) -> Vec<DesignPoint> {
        let total = self.len();
        let mut points = Vec::with_capacity(total);
        for index in 0..total {
            // Decompose the flat index into per-axis indices, last axis
            // fastest.
            let mut remainder = index;
            let mut coords = vec![0usize; self.axes.len()];
            for (slot, axis) in self.axes.iter().enumerate().rev() {
                coords[slot] = remainder % axis.values.len();
                remainder /= axis.values.len();
            }
            let coords = self
                .axes
                .iter()
                .zip(&coords)
                .map(|(axis, &i)| (axis.name.clone(), axis.values[i]))
                .collect();
            points.push(DesignPoint { index, coords });
        }
        points
    }
}

/// One candidate design: a flat index into the grid plus its coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    index: usize,
    coords: Vec<(String, f64)>,
}

impl DesignPoint {
    /// The point's row-major index in the grid (first axis slowest).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The `(axis, value)` coordinates, in axis declaration order.
    pub fn coords(&self) -> &[(String, f64)] {
        &self.coords
    }

    /// The value of the named axis at this point.
    pub fn value(&self, axis: &str) -> Option<f64> {
        self.coords.iter().find(|(name, _)| name == axis).map(|&(_, v)| v)
    }

    /// A compact human-readable label, e.g. `"workers=64, repair_crews=1"`.
    pub fn label(&self) -> String {
        self.coords
            .iter()
            .map(|(name, value)| format!("{name}={value}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Direction of the winner selection over the objective metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// The best design has the largest objective value (e.g. availability).
    Maximize,
    /// The best design has the smallest objective value (e.g. data loss).
    Minimize,
}

/// What a point evaluator reports for one design: its named metrics plus
/// the Monte-Carlo replication count actually spent (for adaptive specs).
#[derive(Debug, Clone, Default)]
pub struct PointOutcome {
    /// Named measures of the design (the first point fixes the column order
    /// of the sweep's presentation table; later points must report the same
    /// metric names).
    pub metrics: Vec<Metric>,
    /// Replications the point's evaluation actually used, if Monte-Carlo.
    pub replications_used: Option<usize>,
    /// Optional human-readable design label (e.g. `"raid 8+2"`), rendered
    /// as its own table column — the way categorical axes (encoded as
    /// indices) stay legible.
    pub label: Option<String>,
}

impl PointOutcome {
    /// Creates an empty outcome.
    pub fn new() -> Self {
        PointOutcome::default()
    }

    /// Attaches a human-readable design label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Appends a point metric.
    pub fn with_metric(mut self, name: impl Into<String>, value: f64) -> Self {
        self.metrics.push(Metric { name: name.into(), value, half_width: None });
        self
    }

    /// Appends a metric carrying a confidence half-width.
    pub fn with_metric_ci(
        mut self,
        name: impl Into<String>,
        interval: &probdist::stats::ConfidenceInterval,
    ) -> Self {
        self.metrics.push(Metric {
            name: name.into(),
            value: interval.point,
            half_width: Some(interval.half_width),
        });
        self
    }

    /// Records the replications spent on the point.
    pub fn with_replications_used(mut self, replications: usize) -> Self {
        self.replications_used = Some(replications);
        self
    }
}

/// The point evaluator of a sweep: evaluates one design under a (seed-
/// offset) run spec.
pub type PointEvaluator =
    Arc<dyn Fn(&DesignPoint, &RunSpec) -> Result<PointOutcome, CfsError> + Send + Sync>;

/// A [`DesignSpace`] plus a point evaluator and a winner-selection policy,
/// packaged as a [`Scenario`] so sweeps run through the ordinary
/// [`crate::study::Study`] / [`crate::report::Report`] machinery.
///
/// Point `i` is evaluated under `spec.offset_seed(i · stride)` with a
/// sweep-private stride, so every point draws from well-separated streams
/// while the whole sweep remains a pure function of the study's base seed.
/// Replication fan-outs inside a point use the study's ambient
/// work-stealing pool, so the sweep statistics are bit-identical at any
/// worker count.
pub struct SweepScenario {
    name: String,
    space: DesignSpace,
    objective_metric: String,
    objective: Objective,
    evaluator: PointEvaluator,
}

impl std::fmt::Debug for SweepScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepScenario")
            .field("name", &self.name)
            .field("space", &self.space)
            .field("objective_metric", &self.objective_metric)
            .field("objective", &self.objective)
            .finish()
    }
}

impl SweepScenario {
    /// Creates a sweep scenario.
    ///
    /// `objective_metric` names the metric (as reported by `evaluator`)
    /// that decides the winning design in the given `objective` direction.
    pub fn new(
        name: impl Into<String>,
        space: DesignSpace,
        objective_metric: impl Into<String>,
        objective: Objective,
        evaluator: impl Fn(&DesignPoint, &RunSpec) -> Result<PointOutcome, CfsError>
            + Send
            + Sync
            + 'static,
    ) -> Self {
        SweepScenario {
            name: name.into(),
            space,
            objective_metric: objective_metric.into(),
            objective,
            evaluator: Arc::new(evaluator),
        }
    }

    /// The design space being swept.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// Lints the sweep's configuration under a run spec: the space's
    /// degenerate-axis findings ([`DesignSpace::lint`]) plus a collision
    /// check over the per-point seeds the sweep would actually run with
    /// (`spec.offset_seed(index · stride)` for every point).
    pub fn lint(&self, spec: &RunSpec) -> Vec<Diagnostic> {
        let mut diagnostics = self.space.lint();
        let seeds: Vec<u64> = (0..self.space.len())
            .map(|i| spec.offset_seed((i as u64).wrapping_mul(POINT_SEED_STRIDE)).base_seed())
            .collect();
        diagnostics.extend(lint_point_seeds(&self.name, &seeds));
        diagnostics
    }
}

/// Checks a sweep's computed per-point base seeds for collisions: two
/// design points sharing a seed would draw *identical* replication streams,
/// silently correlating their estimates — a statistics-corrupting bug, so
/// each collision is a [`codes::SEED_COLLISION`] (`SAN031`) error naming
/// the colliding point indices.
///
/// The seed list is taken as input (rather than recomputed from a
/// [`SweepScenario`]) so callers can lint any seeding scheme; `seeds[i]`
/// must be point `i`'s base seed.
pub fn lint_point_seeds(sweep: &str, seeds: &[u64]) -> Vec<Diagnostic> {
    let mut first_index: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut diagnostics = Vec::new();
    for (index, &seed) in seeds.iter().enumerate() {
        match first_index.entry(seed) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(index);
            }
            std::collections::hash_map::Entry::Occupied(slot) => {
                diagnostics.push(Diagnostic::new(
                    codes::SEED_COLLISION,
                    Severity::Error,
                    format!("sweep `{sweep}`"),
                    format!(
                        "points {} and {index} share base seed {seed}; their replication \
                         streams would be identical",
                        slot.get()
                    ),
                ));
            }
        }
    }
    diagnostics
}

impl Scenario for SweepScenario {
    fn name(&self) -> &str {
        &self.name
    }

    fn evaluate(&self, spec: &RunSpec) -> Result<ScenarioOutput, CfsError> {
        spec.validate()?;
        self.space.validate()?;

        let points = self.space.points();
        let mut outcomes = Vec::with_capacity(points.len());
        let mut max_replications: Option<usize> = None;
        for point in &points {
            let point_spec =
                spec.offset_seed((point.index() as u64).wrapping_mul(POINT_SEED_STRIDE));
            let outcome = (self.evaluator)(point, &point_spec)?;
            if let Some(used) = outcome.replications_used {
                max_replications = Some(max_replications.map_or(used, |m| m.max(used)));
            }
            outcomes.push(outcome);
        }

        // Winner selection over the objective metric; non-finite objective
        // values are a modelling error, not a silent skip.
        let mut winner: Option<(usize, f64)> = None;
        for (outcome, point) in outcomes.iter().zip(&points) {
            let value = outcome
                .metrics
                .iter()
                .find(|m| m.name == self.objective_metric)
                .map(|m| m.value)
                .ok_or_else(|| CfsError::InvalidConfig {
                    reason: format!(
                        "sweep '{}': point {} ({}) did not report objective metric '{}'",
                        self.name,
                        point.index(),
                        point.label(),
                        self.objective_metric
                    ),
                })?;
            if !value.is_finite() {
                return Err(CfsError::InvalidConfig {
                    reason: format!(
                        "sweep '{}': objective '{}' is non-finite ({value}) at point {} ({})",
                        self.name,
                        self.objective_metric,
                        point.index(),
                        point.label()
                    ),
                });
            }
            let better = match (winner, self.objective) {
                (None, _) => true,
                (Some((_, best)), Objective::Maximize) => value > best,
                (Some((_, best)), Objective::Minimize) => value < best,
            };
            if better {
                winner = Some((point.index(), value));
            }
        }
        let (winner_index, winner_value) =
            winner.expect("validated non-empty space always yields a winner");

        // Presentation table: axes (plus a design-label column when any
        // point carries one) as the leading columns, then the union of
        // every point's metrics in first-seen registration order — a
        // point may legitimately omit a metric (e.g. a rare-event point
        // whose relative error is unresolved), rendering an empty cell.
        let labelled = outcomes.iter().any(|o| o.label.is_some());
        let mut metric_names: Vec<&str> = Vec::new();
        for outcome in &outcomes {
            for metric in &outcome.metrics {
                if !metric_names.contains(&metric.name.as_str()) {
                    metric_names.push(metric.name.as_str());
                }
            }
        }
        let mut headers: Vec<&str> = vec!["#"];
        headers.extend(self.space.axes().iter().map(Axis::name));
        if labelled {
            headers.push("design");
        }
        headers.extend(metric_names.iter().copied());
        headers.push("winner");
        let mut table = TextTable::new(
            format!(
                "Design-space sweep: {} ({} design {}; objective: {} {})",
                self.name,
                points.len(),
                if points.len() == 1 { "point" } else { "points" },
                match self.objective {
                    Objective::Maximize => "max",
                    Objective::Minimize => "min",
                },
                self.objective_metric
            ),
            &headers,
        );
        for (outcome, point) in outcomes.iter().zip(&points) {
            let mut row = vec![point.index().to_string()];
            row.extend(point.coords().iter().map(|(_, v)| format!("{v}")));
            if labelled {
                row.push(outcome.label.clone().unwrap_or_default());
            }
            for name in &metric_names {
                match outcome.metrics.iter().find(|m| m.name == *name) {
                    Some(metric) => match metric.half_width {
                        Some(hw) => row.push(format!("{:.6} ±{:.6}", metric.value, hw)),
                        None => row.push(format!("{:.6}", metric.value)),
                    },
                    None => row.push(String::new()),
                }
            }
            row.push(if point.index() == winner_index { "◄".to_string() } else { String::new() });
            table.add_row(&row);
        }

        let winner_point = &points[winner_index];
        let mut output = ScenarioOutput::new(self.name()).with_table(table);
        if let Some(max) = max_replications {
            output = output.with_replications_used(max);
        }
        // Headline metrics: each point's objective (so sweeps stay
        // machine-comparable across runs) plus the winner summary.
        for (outcome, point) in outcomes.iter().zip(&points) {
            if let Some(metric) = outcome.metrics.iter().find(|m| m.name == self.objective_metric) {
                let mut named = metric.clone();
                named.name = format!("{} @{}", self.objective_metric, point.label());
                output.metrics.push(named);
            }
        }
        output = output
            .with_metric("winner_index", winner_index as f64)
            .with_metric(format!("winner_{}", self.objective_metric), winner_value);
        for (axis, value) in winner_point.coords() {
            output = output.with_metric(format!("winner_{axis}"), *value);
        }
        Ok(output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> RunSpec {
        RunSpec::new().with_horizon_hours(100.0).with_replications(4).with_base_seed(1)
    }

    fn toy_sweep(objective: Objective) -> SweepScenario {
        let space = DesignSpace::new().with_axis("x", [1.0, 2.0, 3.0]).with_axis("y", [10.0, 20.0]);
        SweepScenario::new("toy", space, "score", objective, |point, spec| {
            // A deterministic objective with a unique optimum at (2, 20);
            // the seed offset is surfaced as a metric for the tests.
            let x = point.value("x").unwrap();
            let y = point.value("y").unwrap();
            Ok(PointOutcome::new()
                .with_metric("score", y - (x - 2.0).abs())
                .with_metric("seed", spec.base_seed() as f64)
                .with_replications_used(point.index() + 2))
        })
    }

    #[test]
    fn cartesian_enumeration_is_row_major() {
        let space = DesignSpace::new().with_axis("a", [1.0, 2.0]).with_axis("b", [5.0, 6.0, 7.0]);
        assert_eq!(space.len(), 6);
        assert!(!space.is_empty());
        let points = space.points();
        assert_eq!(points.len(), 6);
        // First axis slowest, second fastest.
        let coords: Vec<(f64, f64)> =
            points.iter().map(|p| (p.value("a").unwrap(), p.value("b").unwrap())).collect();
        assert_eq!(
            coords,
            vec![(1.0, 5.0), (1.0, 6.0), (1.0, 7.0), (2.0, 5.0), (2.0, 6.0), (2.0, 7.0)]
        );
        assert_eq!(points[3].index(), 3);
        assert_eq!(points[3].label(), "a=2, b=5");
        assert_eq!(points[0].value("missing"), None);
    }

    #[test]
    fn validation_rejects_malformed_spaces() {
        assert!(DesignSpace::new().validate().is_err());
        assert!(DesignSpace::new().with_axis("a", []).validate().is_err());
        assert!(DesignSpace::new().with_axis("a", [1.0]).with_axis("a", [2.0]).validate().is_err());
        assert!(DesignSpace::new().with_axis("a", [f64::NAN]).validate().is_err());
        assert!(DesignSpace::new().with_axis("a", [1.0]).validate().is_ok());
        // An empty axis also makes the space empty.
        assert!(DesignSpace::new().with_axis("a", []).is_empty());
    }

    #[test]
    fn sweep_selects_the_maximising_and_minimising_designs() {
        let max = toy_sweep(Objective::Maximize).evaluate(&quick_spec()).unwrap();
        // Optimum of y - |x-2| over the grid: x=2, y=20 (index 3).
        assert_eq!(max.metric("winner_index"), Some(3.0));
        assert_eq!(max.metric("winner_x"), Some(2.0));
        assert_eq!(max.metric("winner_y"), Some(20.0));
        assert_eq!(max.metric("winner_score"), Some(20.0));
        // Max replications across points (index 5 → 7).
        assert_eq!(max.replications_used, Some(7));
        assert_eq!(max.tables.len(), 1);
        assert_eq!(max.tables[0].len(), 6);

        let min = toy_sweep(Objective::Minimize).evaluate(&quick_spec()).unwrap();
        // Minimum: y=10 with |x-2| maximal → x∈{1,3}; ties break to the
        // lowest index (x=1, y=10 → index 0).
        assert_eq!(min.metric("winner_index"), Some(0.0));
        assert_eq!(min.metric("winner_score"), Some(9.0));
    }

    #[test]
    fn points_get_distinct_well_separated_seeds() {
        let output = toy_sweep(Objective::Maximize).evaluate(&quick_spec()).unwrap();
        let seeds: Vec<f64> = output.tables[0]
            .rows()
            .iter()
            .map(|row| row[4].split(' ').next().unwrap().parse::<f64>().unwrap())
            .collect();
        let mut unique = seeds.clone();
        unique.sort_by(f64::total_cmp);
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "every point must get its own seed: {seeds:?}");
    }

    #[test]
    fn missing_or_non_finite_objectives_are_errors() {
        let space = DesignSpace::new().with_axis("x", [1.0]);
        let missing =
            SweepScenario::new("m", space.clone(), "absent", Objective::Maximize, |_, _| {
                Ok(PointOutcome::new().with_metric("present", 1.0))
            });
        let err = missing.evaluate(&quick_spec()).unwrap_err();
        assert!(err.to_string().contains("absent"), "{err}");

        let non_finite = SweepScenario::new("n", space, "score", Objective::Maximize, |_, _| {
            Ok(PointOutcome::new().with_metric("score", f64::NAN))
        });
        let err = non_finite.evaluate(&quick_spec()).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn sweep_rejects_invalid_specs_and_spaces() {
        let sweep = toy_sweep(Objective::Maximize);
        assert!(sweep.evaluate(&RunSpec::new().with_replications(1)).is_err());
        let empty = SweepScenario::new(
            "empty",
            DesignSpace::new(),
            "score",
            Objective::Maximize,
            |_, _| Ok(PointOutcome::new()),
        );
        assert!(empty.evaluate(&quick_spec()).is_err());
        assert_eq!(empty.space().len(), 0);
        assert!(format!("{empty:?}").contains("empty"));
    }

    #[test]
    fn degenerate_axes_are_linted_as_san030_warnings() {
        // A healthy multi-value space lints clean.
        assert!(toy_sweep(Objective::Maximize).space().lint().is_empty());

        let space = DesignSpace::new()
            .with_axis("fixed", [7.0])
            .with_axis("dup", [1.0, 2.0, 1.0])
            .with_axis("bad", [f64::INFINITY, 0.0]);
        let diagnostics = space.lint();
        assert_eq!(diagnostics.len(), 3, "{diagnostics:?}");
        assert!(diagnostics.iter().all(|d| d.code() == codes::DEGENERATE_AXIS));
        assert!(diagnostics.iter().all(|d| d.severity() == Severity::Warning));
        assert!(diagnostics
            .iter()
            .any(|d| { d.element().contains("fixed") && d.message().contains("single value") }));
        assert!(diagnostics
            .iter()
            .any(|d| d.element().contains("dup") && d.message().contains("repeats")));
        assert!(diagnostics
            .iter()
            .any(|d| { d.element().contains("bad") && d.message().contains("non-finite") }));

        // The hard-error shapes surface through the lint too.
        assert!(!DesignSpace::new().lint().is_empty());
        assert!(DesignSpace::new()
            .with_axis("a", [])
            .lint()
            .iter()
            .any(|d| d.message().contains("no values")));
    }

    #[test]
    fn seed_collisions_are_linted_as_san031_errors() {
        // The real stride never collides: every point gets its own stream.
        let sweep = toy_sweep(Objective::Maximize);
        assert!(sweep.lint(&quick_spec()).is_empty(), "{:?}", sweep.lint(&quick_spec()));

        // A crafted collision (points 0 and 2 share a seed) is an error
        // naming both indices.
        let diagnostics = lint_point_seeds("crafted", &[10, 11, 10, 12]);
        assert_eq!(diagnostics.len(), 1, "{diagnostics:?}");
        let d = &diagnostics[0];
        assert_eq!(d.code(), codes::SEED_COLLISION);
        assert_eq!(d.severity(), Severity::Error);
        assert!(d.element().contains("crafted"), "{d}");
        assert!(d.message().contains("points 0 and 2"), "{d}");
        assert!(d.message().contains("10"), "{d}");

        // Every later duplicate is reported against the first occurrence.
        let many = lint_point_seeds("crafted", &[5, 5, 5]);
        assert_eq!(many.len(), 2);
        assert!(many.iter().all(|d| d.message().contains("points 0 and")));
    }

    #[test]
    fn sweep_lint_combines_space_and_seed_findings() {
        let space = DesignSpace::new().with_axis("only", [3.0]);
        let sweep =
            SweepScenario::new("degenerate", space, "score", Objective::Maximize, |_, _| {
                Ok(PointOutcome::new().with_metric("score", 0.0))
            });
        let diagnostics = sweep.lint(&quick_spec());
        assert_eq!(diagnostics.len(), 1, "{diagnostics:?}");
        assert_eq!(diagnostics[0].code(), codes::DEGENERATE_AXIS);
    }

    #[test]
    fn evaluator_errors_propagate() {
        let space = DesignSpace::new().with_axis("x", [1.0, 2.0]);
        let sweep = SweepScenario::new("fail", space, "score", Objective::Maximize, |point, _| {
            if point.index() == 1 {
                Err(CfsError::InvalidConfig { reason: "boom at point 1".into() })
            } else {
                Ok(PointOutcome::new().with_metric("score", 0.0))
            }
        });
        let err = sweep.evaluate(&quick_spec()).unwrap_err();
        assert!(err.to_string().contains("boom"), "{err}");
    }
}
