//! [`Study`]: the single entry point that executes any set of
//! [`Scenario`]s under one [`RunSpec`] and collects the results into a
//! [`Report`].
//!
//! # Scheduling model
//!
//! A study run creates **one global work-stealing pool**
//! ([`probdist::parallel::Pool`]) sized by [`RunSpec::workers`] and
//! schedules every scenario×replication work unit of the whole study onto
//! it. Scenarios are claimed from a shared counter (the calling thread is
//! itself a worker), and each scenario's replications fan out through the
//! same pool's permit budget, so:
//!
//! * the process never runs more than `workers` busy threads, no matter
//!   how scenarios and replications nest (nested-pool arbitration);
//! * a fast scenario that drains early releases its workers to the
//!   replications of the scenarios still running — wall-clock time is
//!   bounded by the total work, not by the slowest scenario's slowest
//!   fixed chunk.
//!
//! # Determinism
//!
//! Scheduling never touches the statistics: replication `i` of any
//! evaluation always draws from the RNG stream derived from the base seed
//! and `i`, results reduce in index order, and scenario outputs are
//! collected in registration order. Serial (`workers = 1`) and parallel
//! runs — and adaptive runs that stop at the same replication count —
//! therefore produce bit-identical reports, the property the determinism
//! integration tests pin down.

use probdist::parallel::{cancel_scope, panic_message, CancelToken, WorkUnitPanic};

use crate::report::{Report, ScenarioFailure};
use crate::run::{FailurePolicy, RunSpec};
use crate::scenario::{
    CorrelationAblation, Figure2StorageAvailability, Figure3DiskReplacements,
    Figure4CfsAvailability, RaidParityAblation, RepairTimeAblation, Scenario, SpareOssAblation,
    Table1Outages, Table2MountFailures, Table3Jobs, Table4DiskWeibull, Table5Parameters,
};
use crate::CfsError;

/// An ordered collection of scenarios that run under one spec.
///
/// # Example
///
/// ```no_run
/// use cfs_model::{ClusterConfig, RunSpec, Study};
///
/// # fn main() -> Result<(), cfs_model::CfsError> {
/// let spec = RunSpec::new().with_replications(8).with_workers(4);
/// let report = Study::new()
///     .with(ClusterConfig::abe())
///     .with(ClusterConfig::petascale())
///     .run(&spec)?;
/// println!("{}", report.to_text());
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct Study {
    scenarios: Vec<Box<dyn Scenario>>,
}

impl std::fmt::Debug for Study {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Study").field("scenarios", &self.names()).finish()
    }
}

impl Study {
    /// Creates an empty study.
    pub fn new() -> Self {
        Study::default()
    }

    /// Appends a scenario (builder style).
    pub fn with(mut self, scenario: impl Scenario + 'static) -> Self {
        self.scenarios.push(Box::new(scenario));
        self
    }

    /// Appends an already-boxed scenario.
    pub fn add(&mut self, scenario: Box<dyn Scenario>) -> &mut Self {
        self.scenarios.push(scenario);
        self
    }

    /// Appends every scenario of `other`, preserving order — the way to
    /// compose the preset studies (e.g. `Study::figures().and(Study::ablations())`).
    pub fn and(mut self, other: Study) -> Self {
        self.scenarios.extend(other.scenarios);
        self
    }

    /// The log-analysis tables of the paper (Tables 1–5).
    pub fn tables() -> Self {
        Study::new()
            .with(Table1Outages)
            .with(Table2MountFailures)
            .with(Table3Jobs)
            .with(Table4DiskWeibull)
            .with(Table5Parameters)
    }

    /// The simulation figures of the paper (Figures 2–4).
    pub fn figures() -> Self {
        Study::new()
            .with(Figure2StorageAvailability::default())
            .with(Figure3DiskReplacements::default())
            .with(Figure4CfsAvailability::default())
    }

    /// The four design-choice ablations.
    pub fn ablations() -> Self {
        Study::new()
            .with(RaidParityAblation)
            .with(RepairTimeAblation)
            .with(SpareOssAblation)
            .with(CorrelationAblation)
    }

    /// Every paper artefact: Tables 1–5, Figures 2–4, and the four
    /// ablations, in presentation order.
    pub fn paper_artefacts() -> Self {
        Study::tables().and(Study::figures()).and(Study::ablations())
    }

    /// The number of scenarios registered.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the study has no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The registered scenario names, in execution order.
    pub fn names(&self) -> Vec<&str> {
        self.scenarios.iter().map(|s| s.name()).collect()
    }

    /// Runs every scenario under `spec` — scheduling all
    /// scenario×replication work units onto one global work-stealing pool
    /// of [`RunSpec::workers`] threads — and collects the outputs into a
    /// [`Report`] in registration order.
    ///
    /// The report is a pure function of `(scenarios, spec)` — re-running
    /// with the same inputs, serially or in parallel, reproduces it bit
    /// for bit.
    ///
    /// # Errors
    ///
    /// Returns [`CfsError::InvalidConfig`] for an invalid spec, an empty
    /// study, or duplicate scenario names (the report is keyed by name, so
    /// duplicates would silently shadow each other in every lookup).
    ///
    /// Scenario failures — errors *and panics*, both contained at the
    /// scenario boundary without harming the pool or sibling scenarios —
    /// follow the spec's [`FailurePolicy`]. Under the default
    /// [`FailurePolicy::Abort`], once any scenario fails, unstarted
    /// scenarios are skipped (fail-fast), in-flight ones finish, and the
    /// earliest-registered failure is returned (a panic as
    /// [`CfsError::ScenarioPanic`]). Under
    /// [`FailurePolicy::ContinueAndReport`], every scenario still runs and
    /// each failure is recorded as a [`ScenarioFailure`] in the report.
    /// A [`CfsError::DeadlineExpired`] is always recorded as a failure
    /// rather than aborting — truncation is the expected behaviour of
    /// [`RunSpec::with_deadline`], not a defect of the study.
    pub fn run(&self, spec: &RunSpec) -> Result<Report, CfsError> {
        spec.validate()?;
        if self.scenarios.is_empty() {
            return Err(CfsError::InvalidConfig { reason: "study has no scenarios to run".into() });
        }
        let mut seen = std::collections::HashSet::new();
        for scenario in &self.scenarios {
            if !seen.insert(scenario.name()) {
                return Err(CfsError::InvalidConfig {
                    reason: format!(
                        "study contains two scenarios named '{}' — report lookups are keyed by \
                         name, so one would shadow the other; rename one (for a ClusterConfig, \
                         set a distinct `name`)",
                        scenario.name()
                    ),
                });
            }
        }
        // Telemetry scope: when the spec carries a config, enable the
        // sharded accumulators for the duration of the run and snapshot a
        // baseline so the report's attachment covers only this run's
        // activity (global counters persist across runs in one process).
        let telemetry = spec.telemetry();
        let _telemetry_guard = telemetry.map(|_| probdist::telemetry::enable_scoped());
        let baseline = telemetry.map(|_| probdist::telemetry::snapshot());
        let progress = telemetry.filter(|config| config.progress).map(|config| {
            probdist::telemetry::start_progress(
                std::time::Duration::from_millis(config.progress_interval_ms),
                spec.deadline(),
            )
        });
        // The cached process-wide pool: repeated studies reuse the same
        // worker threads instead of spawning a fresh crew per run.
        let pool = probdist::parallel::Pool::global(spec.workers());
        let abort = spec.failure_policy() == FailurePolicy::Abort;
        // One study-wide cancellation token covers every scenario: when the
        // deadline fires, each evaluation stops claiming replications and
        // returns its completed prefix.
        let token = spec.deadline().map(CancelToken::with_deadline);
        let failed = std::sync::atomic::AtomicBool::new(false);
        let results = pool.run_indexed(self.scenarios.len(), |index| {
            if failed.load(std::sync::atomic::Ordering::Relaxed) {
                return None;
            }
            let start = std::time::Instant::now();
            // Contain panics here, at the scenario boundary: the pool never
            // sees the unwind, so a poisoned scenario cannot take down its
            // siblings or leave the global pool unusable.
            let evaluated =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &token {
                    Some(token) => cancel_scope(token, || self.scenarios[index].evaluate(spec)),
                    None => self.scenarios[index].evaluate(spec),
                }));
            let elapsed_seconds = start.elapsed().as_secs_f64();
            let outcome = match evaluated {
                Ok(result) => ScenarioOutcome::Finished(result),
                Err(payload) => ScenarioOutcome::Panicked {
                    replication: payload
                        .downcast_ref::<WorkUnitPanic>()
                        .map(|wrapped| wrapped.index() as u64),
                    message: panic_message(payload.as_ref()),
                },
            };
            if abort && outcome.is_fatal() {
                failed.store(true, std::sync::atomic::Ordering::Relaxed);
            }
            Some((outcome, elapsed_seconds))
        });
        let mut outputs = Vec::with_capacity(results.len());
        let mut failures = Vec::new();
        for (index, result) in results.into_iter().enumerate() {
            let scenario = self.scenarios[index].name();
            match result {
                // Skipped after an earlier abort-policy failure — that
                // failure is in the results and returns below.
                None => {}
                Some((ScenarioOutcome::Finished(Ok(output)), elapsed_seconds)) => {
                    outputs.push(output.with_elapsed_seconds(elapsed_seconds));
                }
                Some((ScenarioOutcome::Finished(Err(error)), elapsed_seconds)) => {
                    // Deadline starvation is never fatal: the deadline is a
                    // study-wide policy doing exactly what it was asked to.
                    if abort && !matches!(error, CfsError::DeadlineExpired { .. }) {
                        return Err(error);
                    }
                    failures.push(ScenarioFailure {
                        scenario: scenario.to_string(),
                        replication: None,
                        message: error.to_string(),
                        elapsed_seconds,
                    });
                }
                Some((ScenarioOutcome::Panicked { replication, message }, elapsed_seconds)) => {
                    if abort {
                        return Err(CfsError::ScenarioPanic {
                            scenario: scenario.to_string(),
                            replication,
                            message,
                        });
                    }
                    failures.push(ScenarioFailure {
                        scenario: scenario.to_string(),
                        replication,
                        message,
                        elapsed_seconds,
                    });
                }
            }
        }
        // Stop the progress line before taking the final snapshot so its
        // last repaint cannot interleave with report rendering.
        drop(progress);
        let mut report = Report::new(spec.clone(), outputs).with_failures(failures);
        if let (Some(config), Some(baseline)) = (telemetry, baseline) {
            let snapshot = probdist::telemetry::snapshot().delta_since(&baseline);
            if let Some(path) = &config.exposition_path {
                snapshot.write_prometheus(path).map_err(|e| CfsError::InvalidConfig {
                    reason: format!("cannot write telemetry exposition file '{path}': {e}"),
                })?;
            }
            report = report.with_telemetry(snapshot);
        }
        Ok(report)
    }
}

/// What one scenario task produced: a normal result, or a contained panic
/// with the replication index (when the unwind carried a
/// [`WorkUnitPanic`]) and its payload as text.
enum ScenarioOutcome {
    Finished(Result<crate::scenario::ScenarioOutput, CfsError>),
    Panicked { replication: Option<u64>, message: String },
}

impl ScenarioOutcome {
    /// Whether this outcome trips the abort policy's fail-fast flag.
    /// Deadline starvation never does — truncation is requested behaviour.
    fn is_fatal(&self) -> bool {
        match self {
            ScenarioOutcome::Finished(Ok(_)) => false,
            ScenarioOutcome::Finished(Err(CfsError::DeadlineExpired { .. })) => false,
            ScenarioOutcome::Finished(Err(_)) | ScenarioOutcome::Panicked { .. } => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::scenario::ScenarioOutput;

    fn quick_spec() -> RunSpec {
        RunSpec::new().with_horizon_hours(2000.0).with_replications(4).with_base_seed(11)
    }

    #[test]
    fn empty_study_is_rejected() {
        assert!(Study::new().run(&quick_spec()).is_err());
        assert!(Study::new().is_empty());
    }

    #[test]
    fn duplicate_scenario_names_are_rejected() {
        let study = Study::new().with(ClusterConfig::petascale()).with(ClusterConfig::petascale());
        let err = study.run(&quick_spec()).unwrap_err();
        assert!(err.to_string().contains("two scenarios named"), "{err}");

        // Distinct names for the same base configuration are fine.
        let mut renamed = ClusterConfig::petascale();
        renamed.name = "petascale-variant".into();
        let study = Study::new().with(ClusterConfig::petascale()).with(renamed);
        assert!(study.run(&quick_spec()).is_ok());
    }

    #[test]
    fn invalid_spec_is_rejected_before_any_work() {
        let study = Study::new().with(ClusterConfig::abe());
        assert!(study.run(&RunSpec::new().with_replications(0)).is_err());
    }

    #[test]
    fn failing_scenario_error_propagates_through_the_pool() {
        struct Failing;
        impl crate::scenario::Scenario for Failing {
            fn name(&self) -> &str {
                "always-fails"
            }
            fn evaluate(&self, _: &RunSpec) -> Result<ScenarioOutput, CfsError> {
                Err(CfsError::InvalidConfig { reason: "deliberate test failure".into() })
            }
        }
        let study = Study::new().with(Failing).with(ClusterConfig::abe());
        for workers in [1, 4] {
            let err = study.run(&quick_spec().with_workers(workers)).unwrap_err();
            assert!(err.to_string().contains("deliberate test failure"), "{err}");
        }
    }

    struct Panicking;
    impl crate::scenario::Scenario for Panicking {
        fn name(&self) -> &str {
            "always-panics"
        }
        fn evaluate(&self, _: &RunSpec) -> Result<ScenarioOutput, CfsError> {
            panic!("deliberate test panic");
        }
    }

    #[test]
    fn panicking_scenario_becomes_a_typed_error_under_abort() {
        let study = Study::new().with(Panicking).with(ClusterConfig::abe());
        for workers in [1, 4] {
            let err = study.run(&quick_spec().with_workers(workers)).unwrap_err();
            match &err {
                CfsError::ScenarioPanic { scenario, message, .. } => {
                    assert_eq!(scenario, "always-panics");
                    assert!(message.contains("deliberate test panic"), "{message}");
                }
                other => panic!("expected ScenarioPanic, got {other}"),
            }
        }
        // The global pool survives the contained panic: the same study
        // minus the poison runs to completion afterwards.
        let report =
            Study::new().with(ClusterConfig::abe()).run(&quick_spec().with_workers(4)).unwrap();
        assert_eq!(report.outputs.len(), 1);
    }

    #[test]
    fn continue_and_report_records_failures_and_keeps_siblings() {
        let study = Study::new().with(Panicking).with(ClusterConfig::abe());
        let spec = quick_spec().with_failure_policy(FailurePolicy::ContinueAndReport);
        let report = study.run(&spec).unwrap();
        assert_eq!(report.outputs.len(), 1, "the healthy scenario still reports");
        assert_eq!(report.outputs[0].scenario, "ABE");
        assert_eq!(report.failures.len(), 1);
        let failure = &report.failures[0];
        assert_eq!(failure.scenario, "always-panics");
        assert!(failure.message.contains("deliberate test panic"), "{}", failure.message);
        assert!(failure.elapsed_seconds >= 0.0);
        // Every sink renders the failure.
        assert!(report.to_text().contains("contained failures"));
        assert!(report.to_csv().contains("deliberate test panic"));
        assert!(report.to_json().contains("deliberate test panic"));
    }

    #[test]
    fn deadline_starvation_is_reported_not_aborted() {
        struct Starved;
        impl crate::scenario::Scenario for Starved {
            fn name(&self) -> &str {
                "starved"
            }
            fn evaluate(&self, _: &RunSpec) -> Result<ScenarioOutput, CfsError> {
                Err(CfsError::DeadlineExpired { scenario: "starved".into(), completed: 1 })
            }
        }
        // Even under the default abort policy, deadline starvation is a
        // recorded failure: the study still returns the healthy outputs.
        let report =
            Study::new().with(Starved).with(ClusterConfig::abe()).run(&quick_spec()).unwrap();
        assert_eq!(report.outputs.len(), 1);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].message.contains("deadline expired"));
    }

    #[test]
    fn preset_studies_cover_the_paper() {
        assert_eq!(Study::tables().len(), 5);
        assert_eq!(Study::figures().len(), 3);
        assert_eq!(Study::ablations().len(), 4);
        let all = Study::paper_artefacts();
        assert_eq!(all.len(), 12);
        let names = all.names();
        assert!(names.contains(&"table1_outages"));
        assert!(names.contains(&"figure4_cfs_availability"));
        assert!(names.contains(&"ablation_correlation"));
        assert!(format!("{all:?}").contains("table1_outages"));
    }

    #[test]
    fn study_runs_scenarios_in_order_and_reports_each() {
        let report = Study::new()
            .with(ClusterConfig::abe())
            .with(Table5Parameters)
            .run(&quick_spec())
            .unwrap();
        assert_eq!(report.outputs.len(), 2);
        assert_eq!(report.outputs[0].scenario, "ABE");
        assert_eq!(report.outputs[1].scenario, "table5_parameters");
        assert!(report.output("ABE").is_some());
        assert!(report.output("missing").is_none());
    }
}
