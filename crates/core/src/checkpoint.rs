//! Versioned, checksummed persistence of completed replications so an
//! interrupted study can resume without redoing work.
//!
//! The file layout is two nested JSON documents. The outer envelope names
//! the format, its version, and an FNV-1a 64 checksum; the inner payload —
//! stored as a JSON *string* so the checksum covers its exact bytes — holds
//! one entry per `(scenario, base seed)` pair with the raw per-replication
//! reward vectors:
//!
//! ```json
//! {
//!   "format": "cfs-study-checkpoint",
//!   "version": 1,
//!   "checksum": "fnv1a64:c0ffee0123456789",
//!   "payload": "{\"entries\":[...]}"
//! }
//! ```
//!
//! Because replication `i` of any evaluation draws from the RNG stream
//! derived from `(base seed, i)`, restoring a stored prefix and simulating
//! the remainder is bit-identical to an uninterrupted run — the report
//! bytes match exactly. The checksum turns a truncated or hand-edited file
//! into a typed [`CfsError::Checkpoint`] instead of silently-wrong
//! statistics; a *missing* file is not an error (every fresh run starts
//! with no checkpoint).
//!
//! Writes are atomic (write to `<path>.tmp`, then rename), and concurrent
//! read-modify-write cycles from the study's worker pool serialise on a
//! process-wide lock, so a checkpoint file is never observed half-written.

use std::fs;
use std::path::Path;
use std::sync::{Mutex, PoisonError};

use probdist::telemetry;
use serde::{json, Value};

use crate::CfsError;

/// Format tag stored in the envelope; a file with a different tag is
/// rejected rather than misparsed.
pub const FORMAT: &str = "cfs-study-checkpoint";

/// Current checkpoint format version. Readers reject other versions.
pub const VERSION: u64 = 1;

/// One completed replication: the named reward totals plus the event count
/// and final simulation clock — everything the analysis layer needs to
/// rebuild the replication's `RunResult` without re-simulating.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRun {
    /// `(reward name, accumulated value)` in reward-table order.
    pub rewards: Vec<(String, f64)>,
    /// Events executed by the replication.
    pub events: u64,
    /// Simulation clock at the end of the replication, hours.
    pub end_time: f64,
}

/// In-memory image of a checkpoint file: one entry per
/// `(scenario, base seed)` key, each holding the contiguous prefix of
/// completed replications.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckpointData {
    entries: Vec<(String, Vec<StoredRun>)>,
}

impl CheckpointData {
    /// An empty checkpoint (what [`load`] returns for a missing file).
    pub fn new() -> Self {
        CheckpointData::default()
    }

    /// The stored replication prefix for `key`, if any.
    pub fn entry(&self, key: &str) -> Option<&[StoredRun]> {
        self.entries.iter().find(|(name, _)| name == key).map(|(_, runs)| runs.as_slice())
    }

    /// Replaces (or inserts) the replication prefix for `key`.
    pub fn set_entry(&mut self, key: &str, runs: Vec<StoredRun>) {
        match self.entries.iter_mut().find(|(name, _)| name == key) {
            Some((_, existing)) => *existing = runs,
            None => self.entries.push((key.to_string(), runs)),
        }
    }

    /// Number of entries (distinct scenario × seed keys).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the checkpoint holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The entry key for a scenario evaluated under a given base seed. Keying
/// on both means a checkpoint file can be shared by a whole study (distinct
/// scenario names) and survives seed changes without serving stale runs.
pub fn entry_key(scenario: &str, base_seed: u64) -> String {
    format!("{scenario}#{base_seed:x}")
}

/// FNV-1a 64-bit over `bytes` — tiny, dependency-free, and plenty to catch
/// truncation and accidental edits (this is an integrity check, not an
/// authenticity one).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn checkpoint_error(path: &Path, reason: impl Into<String>) -> CfsError {
    CfsError::Checkpoint { path: path.display().to_string(), reason: reason.into() }
}

fn payload_value(data: &CheckpointData) -> Value {
    let entries = data
        .entries
        .iter()
        .map(|(key, runs)| {
            let runs = runs
                .iter()
                .map(|run| {
                    let rewards = run
                        .rewards
                        .iter()
                        .map(|(name, value)| {
                            Value::Array(vec![Value::String(name.clone()), Value::Float(*value)])
                        })
                        .collect();
                    Value::Object(vec![
                        ("rewards".to_string(), Value::Array(rewards)),
                        ("events".to_string(), Value::UInt(run.events)),
                        ("end_time".to_string(), Value::Float(run.end_time)),
                    ])
                })
                .collect();
            Value::Object(vec![
                ("key".to_string(), Value::String(key.clone())),
                ("runs".to_string(), Value::Array(runs)),
            ])
        })
        .collect();
    Value::Object(vec![("entries".to_string(), Value::Array(entries))])
}

fn parse_payload(path: &Path, payload: &str) -> Result<CheckpointData, CfsError> {
    let value = json::parse(payload)
        .map_err(|e| checkpoint_error(path, format!("malformed payload: {e}")))?;
    let entries = value
        .get("entries")
        .and_then(Value::as_array)
        .ok_or_else(|| checkpoint_error(path, "payload has no 'entries' array"))?;
    let mut data = CheckpointData::new();
    for entry in entries {
        let key = entry
            .get("key")
            .and_then(Value::as_str)
            .ok_or_else(|| checkpoint_error(path, "entry has no 'key' string"))?;
        let runs = entry
            .get("runs")
            .and_then(Value::as_array)
            .ok_or_else(|| checkpoint_error(path, "entry has no 'runs' array"))?;
        let mut stored = Vec::with_capacity(runs.len());
        for run in runs {
            let rewards = run
                .get("rewards")
                .and_then(Value::as_array)
                .ok_or_else(|| checkpoint_error(path, "run has no 'rewards' array"))?;
            let mut pairs = Vec::with_capacity(rewards.len());
            for pair in rewards {
                let fields = pair.as_array().unwrap_or(&[]);
                let (name, value) = match fields {
                    [name, value] => (name.as_str(), value.as_f64()),
                    _ => (None, None),
                };
                match (name, value) {
                    (Some(name), Some(value)) => pairs.push((name.to_string(), value)),
                    _ => {
                        return Err(checkpoint_error(
                            path,
                            "reward entry is not a [name, value] pair",
                        ));
                    }
                }
            }
            let events = run
                .get("events")
                .and_then(Value::as_u64)
                .ok_or_else(|| checkpoint_error(path, "run has no 'events' count"))?;
            let end_time = run
                .get("end_time")
                .and_then(Value::as_f64)
                .ok_or_else(|| checkpoint_error(path, "run has no 'end_time' value"))?;
            stored.push(StoredRun { rewards: pairs, events, end_time });
        }
        data.set_entry(key, stored);
    }
    Ok(data)
}

/// Reads a checkpoint file.
///
/// A missing file yields an empty [`CheckpointData`] — the normal state of
/// every fresh run.
///
/// # Errors
///
/// Returns [`CfsError::Checkpoint`] when the file exists but is unreadable,
/// malformed, from a different format or version, or fails its checksum.
pub fn load(path: impl AsRef<Path>) -> Result<CheckpointData, CfsError> {
    let path = path.as_ref();
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(CheckpointData::new());
        }
        Err(e) => return Err(checkpoint_error(path, format!("cannot read: {e}"))),
    };
    let envelope = json::parse(&text)
        .map_err(|e| checkpoint_error(path, format!("malformed envelope: {e}")))?;
    let format = envelope
        .get("format")
        .and_then(Value::as_str)
        .ok_or_else(|| checkpoint_error(path, "envelope has no 'format' tag"))?;
    if format != FORMAT {
        return Err(checkpoint_error(
            path,
            format!("format tag is '{format}', expected '{FORMAT}'"),
        ));
    }
    let version = envelope
        .get("version")
        .and_then(Value::as_u64)
        .ok_or_else(|| checkpoint_error(path, "envelope has no 'version' number"))?;
    if version != VERSION {
        return Err(checkpoint_error(
            path,
            format!("version {version} is not the supported version {VERSION}"),
        ));
    }
    let checksum = envelope
        .get("checksum")
        .and_then(Value::as_str)
        .ok_or_else(|| checkpoint_error(path, "envelope has no 'checksum' field"))?;
    let payload = envelope
        .get("payload")
        .and_then(Value::as_str)
        .ok_or_else(|| checkpoint_error(path, "envelope has no 'payload' string"))?;
    let expected = format!("fnv1a64:{:016x}", fnv1a64(payload.as_bytes()));
    if checksum != expected {
        return Err(checkpoint_error(
            path,
            format!("checksum mismatch: file says {checksum}, payload hashes to {expected}"),
        ));
    }
    parse_payload(path, payload)
}

/// Writes a checkpoint file atomically: the document is assembled in
/// memory, written to `<path>.tmp`, and renamed over `path`, so readers
/// never observe a half-written file.
///
/// # Errors
///
/// Returns [`CfsError::Checkpoint`] when the temporary file cannot be
/// written or the rename fails.
pub fn store(path: impl AsRef<Path>, data: &CheckpointData) -> Result<(), CfsError> {
    let path = path.as_ref();
    let payload = payload_value(data).to_json();
    let envelope = Value::Object(vec![
        ("format".to_string(), Value::String(FORMAT.to_string())),
        ("version".to_string(), Value::UInt(VERSION)),
        (
            "checksum".to_string(),
            Value::String(format!("fnv1a64:{:016x}", fnv1a64(payload.as_bytes()))),
        ),
        ("payload".to_string(), Value::String(payload)),
    ]);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let document = envelope.to_json_pretty();
    telemetry::counter_inc(telemetry::MetricId::CheckpointWrites);
    telemetry::counter_add(telemetry::MetricId::CheckpointBytes, document.len() as u64);
    let write_span = telemetry::span(telemetry::MetricId::SpanCheckpointWrite);
    fs::write(&tmp, document)
        .map_err(|e| checkpoint_error(path, format!("cannot write temporary file: {e}")))?;
    drop(write_span);
    let _rename_span = telemetry::span(telemetry::MetricId::SpanCheckpointRename);
    fs::rename(&tmp, path)
        .map_err(|e| checkpoint_error(path, format!("cannot rename temporary file: {e}")))
}

/// Serialises every read-modify-write cycle in this process: scenarios of a
/// study checkpoint concurrently into the same file from the worker pool.
static UPDATE_LOCK: Mutex<()> = Mutex::new(());

/// Atomically merges `runs` into the checkpoint at `path` under `key`:
/// loads the current file (empty if missing), replaces the entry, and
/// stores the result. Concurrent updates from this process serialise on a
/// lock; the write itself is atomic.
///
/// # Errors
///
/// Returns [`CfsError::Checkpoint`] when the existing file is corrupt or
/// the rewrite fails.
pub fn update(path: impl AsRef<Path>, key: &str, runs: Vec<StoredRun>) -> Result<(), CfsError> {
    let _guard = UPDATE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let mut data = load(path.as_ref())?;
    data.set_entry(key, runs);
    store(path.as_ref(), &data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("cfs-checkpoint-test-{}-{name}", std::process::id()));
        path
    }

    fn sample_runs() -> Vec<StoredRun> {
        vec![
            StoredRun {
                rewards: vec![
                    ("availability".to_string(), 0.999_875_421_301),
                    ("repairs".to_string(), 17.0),
                ],
                events: 12_345,
                end_time: 8760.0,
            },
            StoredRun {
                rewards: vec![
                    ("availability".to_string(), f64::MIN_POSITIVE),
                    ("repairs".to_string(), 1.0e-17),
                ],
                events: 1,
                end_time: 0.125,
            },
        ]
    }

    #[test]
    fn round_trip_preserves_every_bit() {
        let path = temp_path("round-trip");
        let mut data = CheckpointData::new();
        data.set_entry(&entry_key("baseline", 42), sample_runs());
        store(&path, &data).unwrap();
        let reloaded = load(&path).unwrap();
        assert_eq!(reloaded, data);
        let runs = reloaded.entry(&entry_key("baseline", 42)).unwrap();
        for (stored, original) in runs.iter().zip(sample_runs().iter()) {
            for ((_, a), (_, b)) in stored.rewards.iter().zip(original.rewards.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_checkpoint() {
        let data = load(temp_path("never-created")).unwrap();
        assert!(data.is_empty());
        assert!(data.entry("anything").is_none());
    }

    #[test]
    fn corrupt_files_are_typed_errors_not_panics() {
        let path = temp_path("corrupt");

        // Truncated mid-document.
        fs::write(&path, "{\"format\": \"cfs-stu").unwrap();
        let err = load(&path).unwrap_err();
        assert!(matches!(err, CfsError::Checkpoint { .. }), "{err}");

        // Wrong format tag.
        fs::write(&path, "{\"format\": \"other\", \"version\": 1}").unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.to_string().contains("format tag"), "{err}");

        // Unsupported version.
        fs::write(&path, format!("{{\"format\": \"{FORMAT}\", \"version\": 2}}")).unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.to_string().contains("version 2"), "{err}");

        // Checksum mismatch: flip a digit in a valid file's stored value.
        let mut data = CheckpointData::new();
        data.set_entry("k", sample_runs());
        store(&path, &data).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("12345", "12346", 1);
        assert_ne!(text, tampered, "tamper target not found");
        fs::write(&path, tampered).unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn update_merges_entries_without_clobbering_others() {
        let path = temp_path("update");
        let _ = fs::remove_file(&path);
        update(&path, "a#1", sample_runs()).unwrap();
        update(&path, "b#1", sample_runs()[..1].to_vec()).unwrap();
        let longer = sample_runs();
        update(&path, "a#1", longer.clone()).unwrap();
        let data = load(&path).unwrap();
        assert_eq!(data.len(), 2);
        assert_eq!(data.entry("a#1").unwrap(), longer.as_slice());
        assert_eq!(data.entry("b#1").unwrap().len(), 1);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn entry_keys_separate_scenarios_and_seeds() {
        assert_eq!(entry_key("baseline", 255), "baseline#ff");
        assert_ne!(entry_key("baseline", 1), entry_key("baseline", 2));
        assert_ne!(entry_key("a", 1), entry_key("b", 1));
    }
}
