//! The Table 5 model parameters: values, valid ranges, and provenance.
//!
//! Table 5 of the paper consolidates every parameter of the simulation
//! model, along with where it came from (log-file analysis, hardware
//! specifications, or discussions with the NCSA administrators).
//! [`ModelParameters`] carries the per-experiment values;
//! [`ParameterTable`] reproduces the table itself, including the ranges
//! swept across experiments.

use serde::{Deserialize, Serialize};

use probdist::{Afr, Mtbf};

use crate::CfsError;

/// Where a parameter value came from (the superscripts of Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParameterSource {
    /// Estimated from the failure-log analysis.
    LogAnalysis,
    /// Taken from hardware data sheets / literature.
    Specification,
    /// Reported by the NCSA cluster administrators.
    Administrators,
}

impl ParameterSource {
    /// Short label matching the table footnote.
    pub fn label(&self) -> &'static str {
        match self {
            ParameterSource::LogAnalysis => "log file analysis",
            ParameterSource::Specification => "data specification / literature",
            ParameterSource::Administrators => "cluster administrators",
        }
    }
}

/// One row of the Table 5 parameter table.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ParameterRow {
    /// Parameter name as printed in the paper.
    pub name: &'static str,
    /// The range swept across experiments, as printed in the paper.
    pub range: &'static str,
    /// The value used for the ABE baseline in this reproduction.
    pub abe_value: String,
    /// Provenance of the value.
    pub source: ParameterSource,
}

/// The dependability parameters of the cluster model (Table 5), with ABE
/// defaults.
///
/// All rates are per hour, all durations in hours.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParameters {
    /// Disk MTBF, hours (Table 5: 100 000 – 3 000 000).
    pub disk_mtbf_hours: f64,
    /// Weibull shape parameter of disk lifetimes (Table 5: 0.6 – 1.0).
    pub disk_weibull_shape: f64,
    /// Average time to replace a failed disk, hours (Table 5: 1 – 12).
    pub disk_replacement_hours: f64,
    /// Average time to replace failed hardware (OSS node, controller,
    /// network port), hours (Table 5: 12 – 36).
    pub hardware_repair_hours: f64,
    /// Average time to fix a software failure (fsck, Lustre restart), hours
    /// (Table 5: 2 – 6).
    pub software_repair_hours: f64,
    /// Hardware failure rate per fail-over pair (OSS pair, controller pair,
    /// network-path pair), per hour (Table 5: 1 – 2 per 720 h).
    pub hardware_failure_rate_per_pair: f64,
    /// Software failure rate for the cluster file system as a whole, per
    /// hour (Table 5: 1 – 2 per 720 h).
    pub software_failure_rate: f64,
    /// Rate of system-level hardware incidents that are *not* masked by
    /// fail-over (the user-visible I/O-hardware outages of Table 1), per
    /// hour.
    pub unmasked_hardware_incident_rate: f64,
    /// Mean duration of an unmasked hardware incident, hours (Table 1 rows:
    /// 8 – 18 h).
    pub unmasked_hardware_outage_hours: f64,
    /// Probability that a failure propagates to a causally or spatially
    /// connected component (the correlated-failure parameter *p* of
    /// Section 4.3).
    pub correlation_probability: f64,
    /// Rate of transient network error storms per hour at ABE scale
    /// (estimated from the Table 2 / Table 3 log analysis).
    pub transient_storm_rate: f64,
    /// Mean fraction of compute nodes affected by one transient storm.
    pub transient_storm_node_fraction: f64,
    /// Mean compute-node work lost per affected node per storm, hours
    /// (failed jobs must be re-run from their last checkpoint).
    pub transient_work_loss_hours: f64,
    /// Job submissions per hour (Table 5: 12 – 15).
    pub job_rate_per_hour: f64,
    /// Time for a standby spare OSS to take over a failed pair, hours (only
    /// used when the spare-OSS mitigation is enabled).
    pub spare_oss_takeover_hours: f64,
}

impl Default for ModelParameters {
    fn default() -> Self {
        ModelParameters::abe()
    }
}

impl ModelParameters {
    /// The ABE baseline parameters used throughout Section 5.
    pub fn abe() -> Self {
        ModelParameters {
            disk_mtbf_hours: 300_000.0,
            disk_weibull_shape: 0.7,
            disk_replacement_hours: 4.0,
            hardware_repair_hours: 24.0,
            software_repair_hours: 4.0,
            hardware_failure_rate_per_pair: 1.0 / 720.0,
            software_failure_rate: 1.5 / 720.0,
            unmasked_hardware_incident_rate: 2.5 / 3480.0,
            unmasked_hardware_outage_hours: 13.0,
            correlation_probability: 0.0075,
            transient_storm_rate: 12.0 / 2232.0,
            transient_storm_node_fraction: 0.16,
            transient_work_loss_hours: 6.0,
            job_rate_per_hour: 13.0,
            spare_oss_takeover_hours: 1.0,
        }
    }

    /// The disk AFR implied by the MTBF.
    pub fn disk_afr(&self) -> Afr {
        Mtbf::new(self.disk_mtbf_hours).expect("positive mtbf").to_afr()
    }

    /// Validates every parameter against its Table 5 range (with a small
    /// tolerance beyond the printed ranges so sensitivity sweeps can explore
    /// slightly outside them).
    ///
    /// # Errors
    ///
    /// Returns [`CfsError::InvalidConfig`] naming the first out-of-range
    /// parameter.
    pub fn validate(&self) -> Result<(), CfsError> {
        let checks: [(&str, f64, f64, f64); 10] = [
            ("disk_mtbf_hours", self.disk_mtbf_hours, 10_000.0, 10_000_000.0),
            ("disk_weibull_shape", self.disk_weibull_shape, 0.3, 2.0),
            ("disk_replacement_hours", self.disk_replacement_hours, 0.5, 48.0),
            ("hardware_repair_hours", self.hardware_repair_hours, 1.0, 168.0),
            ("software_repair_hours", self.software_repair_hours, 0.5, 48.0),
            ("hardware_failure_rate_per_pair", self.hardware_failure_rate_per_pair, 1e-6, 0.1),
            ("software_failure_rate", self.software_failure_rate, 1e-6, 0.1),
            ("unmasked_hardware_incident_rate", self.unmasked_hardware_incident_rate, 0.0, 0.1),
            ("transient_storm_rate", self.transient_storm_rate, 0.0, 1.0),
            ("job_rate_per_hour", self.job_rate_per_hour, 0.1, 1000.0),
        ];
        for (name, value, lo, hi) in checks {
            if !value.is_finite() || value < lo || value > hi {
                return Err(CfsError::InvalidConfig {
                    reason: format!("parameter `{name}` = {value} outside sane range [{lo}, {hi}]"),
                });
            }
        }
        for (name, value) in [
            ("correlation_probability", self.correlation_probability),
            ("transient_storm_node_fraction", self.transient_storm_node_fraction),
        ] {
            if !(0.0..=1.0).contains(&value) {
                return Err(CfsError::InvalidConfig {
                    reason: format!("parameter `{name}` = {value} must be a probability"),
                });
            }
        }
        if self.transient_work_loss_hours < 0.0 || self.spare_oss_takeover_hours <= 0.0 {
            return Err(CfsError::InvalidConfig {
                reason: "work-loss and spare-takeover durations must be non-negative/positive"
                    .into(),
            });
        }
        Ok(())
    }
}

/// The rendered Table 5 parameter table.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ParameterTable {
    rows: Vec<ParameterRow>,
}

impl ParameterTable {
    /// Builds the table for a given parameter set.
    pub fn new(params: &ModelParameters) -> Self {
        use ParameterSource::*;
        let rows = vec![
            ParameterRow {
                name: "Disk MTBF",
                range: "100000-3000000 hours",
                abe_value: format!("{:.0} hours", params.disk_mtbf_hours),
                source: Specification,
            },
            ParameterRow {
                name: "Annualized Failure Rate (AFR)",
                range: "0.40%-8.6%",
                abe_value: format!("{:.2}%", params.disk_afr().percent()),
                source: Specification,
            },
            ParameterRow {
                name: "Weibull distribution's shape parameter",
                range: "0.6-1.0",
                abe_value: format!("{:.2}", params.disk_weibull_shape),
                source: LogAnalysis,
            },
            ParameterRow {
                name: "Number of DDN",
                range: "2-20",
                abe_value: "2".into(),
                source: LogAnalysis,
            },
            ParameterRow {
                name: "Number of compute nodes",
                range: "1200-32000",
                abe_value: "1200".into(),
                source: LogAnalysis,
            },
            ParameterRow {
                name: "Average time to replace disks",
                range: "1-12 hours",
                abe_value: format!("{:.0} hours", params.disk_replacement_hours),
                source: Administrators,
            },
            ParameterRow {
                name: "Average time to replace hardware",
                range: "12-36 hours",
                abe_value: format!("{:.0} hours", params.hardware_repair_hours),
                source: Administrators,
            },
            ParameterRow {
                name: "Average time to fix software",
                range: "2-6 hours",
                abe_value: format!("{:.0} hours", params.software_repair_hours),
                source: Administrators,
            },
            ParameterRow {
                name: "Job request per hour",
                range: "12-15 per hour",
                abe_value: format!("{:.0} per hour", params.job_rate_per_hour),
                source: LogAnalysis,
            },
            ParameterRow {
                name: "Hardware failure rate",
                range: "1-2 per 720 hours",
                abe_value: format!(
                    "{:.1} per 720 hours",
                    params.hardware_failure_rate_per_pair * 720.0
                ),
                source: LogAnalysis,
            },
            ParameterRow {
                name: "Software failure rate",
                range: "1-2 per 720 hours",
                abe_value: format!("{:.1} per 720 hours", params.software_failure_rate * 720.0),
                source: LogAnalysis,
            },
            ParameterRow {
                name: "Annual growth rate of disk capacity",
                range: "33%",
                abe_value: "33%".into(),
                source: Specification,
            },
            ParameterRow {
                name: "DDN Units",
                range: "2-20",
                abe_value: "2".into(),
                source: LogAnalysis,
            },
            ParameterRow {
                name: "OSS Units",
                range: "8-80",
                abe_value: "8".into(),
                source: LogAnalysis,
            },
        ];
        ParameterTable { rows }
    }

    /// The table rows.
    pub fn rows(&self) -> &[ParameterRow] {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abe_defaults_are_inside_table5_ranges() {
        let p = ModelParameters::abe();
        assert!(p.validate().is_ok());
        assert!((100_000.0..=3_000_000.0).contains(&p.disk_mtbf_hours));
        assert!((0.6..=1.0).contains(&p.disk_weibull_shape));
        assert!((1.0..=12.0).contains(&p.disk_replacement_hours));
        assert!((12.0..=36.0).contains(&p.hardware_repair_hours));
        assert!((2.0..=6.0).contains(&p.software_repair_hours));
        let hw_per_720 = p.hardware_failure_rate_per_pair * 720.0;
        assert!((1.0..=2.0).contains(&hw_per_720));
        let sw_per_720 = p.software_failure_rate * 720.0;
        assert!((1.0..=2.0).contains(&sw_per_720));
        assert!((12.0..=15.0).contains(&p.job_rate_per_hour));
        assert!((2.8..=3.0).contains(&p.disk_afr().percent()));
    }

    #[test]
    fn default_is_abe() {
        assert_eq!(ModelParameters::default(), ModelParameters::abe());
    }

    #[test]
    fn validation_rejects_out_of_range_values() {
        let mut p = ModelParameters::abe();
        p.disk_mtbf_hours = 1.0;
        assert!(p.validate().is_err());

        let mut p = ModelParameters::abe();
        p.correlation_probability = 1.5;
        assert!(p.validate().is_err());

        let mut p = ModelParameters::abe();
        p.disk_weibull_shape = -0.7;
        assert!(p.validate().is_err());

        let mut p = ModelParameters::abe();
        p.spare_oss_takeover_hours = 0.0;
        assert!(p.validate().is_err());

        let mut p = ModelParameters::abe();
        p.transient_storm_node_fraction = 2.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn parameter_table_covers_every_table5_row() {
        let table = ParameterTable::new(&ModelParameters::abe());
        assert_eq!(table.rows().len(), 14);
        let names: Vec<&str> = table.rows().iter().map(|r| r.name).collect();
        assert!(names.contains(&"Disk MTBF"));
        assert!(names.contains(&"OSS Units"));
        assert!(names.contains(&"Annual growth rate of disk capacity"));
        // Every row carries a provenance label.
        for row in table.rows() {
            assert!(!row.source.label().is_empty());
            assert!(!row.abe_value.is_empty());
        }
    }
}
