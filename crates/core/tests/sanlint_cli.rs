//! End-to-end tests of the `sanlint` binary: exit codes, unknown-model
//! handling, and the `--reach` mode, pinned against the real executable so
//! the CI gate's contract (`0` clean / `1` deny rejection / `2` usage
//! error) cannot drift silently.

use std::process::{Command, Output};

fn sanlint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sanlint"))
        .args(args)
        .output()
        .expect("sanlint binary must run")
}

fn exit_code(output: &Output) -> i32 {
    output.status.code().expect("sanlint must exit normally")
}

#[test]
fn lint_over_the_fast_models_is_clean_at_deny_warning() {
    // A model subset with a reduced probe corpus keeps the test quick; the
    // full-registry run is the CI step.
    let output = sanlint(&[
        "--model",
        "failover-pair",
        "--model",
        "beowulf",
        "--deny",
        "warning",
        "--probes",
        "48",
    ]);
    assert_eq!(exit_code(&output), 0, "{}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("verdict: clean"), "{stdout}");
}

#[test]
fn reach_over_the_registry_is_clean_at_deny_warning() {
    let output = sanlint(&["--reach", "--deny", "warning", "--max-states", "3000"]);
    assert_eq!(exit_code(&output), 0, "{}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("analytic"), "{stdout}");
    assert!(stdout.contains("simulation-only"), "{stdout}");
    assert!(stdout.contains("verdict: clean"), "{stdout}");
}

#[test]
fn reach_at_deny_info_rejects_with_exit_one() {
    // SAN044 (state-space size) is always reported at Info, so deny level
    // info is guaranteed to reject even a fully admissible model.
    let output = sanlint(&["--reach", "--model", "failover-pair", "--deny", "info"]);
    assert_eq!(exit_code(&output), 1, "{}", String::from_utf8_lossy(&output.stdout));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("SAN044"), "{stdout}");
}

#[test]
fn reach_json_has_the_reach_block() {
    let output =
        sanlint(&["--reach", "--model", "failover-pair", "--format", "json", "--deny", "warning"]);
    assert_eq!(exit_code(&output), 0);
    let stdout = String::from_utf8_lossy(&output.stdout);
    for key in ["\"reach\"", "\"states\"", "\"analytic\": true", "\"deny_level\""] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
}

#[test]
fn unknown_models_exit_two_with_the_registry_and_a_suggestion() {
    let output = sanlint(&["--model", "beowolf"]);
    assert_eq!(exit_code(&output), 2);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown model 'beowolf'"), "{stderr}");
    assert!(stderr.contains("did you mean 'beowulf'?"), "{stderr}");
    assert!(stderr.contains("failover-pair"), "should list the registry: {stderr}");

    // Same contract in reach mode.
    let output = sanlint(&["--reach", "--model", "petascale-mitigatd"]);
    assert_eq!(exit_code(&output), 2);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("did you mean 'petascale-mitigated'?"), "{stderr}");
}

#[test]
fn usage_errors_exit_two() {
    let output = sanlint(&["--no-such-flag"]);
    assert_eq!(exit_code(&output), 2);
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown argument"));

    let output = sanlint(&["--max-states", "many"]);
    assert_eq!(exit_code(&output), 2);
    assert!(String::from_utf8_lossy(&output.stderr).contains("positive integer"));

    let output = sanlint(&["--deny", "fatal"]);
    assert_eq!(exit_code(&output), 2);
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown deny level"));
}

#[test]
fn list_prints_the_registry_and_exits_zero() {
    let output = sanlint(&["--list"]);
    assert_eq!(exit_code(&output), 0);
    let stdout = String::from_utf8_lossy(&output.stdout);
    for name in ["abe", "abe-spare", "petascale", "petascale-mitigated", "beowulf", "failover-pair"]
    {
        assert!(stdout.lines().any(|line| line == name), "missing {name} in {stdout}");
    }
}
