//! Synthetic failure-log generation calibrated to the ABE cluster's
//! published statistics.
//!
//! The real NCSA logs are not available; this generator substitutes them
//! with statistically equivalent synthetic logs (see DESIGN.md §1). Every
//! published summary statistic of Tables 1–4 maps onto a generator
//! parameter:
//!
//! | Paper statistic | Config parameter |
//! |---|---|
//! | 10 outages in ≈2900 h, availability 0.97–0.98 (Table 1) | per-cause outage rates and duration ranges |
//! | mount-failure storms of 2–591 nodes on 12 days (Table 2) | storm rate and storm-size distribution |
//! | 44 085 jobs, 1234 transient vs 184 other failures (Table 3) | job arrival rate and failure probabilities |
//! | ≈11 disk replacements in 84 days from 480 disks, Weibull β≈0.7 (Table 4) | disk count, Weibull shape, disk MTBF |

use probdist::{Dist, Distribution, Empirical, Exponential, SimRng, Uniform, Weibull};
use serde::{Deserialize, Serialize};

use crate::event::{
    DiskReplacement, EventKind, FailureLog, JobOutcome, JobRecord, LogEvent, MountFailure,
    OutageCause, OutageRecord,
};
use crate::{LogError, SimDate};

/// Rate and duration model for one outage cause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutageCauseConfig {
    /// The cause being configured.
    pub cause: OutageCause,
    /// Mean time between outages of this cause, hours.
    pub mean_interarrival_hours: f64,
    /// Minimum outage duration, hours.
    pub min_duration_hours: f64,
    /// Maximum outage duration, hours.
    pub max_duration_hours: f64,
}

/// Full configuration of the synthetic log generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogGenConfig {
    /// Calendar start of the observation window.
    pub origin: SimDate,
    /// Length of the observation window, hours.
    pub window_hours: f64,
    /// Number of compute nodes (1200 for ABE).
    pub compute_nodes: u32,
    /// Number of disks in the scratch partition (480 for ABE).
    pub disks: u32,
    /// Outage processes, one per cause.
    pub outages: Vec<OutageCauseConfig>,
    /// Mean time between mount-failure storms, hours.
    pub storm_mean_interarrival_hours: f64,
    /// Observed storm sizes (number of nodes reporting) to resample from.
    pub storm_sizes: Vec<f64>,
    /// Mean job inter-arrival time, hours (ABE: ≈ 0.077 h, i.e. 13 jobs/h).
    pub job_mean_interarrival_hours: f64,
    /// Probability that a job fails due to a transient network error.
    pub p_job_transient_failure: f64,
    /// Probability that a job fails due to any other error.
    pub p_job_other_failure: f64,
    /// Weibull shape parameter of disk lifetimes (0.7 for ABE).
    pub disk_weibull_shape: f64,
    /// Mean disk lifetime (MTBF), hours (300 000 for ABE).
    pub disk_mtbf_hours: f64,
}

impl LogGenConfig {
    /// The configuration calibrated to the ABE cluster's published
    /// statistics (Tables 1–5): the SAN observation window of roughly five
    /// months starting 2007-07-01, 1200 compute nodes, 480 scratch disks,
    /// ten outages spread over four causes, twelve mount-failure storm days,
    /// ≈13 job submissions per hour with a 5:1 transient:other failure
    /// ratio, and Weibull(0.7) disk lifetimes with a 300 000-hour MTBF.
    pub fn abe_calibrated() -> Self {
        let window_hours = 3480.0; // ~145 days: 2007-07-01 .. 2007-11-22
        LogGenConfig {
            origin: SimDate::new(2007, 7, 1, 0, 0),
            window_hours,
            compute_nodes: 1200,
            disks: 480,
            outages: vec![
                OutageCauseConfig {
                    cause: OutageCause::IoHardware,
                    // 6 I/O-hardware outages over the window.
                    mean_interarrival_hours: window_hours / 6.0,
                    min_duration_hours: 8.0,
                    max_duration_hours: 18.5,
                },
                OutageCauseConfig {
                    cause: OutageCause::BatchSystem,
                    mean_interarrival_hours: window_hours / 1.0,
                    min_duration_hours: 2.0,
                    max_duration_hours: 4.0,
                },
                OutageCauseConfig {
                    cause: OutageCause::Network,
                    mean_interarrival_hours: window_hours / 1.0,
                    min_duration_hours: 2.0,
                    max_duration_hours: 4.0,
                },
                OutageCauseConfig {
                    cause: OutageCause::FileSystem,
                    mean_interarrival_hours: window_hours / 2.0,
                    min_duration_hours: 0.4,
                    max_duration_hours: 2.0,
                },
            ],
            // Twelve storm days over the ~93-day compute-log window.
            storm_mean_interarrival_hours: 2232.0 / 12.0,
            storm_sizes: vec![
                102.0, 258.0, 375.0, 591.0, 5.0, 2.0, 4.0, 3.0, 463.0, 477.0, 51.0, 35.0,
            ],
            // 44 085 jobs over ~3400 h ≈ 13 jobs/hour.
            job_mean_interarrival_hours: 1.0 / 13.0,
            p_job_transient_failure: 1234.0 / 44_085.0,
            p_job_other_failure: 184.0 / 44_085.0,
            disk_weibull_shape: 0.7,
            disk_mtbf_hours: 300_000.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::InvalidConfig`] describing the first problem
    /// found.
    pub fn validate(&self) -> Result<(), LogError> {
        let err = |reason: String| Err(LogError::InvalidConfig { reason });
        if !(self.window_hours.is_finite() && self.window_hours > 0.0) {
            return err(format!("window_hours must be positive, got {}", self.window_hours));
        }
        if self.compute_nodes == 0 {
            return err("compute_nodes must be at least 1".into());
        }
        if self.disks == 0 {
            return err("disks must be at least 1".into());
        }
        for o in &self.outages {
            if o.mean_interarrival_hours <= 0.0
                || o.min_duration_hours < 0.0
                || o.max_duration_hours < o.min_duration_hours
            {
                return err(format!("invalid outage configuration for {}", o.cause));
            }
        }
        if self.storm_mean_interarrival_hours <= 0.0 {
            return err("storm_mean_interarrival_hours must be positive".into());
        }
        if self.storm_sizes.is_empty() {
            return err("storm_sizes must not be empty".into());
        }
        if self.job_mean_interarrival_hours <= 0.0 {
            return err("job_mean_interarrival_hours must be positive".into());
        }
        let p_fail = self.p_job_transient_failure + self.p_job_other_failure;
        if !(0.0..=1.0).contains(&self.p_job_transient_failure)
            || !(0.0..=1.0).contains(&self.p_job_other_failure)
            || p_fail > 1.0
        {
            return err("job failure probabilities must be in [0,1] and sum to at most 1".into());
        }
        if self.disk_weibull_shape <= 0.0 || self.disk_mtbf_hours <= 0.0 {
            return err("disk lifetime parameters must be positive".into());
        }
        Ok(())
    }
}

/// Synthetic failure-log generator.
///
/// The generator is deterministic given a seed: the four event streams
/// (outages, mount-failure storms, jobs, disk replacements) use independent
/// derived RNG streams, so changing, say, the number of disks does not
/// perturb the job stream.
#[derive(Debug, Clone)]
pub struct LogGenerator {
    config: LogGenConfig,
}

impl LogGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: LogGenConfig) -> Self {
        LogGenerator { config }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &LogGenConfig {
        &self.config
    }

    /// Generates a complete failure log.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn generate(&self, seed: u64) -> Result<FailureLog, LogError> {
        self.config.validate()?;
        let cfg = &self.config;
        let root = SimRng::seed_from_u64(seed);
        let mut log = FailureLog::new(cfg.origin, cfg.window_hours)?;

        self.generate_outages(&mut log, &mut root.derive_stream(1))?;
        self.generate_storms(&mut log, &mut root.derive_stream(2))?;
        self.generate_jobs(&mut log, &mut root.derive_stream(3))?;
        self.generate_disk_replacements(&mut log, &mut root.derive_stream(4))?;

        log.sort();
        Ok(log)
    }

    fn generate_outages(&self, log: &mut FailureLog, rng: &mut SimRng) -> Result<(), LogError> {
        for oc in &self.config.outages {
            let interarrival = Exponential::from_mean(oc.mean_interarrival_hours)?;
            let duration: Dist = if oc.max_duration_hours > oc.min_duration_hours {
                Uniform::new(oc.min_duration_hours, oc.max_duration_hours)?.into()
            } else {
                probdist::Deterministic::new(oc.min_duration_hours)?.into()
            };
            let mut t = interarrival.sample(rng);
            while t < self.config.window_hours {
                let d = duration.sample(rng);
                let end = (t + d).min(self.config.window_hours);
                log.push(LogEvent::new(EventKind::Outage(OutageRecord {
                    cause: oc.cause,
                    start_hours: t,
                    end_hours: end,
                })));
                t = end + interarrival.sample(rng);
            }
        }
        Ok(())
    }

    fn generate_storms(&self, log: &mut FailureLog, rng: &mut SimRng) -> Result<(), LogError> {
        let interarrival = Exponential::from_mean(self.config.storm_mean_interarrival_hours)?;
        let sizes = Empirical::new(self.config.storm_sizes.clone())?;
        let mut t = interarrival.sample(rng);
        while t < self.config.window_hours {
            let size = (sizes.sample(rng).round() as u32).clamp(1, self.config.compute_nodes);
            // Pick `size` distinct nodes; for storm sizes far below the node
            // count a simple rejection-free draw with wrap-around is fine.
            let start_node = rng.uniform_index(self.config.compute_nodes as usize) as u32;
            for k in 0..size {
                let node_id = (start_node + k) % self.config.compute_nodes;
                // Reports within a storm arrive over a few minutes.
                let jitter = rng.uniform01() * 0.5;
                log.push(LogEvent::new(EventKind::MountFailure(MountFailure {
                    time_hours: (t + jitter).min(self.config.window_hours),
                    node_id,
                })));
            }
            t += interarrival.sample(rng);
        }
        Ok(())
    }

    fn generate_jobs(&self, log: &mut FailureLog, rng: &mut SimRng) -> Result<(), LogError> {
        let interarrival = Exponential::from_mean(self.config.job_mean_interarrival_hours)?;
        let p_transient = self.config.p_job_transient_failure;
        let p_other = self.config.p_job_other_failure;
        let mut t = interarrival.sample(rng);
        while t < self.config.window_hours {
            let u = rng.uniform01();
            let outcome = if u < p_transient {
                JobOutcome::FailedTransientNetwork
            } else if u < p_transient + p_other {
                JobOutcome::FailedOther
            } else {
                JobOutcome::Completed
            };
            log.push(LogEvent::new(EventKind::Job(JobRecord { submit_hours: t, outcome })));
            t += interarrival.sample(rng);
        }
        Ok(())
    }

    fn generate_disk_replacements(
        &self,
        log: &mut FailureLog,
        rng: &mut SimRng,
    ) -> Result<(), LogError> {
        let lifetime = Weibull::from_shape_and_mean(
            self.config.disk_weibull_shape,
            self.config.disk_mtbf_hours,
        )?;
        for disk_id in 0..self.config.disks {
            // Each slot holds a disk; when it fails it is replaced with a new
            // one whose lifetime restarts, so a slot can fail more than once.
            let mut t = lifetime.sample(rng);
            while t < self.config.window_hours {
                log.push(LogEvent::new(EventKind::DiskReplacement(DiskReplacement {
                    time_hours: t,
                    disk_id,
                })));
                t += lifetime.sample(rng);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abe_calibrated_config_is_valid() {
        assert!(LogGenConfig::abe_calibrated().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = LogGenConfig::abe_calibrated();
        c.window_hours = 0.0;
        assert!(c.validate().is_err());

        let mut c = LogGenConfig::abe_calibrated();
        c.compute_nodes = 0;
        assert!(c.validate().is_err());

        let mut c = LogGenConfig::abe_calibrated();
        c.disks = 0;
        assert!(c.validate().is_err());

        let mut c = LogGenConfig::abe_calibrated();
        c.outages[0].max_duration_hours = 1.0;
        c.outages[0].min_duration_hours = 5.0;
        assert!(c.validate().is_err());

        let mut c = LogGenConfig::abe_calibrated();
        c.storm_sizes.clear();
        assert!(c.validate().is_err());

        let mut c = LogGenConfig::abe_calibrated();
        c.p_job_transient_failure = 0.9;
        c.p_job_other_failure = 0.4;
        assert!(c.validate().is_err());

        let mut c = LogGenConfig::abe_calibrated();
        c.disk_mtbf_hours = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = LogGenerator::new(LogGenConfig::abe_calibrated());
        let a = gen.generate(7).unwrap();
        let b = gen.generate(7).unwrap();
        assert_eq!(a, b);
        let c = gen.generate(8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn generated_log_contains_all_event_kinds_and_is_sorted() {
        let gen = LogGenerator::new(LogGenConfig::abe_calibrated());
        let log = gen.generate(1).unwrap();
        assert!(!log.outages().is_empty());
        assert!(!log.mount_failures().is_empty());
        assert!(!log.jobs().is_empty());
        assert!(!log.disk_replacements().is_empty());
        let times: Vec<f64> = log.events().iter().map(|e| e.time_hours).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "events must be time ordered");
        assert!(times.iter().all(|&t| t >= 0.0 && t <= log.window_hours()));
    }

    #[test]
    fn job_volume_and_failure_ratio_match_calibration() {
        let gen = LogGenerator::new(LogGenConfig::abe_calibrated());
        let log = gen.generate(3).unwrap();
        let jobs = log.jobs();
        // ~13 jobs/hour over 3480 h ≈ 45 000 jobs.
        assert!(jobs.len() > 40_000 && jobs.len() < 51_000, "jobs {}", jobs.len());
        let transient =
            jobs.iter().filter(|j| j.outcome == JobOutcome::FailedTransientNetwork).count();
        let other = jobs.iter().filter(|j| j.outcome == JobOutcome::FailedOther).count();
        assert!(transient > other, "transient failures should dominate");
        let ratio = transient as f64 / other.max(1) as f64;
        assert!(ratio > 3.0 && ratio < 12.0, "ratio {ratio}");
    }

    #[test]
    fn disk_replacements_are_roughly_one_or_two_per_week() {
        let gen = LogGenerator::new(LogGenConfig::abe_calibrated());
        let mut total = 0usize;
        let runs = 8;
        for seed in 0..runs {
            total += gen.generate(seed).unwrap().disk_replacements().len();
        }
        let weeks = LogGenConfig::abe_calibrated().window_hours / 168.0;
        let per_week = total as f64 / runs as f64 / weeks;
        // The paper reports 0–2 replacements per week on ABE.
        assert!(per_week > 0.2 && per_week < 3.0, "replacements per week {per_week}");
    }

    #[test]
    fn outage_windows_are_clipped_to_observation_window() {
        let mut cfg = LogGenConfig::abe_calibrated();
        cfg.window_hours = 100.0;
        // Force frequent, long outages so clipping is exercised.
        for o in &mut cfg.outages {
            o.mean_interarrival_hours = 20.0;
            o.min_duration_hours = 30.0;
            o.max_duration_hours = 60.0;
        }
        let log = LogGenerator::new(cfg).generate(5).unwrap();
        for o in log.outages() {
            assert!(o.end_hours <= 100.0 + 1e-9);
            assert!(o.start_hours < o.end_hours);
        }
    }

    #[test]
    fn storm_sizes_never_exceed_node_count() {
        let mut cfg = LogGenConfig::abe_calibrated();
        cfg.compute_nodes = 50;
        cfg.storm_mean_interarrival_hours = 100.0;
        let log = LogGenerator::new(cfg).generate(9).unwrap();
        for m in log.mount_failures() {
            assert!(m.node_id < 50);
        }
    }

    #[test]
    fn config_accessor_roundtrips() {
        let cfg = LogGenConfig::abe_calibrated();
        let gen = LogGenerator::new(cfg.clone());
        assert_eq!(gen.config(), &cfg);
    }
}
