//! Line-oriented text serialisation of failure logs.
//!
//! The format is intentionally simple so that externally collected logs can
//! be converted into it with a few lines of shell:
//!
//! ```text
//! # faultlog v1 origin=2007-07-01T00:00 window_hours=3480
//! OUTAGE io_hardware 503.0500 516.0000
//! MOUNTFAIL 50.2500 713
//! JOB 10.0000 completed
//! DISK 1571.0000 42
//! ```
//!
//! Timestamps are hours since the window origin, with four decimal places
//! (sub-second precision).

use crate::event::{
    DiskReplacement, EventKind, FailureLog, JobOutcome, JobRecord, LogEvent, MountFailure,
    OutageCause, OutageRecord,
};
use crate::{LogError, SimDate};

/// Serialises a log to the text format.
pub fn to_text(log: &FailureLog) -> String {
    let origin = log.origin();
    let mut out = String::new();
    out.push_str(&format!(
        "# faultlog v1 origin={:04}-{:02}-{:02}T{:02}:{:02} window_hours={}\n",
        origin.year(),
        origin.month(),
        origin.day(),
        origin.hour(),
        origin.minute(),
        log.window_hours()
    ));
    for event in log.events() {
        match &event.kind {
            EventKind::Outage(o) => out.push_str(&format!(
                "OUTAGE {} {:.4} {:.4}\n",
                cause_token(o.cause),
                o.start_hours,
                o.end_hours
            )),
            EventKind::MountFailure(m) => {
                out.push_str(&format!("MOUNTFAIL {:.4} {}\n", m.time_hours, m.node_id));
            }
            EventKind::Job(j) => {
                out.push_str(&format!("JOB {:.4} {}\n", j.submit_hours, outcome_token(j.outcome)));
            }
            EventKind::DiskReplacement(d) => {
                out.push_str(&format!("DISK {:.4} {}\n", d.time_hours, d.disk_id));
            }
        }
    }
    out
}

/// Parses a log from the text format.
///
/// # Errors
///
/// Returns [`LogError::Parse`] with the 1-based line number of the first
/// malformed line, or [`LogError::InvalidConfig`] if the header declares an
/// invalid window.
pub fn from_text(text: &str) -> Result<FailureLog, LogError> {
    let mut lines = text.lines().enumerate();

    let (_, header) =
        lines.next().ok_or(LogError::Parse { line: 1, reason: "empty input".into() })?;
    let (origin, window_hours) = parse_header(header)?;
    let mut log = FailureLog::new(origin, window_hours)?;

    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("non-empty line has a first token");
        let event = match tag {
            "OUTAGE" => {
                let cause = parse_cause(next_field(&mut parts, line_no, "cause")?, line_no)?;
                let start = parse_f64(next_field(&mut parts, line_no, "start")?, line_no)?;
                let end = parse_f64(next_field(&mut parts, line_no, "end")?, line_no)?;
                EventKind::Outage(OutageRecord { cause, start_hours: start, end_hours: end })
            }
            "MOUNTFAIL" => {
                let t = parse_f64(next_field(&mut parts, line_no, "time")?, line_no)?;
                let node = parse_u32(next_field(&mut parts, line_no, "node")?, line_no)?;
                EventKind::MountFailure(MountFailure { time_hours: t, node_id: node })
            }
            "JOB" => {
                let t = parse_f64(next_field(&mut parts, line_no, "time")?, line_no)?;
                let outcome = parse_outcome(next_field(&mut parts, line_no, "outcome")?, line_no)?;
                EventKind::Job(JobRecord { submit_hours: t, outcome })
            }
            "DISK" => {
                let t = parse_f64(next_field(&mut parts, line_no, "time")?, line_no)?;
                let disk = parse_u32(next_field(&mut parts, line_no, "disk")?, line_no)?;
                EventKind::DiskReplacement(DiskReplacement { time_hours: t, disk_id: disk })
            }
            other => {
                return Err(LogError::Parse {
                    line: line_no,
                    reason: format!("unknown record type `{other}`"),
                })
            }
        };
        log.push(LogEvent::new(event));
    }
    log.sort();
    Ok(log)
}

fn cause_token(cause: OutageCause) -> &'static str {
    match cause {
        OutageCause::IoHardware => "io_hardware",
        OutageCause::BatchSystem => "batch_system",
        OutageCause::Network => "network",
        OutageCause::FileSystem => "file_system",
    }
}

fn outcome_token(outcome: JobOutcome) -> &'static str {
    match outcome {
        JobOutcome::Completed => "completed",
        JobOutcome::FailedTransientNetwork => "failed_transient_network",
        JobOutcome::FailedOther => "failed_other",
    }
}

fn parse_cause(token: &str, line: usize) -> Result<OutageCause, LogError> {
    match token {
        "io_hardware" => Ok(OutageCause::IoHardware),
        "batch_system" => Ok(OutageCause::BatchSystem),
        "network" => Ok(OutageCause::Network),
        "file_system" => Ok(OutageCause::FileSystem),
        other => Err(LogError::Parse { line, reason: format!("unknown outage cause `{other}`") }),
    }
}

fn parse_outcome(token: &str, line: usize) -> Result<JobOutcome, LogError> {
    match token {
        "completed" => Ok(JobOutcome::Completed),
        "failed_transient_network" => Ok(JobOutcome::FailedTransientNetwork),
        "failed_other" => Ok(JobOutcome::FailedOther),
        other => Err(LogError::Parse { line, reason: format!("unknown job outcome `{other}`") }),
    }
}

fn next_field<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    what: &str,
) -> Result<&'a str, LogError> {
    parts.next().ok_or_else(|| LogError::Parse { line, reason: format!("missing field `{what}`") })
}

fn parse_f64(token: &str, line: usize) -> Result<f64, LogError> {
    token
        .parse::<f64>()
        .map_err(|_| LogError::Parse { line, reason: format!("`{token}` is not a number") })
}

fn parse_u32(token: &str, line: usize) -> Result<u32, LogError> {
    token
        .parse::<u32>()
        .map_err(|_| LogError::Parse { line, reason: format!("`{token}` is not an integer id") })
}

fn parse_header(header: &str) -> Result<(SimDate, f64), LogError> {
    let err = |reason: &str| LogError::Parse { line: 1, reason: reason.to_string() };
    if !header.starts_with("# faultlog v1") {
        return Err(err("missing `# faultlog v1` header"));
    }
    let mut origin = None;
    let mut window = None;
    for token in header.split_whitespace() {
        if let Some(value) = token.strip_prefix("origin=") {
            origin = Some(parse_origin(value).ok_or_else(|| err("malformed origin timestamp"))?);
        } else if let Some(value) = token.strip_prefix("window_hours=") {
            window = Some(value.parse::<f64>().map_err(|_| err("malformed window_hours"))?);
        }
    }
    match (origin, window) {
        (Some(o), Some(w)) => Ok((o, w)),
        _ => Err(err("header must declare origin= and window_hours=")),
    }
}

fn parse_origin(value: &str) -> Option<SimDate> {
    // Format: YYYY-MM-DDTHH:MM
    let (date, time) = value.split_once('T')?;
    let mut d = date.split('-');
    let year: i32 = d.next()?.parse().ok()?;
    let month: u8 = d.next()?.parse().ok()?;
    let day: u8 = d.next()?.parse().ok()?;
    let (h, m) = time.split_once(':')?;
    Some(SimDate::new(year, month, day, h.parse().ok()?, m.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{LogGenConfig, LogGenerator};

    #[test]
    fn roundtrip_preserves_generated_log() {
        let mut cfg = LogGenConfig::abe_calibrated();
        cfg.window_hours = 500.0; // keep the text small
        let log = LogGenerator::new(cfg).generate(11).unwrap();
        let text = to_text(&log);
        let parsed = from_text(&text).unwrap();
        assert_eq!(parsed.len(), log.len());
        assert_eq!(parsed.origin(), log.origin());
        assert_eq!(parsed.window_hours(), log.window_hours());
        assert_eq!(parsed.outages().len(), log.outages().len());
        assert_eq!(parsed.jobs().len(), log.jobs().len());
        // Times survive with 4-decimal precision.
        for (a, b) in parsed.events().iter().zip(log.events()) {
            assert!((a.time_hours - b.time_hours).abs() < 1e-3);
        }
    }

    #[test]
    fn parses_hand_written_log() {
        let text = "\
# faultlog v1 origin=2007-07-01T00:00 window_hours=100
OUTAGE io_hardware 10.0 22.95
MOUNTFAIL 5.5 3
JOB 1.0 completed
JOB 2.0 failed_transient_network

# trailing comment
DISK 60.0 17
";
        let log = from_text(text).unwrap();
        assert_eq!(log.len(), 5);
        assert_eq!(log.outages()[0].cause, OutageCause::IoHardware);
        assert_eq!(log.jobs()[1].outcome, JobOutcome::FailedTransientNetwork);
        assert_eq!(log.disk_replacements()[0].disk_id, 17);
        assert_eq!(log.window_hours(), 100.0);
    }

    #[test]
    fn reports_line_numbers_for_errors() {
        let text = "\
# faultlog v1 origin=2007-07-01T00:00 window_hours=100
OUTAGE io_hardware 10.0 22.95
BOGUS 1 2 3
";
        let err = from_text(text).unwrap_err();
        assert!(matches!(err, LogError::Parse { line: 3, .. }), "{err:?}");

        let text = "\
# faultlog v1 origin=2007-07-01T00:00 window_hours=100
JOB not_a_number completed
";
        assert!(matches!(from_text(text).unwrap_err(), LogError::Parse { line: 2, .. }));

        let text = "\
# faultlog v1 origin=2007-07-01T00:00 window_hours=100
JOB 5.0 exploded
";
        assert!(matches!(from_text(text).unwrap_err(), LogError::Parse { line: 2, .. }));

        let text = "\
# faultlog v1 origin=2007-07-01T00:00 window_hours=100
OUTAGE io_hardware 10.0
";
        assert!(matches!(from_text(text).unwrap_err(), LogError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_bad_headers() {
        assert!(from_text("").is_err());
        assert!(from_text("not a header\n").is_err());
        assert!(from_text("# faultlog v1 window_hours=10\n").is_err());
        assert!(from_text("# faultlog v1 origin=2007-07-01T00:00\n").is_err());
        assert!(from_text("# faultlog v1 origin=garbage window_hours=10\n").is_err());
        assert!(from_text("# faultlog v1 origin=2007-07-01T00:00 window_hours=-5\n").is_err());
    }

    #[test]
    fn all_cause_and_outcome_tokens_roundtrip() {
        for cause in OutageCause::all() {
            let token = cause_token(cause);
            assert_eq!(parse_cause(token, 1).unwrap(), cause);
        }
        for outcome in
            [JobOutcome::Completed, JobOutcome::FailedTransientNetwork, JobOutcome::FailedOther]
        {
            assert_eq!(parse_outcome(outcome_token(outcome), 1).unwrap(), outcome);
        }
    }
}
