//! Temporal and causal filtering of raw log events.
//!
//! Raw cluster logs over-report: a single SAN incident produces a burst of
//! notifications, and a single transient network glitch makes hundreds of
//! compute nodes log a mount failure within seconds. The paper notes that
//! "to extract accurate failure event information, we filter failure logs
//! based on temporal and causal relationships between events"; this module
//! implements those filters so the downstream analyses count *incidents*
//! rather than raw lines.

use serde::{Deserialize, Serialize};

use crate::event::{MountFailure, OutageCause, OutageRecord};

/// A mount-failure storm: a set of per-node reports coalesced into one
/// incident because they occurred close together in time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MountStorm {
    /// Time of the first report, hours since the window origin.
    pub start_hours: f64,
    /// Time of the last report, hours since the window origin.
    pub end_hours: f64,
    /// Number of *distinct* compute nodes that reported the failure.
    pub distinct_nodes: usize,
    /// Total number of raw report lines coalesced into this storm.
    pub raw_reports: usize,
}

/// Coalesces outage records of the *same cause* whose windows overlap or are
/// separated by at most `gap_hours` into single incidents.
///
/// Overlapping outages of different causes are left untouched — they are
/// causally distinct incidents even if simultaneous.
pub fn coalesce_outages(outages: &[OutageRecord], gap_hours: f64) -> Vec<OutageRecord> {
    let mut result: Vec<OutageRecord> = Vec::new();
    for cause in crate::event::OutageCause::all() {
        let mut of_cause: Vec<OutageRecord> =
            outages.iter().filter(|o| o.cause == cause).copied().collect();
        of_cause.sort_by(|a, b| a.start_hours.partial_cmp(&b.start_hours).expect("finite times"));
        let mut merged: Vec<OutageRecord> = Vec::new();
        for o in of_cause {
            match merged.last_mut() {
                Some(last) if o.start_hours <= last.end_hours + gap_hours => {
                    last.end_hours = last.end_hours.max(o.end_hours);
                }
                _ => merged.push(o),
            }
        }
        result.extend(merged);
    }
    result.sort_by(|a, b| a.start_hours.partial_cmp(&b.start_hours).expect("finite times"));
    result
}

/// Groups per-node mount failures into storms: reports separated by at most
/// `gap_hours` belong to the same storm.
pub fn coalesce_mount_failures(failures: &[MountFailure], gap_hours: f64) -> Vec<MountStorm> {
    if failures.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<MountFailure> = failures.to_vec();
    sorted.sort_by(|a, b| a.time_hours.partial_cmp(&b.time_hours).expect("finite times"));

    let mut storms: Vec<MountStorm> = Vec::new();
    let mut current: Vec<MountFailure> = vec![sorted[0]];
    for &f in &sorted[1..] {
        let last_time = current.last().expect("current storm is non-empty").time_hours;
        if f.time_hours - last_time <= gap_hours {
            current.push(f);
        } else {
            storms.push(storm_from(&current));
            current = vec![f];
        }
    }
    storms.push(storm_from(&current));
    storms
}

fn storm_from(reports: &[MountFailure]) -> MountStorm {
    let mut nodes: Vec<u32> = reports.iter().map(|r| r.node_id).collect();
    nodes.sort_unstable();
    nodes.dedup();
    MountStorm {
        start_hours: reports.first().expect("non-empty").time_hours,
        end_hours: reports.last().expect("non-empty").time_hours,
        distinct_nodes: nodes.len(),
        raw_reports: reports.len(),
    }
}

/// Classifies an outage as *attributable to the CFS* (I/O hardware or
/// file-system causes) versus outside it (batch system, network). Used by
/// the analyses to separate CFS availability from cluster-level utility.
pub fn is_cfs_outage(cause: OutageCause) -> bool {
    matches!(cause, OutageCause::IoHardware | OutageCause::FileSystem)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outage(cause: OutageCause, start: f64, end: f64) -> OutageRecord {
        OutageRecord { cause, start_hours: start, end_hours: end }
    }

    #[test]
    fn overlapping_same_cause_outages_merge() {
        let raw = vec![
            outage(OutageCause::IoHardware, 10.0, 14.0),
            outage(OutageCause::IoHardware, 13.0, 20.0),
            outage(OutageCause::IoHardware, 30.0, 31.0),
        ];
        let merged = coalesce_outages(&raw, 0.0);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].start_hours, 10.0);
        assert_eq!(merged[0].end_hours, 20.0);
        assert_eq!(merged[1].start_hours, 30.0);
    }

    #[test]
    fn nearby_outages_merge_within_gap() {
        let raw = vec![
            outage(OutageCause::FileSystem, 10.0, 11.0),
            outage(OutageCause::FileSystem, 11.5, 12.0),
        ];
        assert_eq!(coalesce_outages(&raw, 1.0).len(), 1);
        assert_eq!(coalesce_outages(&raw, 0.1).len(), 2);
    }

    #[test]
    fn different_causes_never_merge() {
        let raw = vec![
            outage(OutageCause::IoHardware, 10.0, 14.0),
            outage(OutageCause::Network, 11.0, 12.0),
        ];
        let merged = coalesce_outages(&raw, 10.0);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn coalesce_outages_result_is_time_ordered() {
        let raw = vec![
            outage(OutageCause::Network, 50.0, 51.0),
            outage(OutageCause::IoHardware, 10.0, 14.0),
            outage(OutageCause::FileSystem, 30.0, 30.5),
        ];
        let merged = coalesce_outages(&raw, 0.0);
        let starts: Vec<f64> = merged.iter().map(|o| o.start_hours).collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn mount_failures_group_into_storms_with_distinct_nodes() {
        let failures = vec![
            MountFailure { time_hours: 10.00, node_id: 1 },
            MountFailure { time_hours: 10.01, node_id: 2 },
            MountFailure { time_hours: 10.02, node_id: 2 }, // duplicate node
            MountFailure { time_hours: 10.03, node_id: 3 },
            MountFailure { time_hours: 50.00, node_id: 9 },
        ];
        let storms = coalesce_mount_failures(&failures, 1.0);
        assert_eq!(storms.len(), 2);
        assert_eq!(storms[0].distinct_nodes, 3);
        assert_eq!(storms[0].raw_reports, 4);
        assert_eq!(storms[1].distinct_nodes, 1);
        assert!(storms[0].start_hours <= storms[0].end_hours);
    }

    #[test]
    fn storm_chains_extend_while_gaps_stay_small() {
        // Reports every 0.5 h for 5 h: a single storm under a 1-hour gap,
        // ten separate "storms" under a 0.1-hour gap.
        let failures: Vec<MountFailure> =
            (0..10).map(|i| MountFailure { time_hours: i as f64 * 0.5, node_id: i }).collect();
        assert_eq!(coalesce_mount_failures(&failures, 1.0).len(), 1);
        assert_eq!(coalesce_mount_failures(&failures, 0.1).len(), 10);
    }

    #[test]
    fn empty_inputs_give_empty_outputs() {
        assert!(coalesce_outages(&[], 1.0).is_empty());
        assert!(coalesce_mount_failures(&[], 1.0).is_empty());
    }

    #[test]
    fn cfs_outage_classification() {
        assert!(is_cfs_outage(OutageCause::IoHardware));
        assert!(is_cfs_outage(OutageCause::FileSystem));
        assert!(!is_cfs_outage(OutageCause::Network));
        assert!(!is_cfs_outage(OutageCause::BatchSystem));
    }
}
