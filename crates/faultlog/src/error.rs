use std::error::Error;
use std::fmt;

use probdist::DistError;

/// Error type for log generation, parsing, and analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LogError {
    /// A configuration value was rejected (negative duration, zero nodes,
    /// window end before start, …).
    InvalidConfig {
        /// Explanation of the rejected configuration.
        reason: String,
    },
    /// A log line could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Explanation of the syntax problem.
        reason: String,
    },
    /// An analysis was asked to run over an empty or unusable log.
    EmptyLog {
        /// Which analysis failed.
        analysis: &'static str,
    },
    /// A statistical estimation step failed.
    Estimation(DistError),
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::InvalidConfig { reason } => write!(f, "invalid log configuration: {reason}"),
            LogError::Parse { line, reason } => write!(f, "parse error on line {line}: {reason}"),
            LogError::EmptyLog { analysis } => {
                write!(f, "cannot run {analysis} analysis on an empty log")
            }
            LogError::Estimation(e) => write!(f, "estimation failed: {e}"),
        }
    }
}

impl Error for LogError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LogError::Estimation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DistError> for LogError {
    fn from(e: DistError) -> Self {
        LogError::Estimation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_carry_context() {
        let e = LogError::Parse { line: 12, reason: "bad timestamp".into() };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains("bad timestamp"));
        let e = LogError::EmptyLog { analysis: "outage" };
        assert!(e.to_string().contains("outage"));
    }

    #[test]
    fn dist_error_converts() {
        let e: LogError = DistError::EmptyData.into();
        assert!(matches!(e, LogError::Estimation(_)));
        assert!(Error::source(&e).is_some());
    }
}
