use serde::{Deserialize, Serialize};

/// A calendar timestamp (minute precision) used to render log events in the
/// same `MM/DD/YY HH:MM` style as the paper's tables.
///
/// Internally every log stores event times as *hours since the start of the
/// observation window*; `SimDate` converts between that representation and
/// calendar dates given the window's origin. The conversion uses the
/// proleptic Gregorian calendar (days-from-civil algorithm), which is exact
/// for the 2007-era dates in the paper and for any other modern date.
///
/// # Example
///
/// ```
/// use faultlog::SimDate;
///
/// let origin = SimDate::new(2007, 7, 21, 23, 3);
/// let later = origin.plus_hours(12.95);
/// assert_eq!(later.to_string(), "07/22/07 12:00");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SimDate {
    year: i32,
    month: u8,
    day: u8,
    hour: u8,
    minute: u8,
}

impl SimDate {
    /// Creates a date. Values are taken as given (month 1–12, day 1–31,
    /// hour 0–23, minute 0–59); out-of-range inputs are clamped.
    pub fn new(year: i32, month: u8, day: u8, hour: u8, minute: u8) -> Self {
        SimDate {
            year,
            month: month.clamp(1, 12),
            day: day.clamp(1, 31),
            hour: hour.min(23),
            minute: minute.min(59),
        }
    }

    /// The calendar year.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// The calendar month (1–12).
    pub fn month(&self) -> u8 {
        self.month
    }

    /// The day of month (1–31).
    pub fn day(&self) -> u8 {
        self.day
    }

    /// The hour of day (0–23).
    pub fn hour(&self) -> u8 {
        self.hour
    }

    /// The minute (0–59).
    pub fn minute(&self) -> u8 {
        self.minute
    }

    /// Days since the civil epoch 1970-01-01 (may be negative), ignoring the
    /// time of day.
    fn days_from_civil(&self) -> i64 {
        // Howard Hinnant's days_from_civil algorithm.
        let y = if self.month <= 2 { self.year - 1 } else { self.year } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let m = self.month as i64;
        let d = self.day as i64;
        let doy = (153 * (m + if m > 2 { -3 } else { 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }

    fn from_days_from_civil(z: i64) -> (i32, u8, u8) {
        let z = z + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
        let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u8;
        let y = if m <= 2 { y + 1 } else { y } as i32;
        (y, m, d)
    }

    /// Hours since the civil epoch, at minute precision.
    pub fn as_hours_since_epoch(&self) -> f64 {
        self.days_from_civil() as f64 * 24.0 + self.hour as f64 + self.minute as f64 / 60.0
    }

    /// Hours elapsed from `origin` to `self` (negative if `self` is before
    /// `origin`).
    pub fn hours_since(&self, origin: SimDate) -> f64 {
        self.as_hours_since_epoch() - origin.as_hours_since_epoch()
    }

    /// The date `hours` hours after `self` (rounded down to the minute).
    pub fn plus_hours(&self, hours: f64) -> SimDate {
        let total_minutes = (self.as_hours_since_epoch() * 60.0 + hours * 60.0).round() as i64;
        let days = total_minutes.div_euclid(24 * 60);
        let rem = total_minutes.rem_euclid(24 * 60);
        let (year, month, day) = SimDate::from_days_from_civil(days);
        SimDate { year, month, day, hour: (rem / 60) as u8, minute: (rem % 60) as u8 }
    }

    /// Day index (0-based) of `self` relative to `origin`, i.e. which
    /// calendar day of the observation window the timestamp falls in.
    pub fn day_index_since(&self, origin: SimDate) -> i64 {
        self.days_from_civil() - origin.days_from_civil()
    }
}

impl std::fmt::Display for SimDate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:02}/{:02}/{:02} {:02}:{:02}",
            self.month,
            self.day,
            self.year.rem_euclid(100),
            self.hour,
            self.minute
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_like_the_paper_tables() {
        let d = SimDate::new(2007, 7, 21, 23, 3);
        assert_eq!(d.to_string(), "07/21/07 23:03");
    }

    #[test]
    fn plus_hours_crosses_midnight_and_months() {
        // Table 1 row 1: outage from 07/21/07 23:03 lasting 12.95 h ends
        // 07/22/07 12:00 (the paper rounds; we land at 11:59/12:00).
        let start = SimDate::new(2007, 7, 21, 23, 3);
        let end = start.plus_hours(12.95);
        assert_eq!(end.month(), 7);
        assert_eq!(end.day(), 22);
        assert!(end.hour() == 11 || end.hour() == 12);

        // Month boundary: 08/31 + 48 h = 09/02.
        let d = SimDate::new(2007, 8, 31, 0, 0).plus_hours(48.0);
        assert_eq!((d.month(), d.day()), (9, 2));

        // Year boundary.
        let d = SimDate::new(2007, 12, 31, 23, 0).plus_hours(2.0);
        assert_eq!((d.year(), d.month(), d.day(), d.hour()), (2008, 1, 1, 1));
    }

    #[test]
    fn hours_since_is_inverse_of_plus_hours() {
        let origin = SimDate::new(2007, 5, 3, 0, 0);
        for h in [0.0, 1.5, 26.75, 1000.25, 3672.0] {
            let d = origin.plus_hours(h);
            assert!((d.hours_since(origin) - h).abs() < 1.0 / 60.0 + 1e-9, "h = {h}");
        }
    }

    #[test]
    fn leap_year_is_handled() {
        let d = SimDate::new(2008, 2, 28, 12, 0).plus_hours(24.0);
        assert_eq!((d.month(), d.day()), (2, 29));
        let d = SimDate::new(2007, 2, 28, 12, 0).plus_hours(24.0);
        assert_eq!((d.month(), d.day()), (3, 1));
    }

    #[test]
    fn day_index_counts_calendar_days() {
        let origin = SimDate::new(2007, 7, 1, 12, 0);
        assert_eq!(origin.day_index_since(origin), 0);
        assert_eq!(SimDate::new(2007, 7, 2, 0, 5).day_index_since(origin), 1);
        assert_eq!(SimDate::new(2007, 8, 1, 23, 0).day_index_since(origin), 31);
    }

    #[test]
    fn out_of_range_components_are_clamped() {
        let d = SimDate::new(2007, 13, 40, 30, 90);
        assert_eq!(d.month(), 12);
        assert_eq!(d.day(), 31);
        assert_eq!(d.hour(), 23);
        assert_eq!(d.minute(), 59);
    }

    #[test]
    fn ordering_follows_chronology() {
        let a = SimDate::new(2007, 7, 21, 23, 3);
        let b = SimDate::new(2007, 7, 22, 1, 0);
        assert!(a < b);
    }
}
