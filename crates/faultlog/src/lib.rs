//! Failure-log substrate: synthetic generation, parsing, filtering, and
//! dependability analysis of cluster failure logs.
//!
//! The paper's model parameters are estimated from two real NCSA log sets
//! (compute-node logs from 05/2007–10/2007 and SAN logs from 09/2007–11/2007)
//! which are not publicly available. This crate substitutes them with a
//! **synthetic log generator** whose event statistics are calibrated to the
//! published tables, and re-implements the full analysis pipeline the paper
//! ran over the real logs, so the code path
//! *log → filter → estimate → model parameter* is exercised end to end:
//!
//! * [`generator`] — produces outage notifications (Table 1), per-node Lustre
//!   mount failures (Table 2), job completion records (Table 3), and disk
//!   replacement events (Table 4) over a configurable observation window.
//! * [`parser`] — serialises and parses the simple line-oriented text format
//!   used for the logs, so the analysis can also be run on externally
//!   provided files.
//! * [`filter`] — temporal/causal coalescing of raw events into incidents
//!   (the paper: "we filter failure logs based on temporal and causal
//!   relationships between events").
//! * [`analysis`] — computes the reward measures the paper derives from the
//!   logs: SAN availability (0.97–0.98), mount-failure counts per day, job
//!   failure statistics (transient ≈ 5× other), weekly disk replacements
//!   (0–2 per week), and a Weibull fit of disk lifetimes (shape ≈ 0.7).
//!
//! # Example
//!
//! ```
//! use faultlog::generator::{LogGenerator, LogGenConfig};
//! use faultlog::analysis::OutageAnalysis;
//!
//! # fn main() -> Result<(), faultlog::LogError> {
//! let config = LogGenConfig::abe_calibrated();
//! let log = LogGenerator::new(config).generate(42)?;
//! let outages = OutageAnalysis::from_log(&log)?;
//! // ABE's SAN availability was estimated between 0.97 and 0.98.
//! assert!(outages.availability() > 0.9 && outages.availability() <= 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod calendar;
mod error;
mod event;
pub mod filter;
pub mod generator;
pub mod parser;

pub use calendar::SimDate;
pub use error::LogError;
pub use event::{
    DiskReplacement, EventKind, FailureLog, JobOutcome, JobRecord, LogEvent, MountFailure,
    OutageCause, OutageRecord,
};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FailureLog>();
        assert_send_sync::<LogEvent>();
        assert_send_sync::<LogError>();
        assert_send_sync::<SimDate>();
    }
}
